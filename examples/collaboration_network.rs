//! Collaboration-network analytics — the paper's Appendix A scenario.
//!
//! Authors are vertices, co-authorship is an edge. Distance is the
//! Erdős-number analogue; the *number* of shortest collaboration chains
//! distinguishes strongly from weakly connected peers. The weighted
//! extension (Appendix C.2) models collaboration cost (1 / #joint papers,
//! discretized), and weight *decreases* — new joint papers — are cheap
//! incremental updates.
//!
//! Run with: `cargo run --release --example collaboration_network`

use dspc::weighted::DynamicWeightedSpc;
use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::generators::random::{barabasi_albert, random_weights};
use dspc_graph::VertexId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xC0AB);
    let authors = 1200usize;
    let coauth = barabasi_albert(authors, 2, &mut rng);
    println!(
        "Collaboration network: {} authors, {} co-authorships",
        coauth.num_vertices(),
        coauth.num_edges()
    );

    // ── Unweighted: Erdős-number analytics ────────────────────────────
    let mut dspc = DynamicSpc::build(coauth.clone(), OrderingStrategy::Degree);
    let erdos = VertexId(0); // the seed author: the network grew around them
    let (a, b) = (VertexId(800), VertexId(801));
    for author in [a, b] {
        match dspc.query(erdos, author) {
            Some((d, c)) => println!(
                "  author {:<4} Erdős-number {d} via {c} distinct shortest chains",
                author.0
            ),
            None => println!("  author {:<4} unconnected", author.0),
        }
    }

    // A new cross-community paper appears: three authors join up.
    println!("\nNew paper by authors 800, 801 and 3:");
    for (x, y) in [(800u32, 801u32), (800, 3), (801, 3)] {
        if !dspc.graph().has_edge(VertexId(x), VertexId(y)) {
            let s = dspc.insert_edge(VertexId(x), VertexId(y)).unwrap();
            println!(
                "  +({x},{y}): {} label ops in the index",
                s.renew_count + s.renew_dist + s.inserted
            );
        }
    }
    for author in [a, b] {
        let (d, c) = dspc.query(erdos, author).unwrap();
        println!(
            "  author {:<4} Erdős-number now {d} via {c} chains",
            author.0
        );
    }

    // ── Weighted: collaboration strength ──────────────────────────────
    // Weight = discretized collaboration cost in 1..=5 (1 = frequent
    // co-authors). New papers lower the cost — incremental updates.
    let weighted = random_weights(&coauth, 5, &mut rng);
    let mut wdspc = DynamicWeightedSpc::build(weighted, OrderingStrategy::Degree);
    let (s, t) = (VertexId(500), VertexId(900));
    let before = wdspc.query(s, t);
    println!("\nWeighted collaboration distance {s} → {t}: {before:?}");
    // The pair's neighbourhoods publish together: drop some edge costs.
    let lowered: Vec<(VertexId, VertexId, u32)> = wdspc
        .graph()
        .edges()
        .filter(|&(u, _, w)| (u == s || u == t) && w > 1)
        .take(3)
        .map(|(u, v, _)| (u, v, 1))
        .collect();
    for (u, v, w) in lowered {
        wdspc.set_weight(u, v, w).unwrap();
        println!("  cost({u},{v}) lowered to {w}");
    }
    let after = wdspc.query(s, t);
    println!("Weighted collaboration distance {s} → {t} now: {after:?}");
    if let (Some((db, _)), Some((da, _))) = (before, after) {
        assert!(da <= db, "costs only decreased");
    }

    dspc::verify::verify_sampled_pairs(
        dspc.graph(),
        dspc.index(),
        1000,
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();
    println!("\nSampled verification against counting BFS: OK");
}
