//! Quickstart: build an SPC-Index, query it, and keep it alive through
//! edge insertions and deletions — the full DSPC loop on the paper's own
//! example graph (Figure 2).
//!
//! Run with: `cargo run --release --example quickstart`

use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::generators::paper::figure2_g;
use dspc_graph::VertexId;

fn show(dspc: &DynamicSpc, s: u32, t: u32) {
    match dspc.query(VertexId(s), VertexId(t)) {
        Some((d, c)) => println!("  SPC(v{s}, v{t}) = {c} shortest path(s) of length {d}"),
        None => println!("  SPC(v{s}, v{t}) : disconnected"),
    }
}

fn main() {
    // 1. Build: HP-SPC over a degree-ranked order (the paper uses the
    //    identity order for this graph; both answer identically).
    let graph = figure2_g();
    println!(
        "Graph G from Figure 2: n={} m={}",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut dspc = DynamicSpc::build(graph, OrderingStrategy::Identity);
    let stats = dspc.index_stats();
    println!(
        "SPC-Index built: {} label entries, {} bytes packed, avg |L(v)| = {:.1}\n",
        stats.entries, stats.packed_bytes, stats.avg_label_len
    );

    // 2. Query (Example 2.1 of the paper: two shortest v4–v6 paths).
    println!("Initial queries:");
    show(&dspc, 4, 6);
    show(&dspc, 0, 9);

    // 3. Insert edge (v3, v9) — the paper's Figure 3 walkthrough.
    let s = dspc.insert_edge(VertexId(3), VertexId(9)).unwrap();
    println!(
        "\nIncSPC after inserting (v3, v9): {} renewC, {} renewD, {} inserted labels",
        s.renew_count, s.renew_dist, s.inserted
    );
    show(&dspc, 0, 9); // distance drops 4 → 2

    // 4. Delete edge (v1, v2) — the paper's Figure 6 walkthrough.
    let s = dspc.delete_edge(VertexId(1), VertexId(2)).unwrap();
    println!(
        "\nDecSPC after deleting (v1, v2): {} renewC, {} renewD, {} inserted, {} removed",
        s.renew_count, s.renew_dist, s.inserted, s.removed
    );
    show(&dspc, 1, 2); // rerouted through v5

    // 5. Vertices come and go too.
    let (v, _) = dspc
        .add_vertex_connected(&[VertexId(6), VertexId(8)])
        .unwrap();
    println!("\nAdded vertex {v} connected to v6 and v8:");
    show(&dspc, 6, 8);
    dspc.delete_vertex(v).unwrap();
    println!("…and removed it again:");
    show(&dspc, 6, 8);

    // 6. The index never lies: cross-check everything against BFS.
    dspc::verify::verify_all_pairs(dspc.graph(), dspc.index()).unwrap();
    println!("\nAll-pairs verification against counting BFS: OK");
}
