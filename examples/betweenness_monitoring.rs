//! Group betweenness monitoring — the paper's second motivating
//! application (§1, following Puzis et al.).
//!
//! An operator watches how central a set of gateway routers stays while
//! the topology evolves. Every betweenness term `δ_st(C)/δ_st` needs
//! shortest-path *counts*, not just distances — and with DSPC those counts
//! survive topology churn without reindexing.
//!
//! Run with: `cargo run --release --example betweenness_monitoring`

use dspc::{DynamicSpc, OrderingStrategy};
use dspc_apps::betweenness::{group_betweenness, vertex_betweenness};
use dspc_graph::generators::random::watts_strogatz;
use dspc_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(0xBE73);
    // A small-world network: ring of routers with shortcut links.
    let graph = watts_strogatz(400, 3, 0.15, &mut rng);
    println!(
        "Router network: {} nodes, {} links",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut dspc = DynamicSpc::build(graph, OrderingStrategy::Degree);

    // Pick the three most-connected routers as the monitored gateway group.
    let mut by_degree: Vec<VertexId> = dspc.graph().vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(dspc.graph().degree(v)));
    let gateways: Vec<VertexId> = by_degree[..3].to_vec();
    println!(
        "Monitored gateways: {:?} (degrees {:?})",
        gateways,
        gateways
            .iter()
            .map(|&v| dspc.graph().degree(v))
            .collect::<Vec<_>>()
    );

    let initial = group_betweenness(&dspc, &gateways);
    println!("Initial group betweenness B̈(C) = {initial:.1}\n");

    // Simulate maintenance windows: links near the gateways go down and
    // new redundant links come up; betweenness is re-read after each epoch.
    for epoch in 1..=5 {
        // Drop one gateway link (if any remain) …
        let g0 = gateways[epoch % gateways.len()];
        if let Some(&nb) = dspc.graph().neighbors(g0).first() {
            dspc.delete_edge(g0, VertexId(nb)).unwrap();
        }
        // … and add two random redundant links elsewhere.
        let n = dspc.graph().capacity() as u32;
        for _ in 0..2 {
            loop {
                let a = VertexId(rng.gen_range(0..n));
                let b = VertexId(rng.gen_range(0..n));
                if a != b && !dspc.graph().has_edge(a, b) {
                    dspc.insert_edge(a, b).unwrap();
                    break;
                }
            }
        }
        let now = group_betweenness(&dspc, &gateways);
        println!(
            "epoch {epoch}: B̈(C) = {now:.1}  ({:+.1} vs initial)",
            now - initial
        );
    }

    // Single-vertex betweenness from pure index queries, cross-checked
    // against the classic Brandes algorithm.
    let v = gateways[0];
    let via_index = vertex_betweenness(&dspc, v);
    let via_brandes = dspc_apps::betweenness::brandes_betweenness(dspc.graph())[v.index()];
    println!(
        "\nBetweenness of {v}: index = {via_index:.3}, Brandes = {via_brandes:.3} (|Δ| = {:.1e})",
        (via_index - via_brandes).abs()
    );
    assert!((via_index - via_brandes).abs() < 1e-6);
    println!("Index-based betweenness matches Brandes. OK");
}
