//! Friend recommendation over a churning social network — the paper's §1
//! motivating application at scale.
//!
//! A scale-free social graph takes a live stream of follow/unfollow events;
//! after every event the service answers "who should user X befriend?"
//! straight from the maintained SPC-Index: candidates at equal distance are
//! ranked by shortest-path count (= number of independent mutual-friend
//! chains), exactly Figure 1's argument.
//!
//! Run with: `cargo run --release --example friend_recommendation`

use dspc::{DynamicSpc, OrderingStrategy};
use dspc_apps::recommendation::recommend_links;
use dspc_graph::generators::random::barabasi_albert;
use dspc_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x50C1A1);
    let n = 2000u32;
    let graph = barabasi_albert(n as usize, 3, &mut rng);
    println!(
        "Social network: {} users, {} friendships",
        graph.num_vertices(),
        graph.num_edges()
    );

    let t = Instant::now();
    let mut dspc = DynamicSpc::build(graph, OrderingStrategy::Degree);
    println!("Index built in {:?}\n", t.elapsed());

    let user = VertexId(42);
    println!("Top recommendations for user {user} (distance ≤ 2):");
    for r in recommend_links(&dspc, user, 5, 2) {
        println!(
            "  user {:<5} — {} mutual chains at distance {}",
            r.candidate.0, r.paths, r.distance
        );
    }

    // Live stream: 300 follows, 30 unfollows.
    let t = Instant::now();
    let mut follows = 0;
    let mut unfollows = 0;
    while follows < 300 {
        let a = VertexId(rng.gen_range(0..n));
        let b = VertexId(rng.gen_range(0..n));
        if a != b && !dspc.graph().has_edge(a, b) {
            dspc.insert_edge(a, b).unwrap();
            follows += 1;
        }
    }
    while unfollows < 30 {
        let m = dspc.graph().num_edges();
        let (a, b) = dspc.graph().nth_edge(rng.gen_range(0..m)).unwrap();
        dspc.delete_edge(a, b).unwrap();
        unfollows += 1;
    }
    let dt = t.elapsed();
    println!(
        "\nApplied {follows} follows + {unfollows} unfollows in {:?} ({:?}/event)",
        dt,
        dt / (follows + unfollows)
    );

    println!("\nRecommendations for user {user} after the stream:");
    for r in recommend_links(&dspc, user, 5, 2) {
        println!(
            "  user {:<5} — {} mutual chains at distance {}",
            r.candidate.0, r.paths, r.distance
        );
    }

    // Sanity: the maintained index still agrees with BFS on a sample.
    dspc::verify::verify_sampled_pairs(
        dspc.graph(),
        dspc.index(),
        2000,
        &mut StdRng::seed_from_u64(1),
    )
    .unwrap();
    println!("\nSampled verification against counting BFS: OK");
}
