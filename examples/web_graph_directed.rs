//! Directed web-graph maintenance — the Appendix C.1 extension in action.
//!
//! Hyperlinks are directed; `SPC(s → t)` counts shortest *click chains*
//! from page `s` to page `t`. The directed SPC-Index (`L_in`/`L_out` per
//! page) follows link additions and removals without reindexing.
//!
//! Run with: `cargo run --release --example web_graph_directed`

use dspc::directed::DynamicDirectedSpc;
use dspc::OrderingStrategy;
use dspc_graph::generators::random::{barabasi_albert, random_orientation};
use dspc_graph::traversal::dbfs::DirectedBfsCounter;
use dspc_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(0x3EB);
    // A scale-free site graph, each link oriented (20% reciprocal).
    let base = barabasi_albert(1500, 3, &mut rng);
    let web = random_orientation(&base, 0.2, &mut rng);
    println!(
        "Web graph: {} pages, {} hyperlinks",
        web.num_vertices(),
        web.num_arcs()
    );
    let mut site = DynamicDirectedSpc::build(web, OrderingStrategy::Degree);

    let (home, deep) = (VertexId(0), VertexId(1234));
    let report = |site: &DynamicDirectedSpc, label: &str| match site.query(home, deep) {
        Some((d, c)) => println!("  {label}: {c} shortest click chain(s) of length {d}"),
        None => println!("  {label}: unreachable"),
    };
    println!("\nNavigation home → page {}:", deep.0);
    report(&site, "initial");

    // The CMS publishes new cross-links…
    let mut added = Vec::new();
    for _ in 0..40 {
        loop {
            let a = VertexId(rng.gen_range(0..1500));
            let b = VertexId(rng.gen_range(0..1500));
            if a != b && !site.graph().has_arc(a, b) {
                site.insert_arc(a, b).unwrap();
                added.push((a, b));
                break;
            }
        }
    }
    report(&site, "after 40 new links");

    // …and a cleanup pass removes half of them again.
    for &(a, b) in added.iter().take(20) {
        site.delete_arc(a, b).unwrap();
    }
    report(&site, "after removing 20");

    // Navigability is asymmetric — check the reverse direction too.
    match site.query(deep, home) {
        Some((d, c)) => println!("  reverse: {c} chain(s) of length {d}"),
        None => println!("  reverse: page {} cannot reach home", deep.0),
    }

    // Verify the maintained directed index against directed BFS.
    let mut bfs = DirectedBfsCounter::new(site.graph().capacity());
    let mut checked = 0;
    for _ in 0..2000 {
        let s = VertexId(rng.gen_range(0..1500));
        let t = VertexId(rng.gen_range(0..1500));
        assert_eq!(site.query(s, t), bfs.count(site.graph(), s, t));
        checked += 1;
    }
    println!("\nVerified {checked} random directed queries against BFS: OK");
}
