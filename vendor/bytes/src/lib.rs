//! Offline stand-in for the `bytes` crate: the subset the DSPC index codec
//! uses — [`BytesMut`] as an append-only builder, [`Bytes`] as a frozen
//! buffer, [`BufMut`] little-endian writers, and [`Buf`] readers over
//! `&[u8]` that advance the slice as they consume it.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer (here: a plain owned `Vec<u8>` behind `Deref`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Little-endian append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Little-endian consuming reads. Implemented for `&[u8]`, advancing the
/// slice binding itself (as upstream `bytes` does).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Discards the next `cnt` bytes. Panics when not enough remain
    /// (mirrors upstream).
    fn advance(&mut self, cnt: usize);

    /// Copies exactly `dst.len()` bytes out, consuming them. Panics when
    /// not enough bytes remain (mirrors upstream).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR!");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 16);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.remaining(), 16);
        let mut magic = [0u8; 4];
        rd.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        let mut skip: &[u8] = &frozen;
        skip.advance(4);
        assert_eq!(skip.remaining(), 12);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), u64::MAX - 1);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.get_u32_le();
    }
}
