//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive macro, like
//! the real crate with its `derive` feature) so existing `#[derive(...)]`
//! decorations compile without registry access. The derives emit no impls —
//! nothing in this workspace serializes through serde; the index uses the
//! hand-rolled codec in `dspc::serialize`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
