//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's bench targets (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `iter`/`iter_batched`) compiling and runnable without
//! registry access. Measurement is deliberately simple: each benchmark runs
//! a warmup pass then `sample_size` timed samples and prints mean/min wall
//! time per iteration. No statistics, plots, or comparisons — use upstream
//! criterion for those; numbers printed here are indicative only.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between timings (accepted, not acted on —
/// every batch here is one input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum time per timed sample, filled by `iter*`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size.min(self.criterion.max_samples), f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, samples: usize, f: F) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            println!("bench {name:<48} mean {mean:>12.3?}  min {min:>12.3?}  ({samples} samples)")
        }
        None => println!("bench {name:<48} (no measurement taken)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the offline harness quick: callers' sample_size() lowers
        // further, never raises above this cap.
        Criterion { max_samples: 10 }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.max_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, self.max_samples, f);
        self
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (for `harness = false` bench
/// targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        let mut group = c.benchmark_group("toy");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| {
                calls += 1;
                (0..10u64).sum::<u64>()
            })
        });
        assert!(calls >= 4, "warmup + samples should run: {calls}");
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |x| x * x, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(toy_group, toy);

    #[test]
    fn harness_runs() {
        toy_group();
    }
}
