//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace decorates types with `#[derive(Serialize, Deserialize)]`
//! for future wire-format work but never invokes the traits (the index has
//! its own binary codec in `dspc::serialize`). Emitting no impls keeps the
//! derives compiling without the real proc-macro stack.

use proc_macro::TokenStream;

/// Accepts and discards a `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
