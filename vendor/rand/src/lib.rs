//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact surface it consumes: [`rngs::StdRng`] (xoshiro256**, seeded via
//! SplitMix64), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`] with
//! `choose`/`shuffle`. Determinism per seed is the only contract the
//! workspace relies on; statistical quality matches xoshiro256**.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from the unit/standard distribution of `T`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add((rng.next_u64() % (span.wrapping_add(1)).max(1)) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from `T`'s standard distribution (`f64` in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256**, SplitMix64-seeded). Not the
    /// upstream `StdRng` algorithm, but the workspace only relies on
    /// per-seed determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "suspicious balance: {hits}");
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [1, 2, 3, 4];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        let mut ys: Vec<u32> = (0..50).collect();
        ys.shuffle(&mut rng);
        let mut sorted = ys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(ys, sorted, "50 elements should not shuffle to identity");
    }
}
