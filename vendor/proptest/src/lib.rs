//! Offline stand-in for `proptest`.
//!
//! Implements the generate-and-check core of property testing with the API
//! surface this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`boxed`, ranges and tuples as strategies,
//! [`collection::vec`], `num::*::ANY`, `bool::ANY`, [`ProptestConfig`],
//! and the [`proptest!`], [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!`
//! macros.
//!
//! Differences from upstream: no shrinking (failures report the generated
//! case via the panic message only), and seeding is a deterministic
//! function of `module_path!() :: test name :: case index` — every run
//! explores the same cases, which suits a CI-oriented repository.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic case-level RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test, case)` pair — stable across runs.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-maps generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among equally weighted strategies ([`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Constant strategy (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a `vec` length specification.
    pub trait SizeRange {
        /// Draws a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `proptest::collection::vec`: vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! any_module {
    ($($mod_name:ident : $t:ty => $gen:expr;)*) => {$(
        pub mod $mod_name {
            //! `ANY` strategy for this primitive.

            use super::{Strategy, TestRng};

            /// Full-domain uniform strategy.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            /// `proptest::<type>::ANY`.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
        }
    )*};
}

pub mod num {
    //! Numeric `ANY` strategies (`proptest::num::u64::ANY`, …).

    use super::{Strategy, TestRng};

    any_module! {
        u64: u64 => |rng| rng.next_u64();
        u32: u32 => |rng| rng.next_u64() as u32;
        usize: usize => |rng| rng.next_u64() as usize;
    }
}

any_module! {
    bool: bool => |rng| rng.next_u64() & 1 == 1;
}

pub mod prelude {
    //! Glob-import surface (`use proptest::prelude::*`).

    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Boolean property assertion (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality property assertion (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller and passed
/// through) running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $(let $arg = $strat;)*
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("self_test", 0);
        let s = (1u32..5, 10u64..=20).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((10..=20).contains(&b));
        }
        let v = crate::collection::vec(0u32..3, 2..=4usize);
        for _ in 0..100 {
            let xs = v.generate(&mut rng);
            assert!((2..=4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 3));
        }
        let exact = crate::collection::vec(0u32..3, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = crate::TestRng::for_case("self_test_fm", 0);
        let s = (2usize..6).prop_flat_map(|n| crate::collection::vec(0..n as u32, n));
        for _ in 0..100 {
            let xs = s.generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| (x as usize) < xs.len()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::for_case("self_test_oneof", 0);
        let s = prop_oneof![(0u32..1).prop_map(|_| 'a'), (0u32..1).prop_map(|_| 'b')];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: doc comments, multiple args, assertions.
        #[test]
        fn macro_generates_and_checks(x in 0u32..100, ys in crate::collection::vec(0u64..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 10).count(), 0);
        }

        #[test]
        fn macro_supports_any(b in crate::bool::ANY, n in crate::num::u64::ANY) {
            let _ = (b, n);
        }
    }
}
