//! Workspace root helper crate: re-exports for examples and integration tests.
//!
//! See the member crates for the actual library surface:
//! [`dspc`], [`dspc_graph`], [`dspc_apps`].
pub use dspc;
pub use dspc_apps;
pub use dspc_graph;
