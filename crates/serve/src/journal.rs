//! Durability for the serving layer: a write-ahead batch journal, atomic
//! checkpoints, and crash recovery.
//!
//! ## On-disk layout
//!
//! A journal directory holds one *generation* of durable state plus the
//! commit pointer that names it:
//!
//! ```text
//! MANIFEST            commit pointer: magic ─ generation ─ epoch ─ crc64
//! state-<gen>.dspc    engine checkpoint ([`DurableEngine::encode_state`])
//! wal-<gen>.log       write-ahead log of everything since that checkpoint
//! ```
//!
//! The WAL is a sequence of records, each `len u32 │ crc64 u64 │ payload`,
//! with the crc over the payload. Payload op codes:
//!
//! | op | record | meaning |
//! |----|--------|---------|
//! | 1  | checkpoint header | first record of every WAL: generation, epoch, and the [`ServerStats`](crate::ServerStats) counters at checkpoint time |
//! | 2  | batch  | one submitted update batch, encoded via [`JournalUpdate`] |
//! | 3  | epoch marker | the batches since the previous marker were applied and published as this epoch |
//! | 4  | quarantine | the batches since the previous marker were rejected by a failed rotation — recovery must *not* replay them |
//!
//! ## The checkpoint protocol
//!
//! [`crate::EpochServer::checkpoint`] makes the generation switch crash-atomic by
//! ordering writes so every prefix is recoverable: (1) write
//! `state-<gen+1>` via temp-file + rename, (2) create `wal-<gen+1>` with
//! its header and a re-journaled copy of the still-pending batches,
//! (3) atomically rename `MANIFEST` — the commit point — and only then
//! (4) best-effort delete the old generation. A crash before (3) leaves
//! the old generation authoritative (the new files are orphans recovery
//! cleans up); a crash after (3) leaves the new generation authoritative.
//!
//! ## Recovery
//!
//! [`crate::EpochServer::recover`] reads `MANIFEST`, decodes the named state file
//! back into a live engine, and replays the WAL: every marker-terminated
//! group of batches is submitted and rotated exactly as the crashed server
//! rotated it (one coalesced `apply_batch` per epoch), quarantined groups
//! are skipped, and unmarked trailing batches are restored to the pending
//! buffer. A torn or checksum-corrupt *final* record (the crash interrupted
//! an append) is dropped and the WAL truncated to the last valid prefix;
//! corruption *before* the final record fails loudly with
//! [`JournalError::Corrupt`]. Because the state decode is exact (the graph
//! adjacency invariant is order-independent and the flat index thaws back
//! bit-identically) and replay regroups batches exactly as the live server
//! coalesced them, a recovered server answers queries and accumulates
//! maintenance counters bit-identically to one that never crashed —
//! `tests/fault_injection.rs` proves this for every scripted failpoint.

use crate::engine::ServingEngine;
use bytes::{BufMut, BytesMut};
use dspc::directed::ArcUpdate;
use dspc::dynamic::GraphUpdate;
use dspc::policy::{MaintenancePolicy, ManagedSpc};
use dspc::serialize::{crc64, decode_flat, encode_flat, CodecError};
use dspc::weighted::WeightedUpdate;
use dspc::{DynamicSpc, FlatIndex, MaintenanceThreads, OrderingStrategy};
use dspc_graph::{UndirectedGraph, VertexId};
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &[u8; 8] = b"DSPCMANI";
const STATE_MAGIC: &[u8; 8] = b"DSPCSTAT";
// v2: the managed-policy section gained the tiered re-rank fields
// (batched/local staleness thresholds and swap budgets).
const STATE_VERSION: u32 = 2;
const OP_CHECKPOINT: u8 = 1;
const OP_BATCH: u8 = 2;
const OP_EPOCH: u8 = 3;
const OP_QUARANTINE: u8 = 4;
/// Record framing overhead: `len u32` + `crc64 u64`.
const RECORD_HEADER: usize = 12;
/// Upper bound on a single record so a garbage length prefix cannot force
/// a huge allocation during parsing.
const MAX_RECORD_LEN: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong journaling, checkpointing, or recovering.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O failure from the filesystem.
    Io(io::Error),
    /// Durable bytes failed validation; `section` names what was damaged
    /// and `offset` is the byte position within that file.
    Corrupt {
        /// Which on-disk structure failed validation (`"manifest"`,
        /// `"state"`, `"wal-header"`, `"wal-record"`, `"wal-batch"`, ...).
        section: &'static str,
        /// Byte offset within the damaged file.
        offset: u64,
    },
    /// The embedded flat-index image failed to decode.
    Codec(CodecError),
    /// A journaled batch failed to re-apply during recovery — the WAL and
    /// the checkpointed state disagree (e.g. a quarantine record for a
    /// rejected batch was lost).
    ReplayFailed(String),
    /// A scripted [`Failpoint`] fired: the simulated crash the
    /// fault-injection harness asked for.
    InjectedCrash(Failpoint),
    /// The operation requires a journal but the server runs without one.
    NotJournaled,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { section, offset } => {
                write!(f, "corrupt journal '{section}' at byte {offset}")
            }
            JournalError::Codec(e) => write!(f, "corrupt checkpoint index image: {e}"),
            JournalError::ReplayFailed(msg) => write!(f, "WAL replay failed: {msg}"),
            JournalError::InjectedCrash(fp) => write!(f, "injected crash at {fp:?}"),
            JournalError::NotJournaled => write!(f, "server has no journal attached"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> Self {
        JournalError::Codec(e)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A scripted crash site inside the durability protocol. When armed (via
/// [`FaultPlan`]), reaching the site simulates a process kill: the
/// operation returns [`JournalError::InjectedCrash`] and the server drops
/// its journal handle — exactly the state a real crash leaves on disk,
/// with the in-memory server to be abandoned by the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Failpoint {
    /// Die in `submit` *before* the batch reaches the WAL (the batch is
    /// lost — it was never acknowledged as durable).
    KillBeforeAppend,
    /// Die in `submit` *after* the WAL append + sync but before the batch
    /// enters the pending buffer (the batch is durable; recovery must
    /// restore it as pending).
    KillAfterAppend,
    /// Die in `checkpoint` after the new state file is written but before
    /// the `MANIFEST` commit (the old generation stays authoritative).
    KillAfterStateFile,
    /// Die in `checkpoint` after the `MANIFEST` commit but before the old
    /// generation is cleaned up (the new generation is authoritative).
    KillAfterManifest,
}

/// A deterministic schedule of [`Failpoint`]s: each armed failpoint fires
/// exactly once, in order, when its site is reached.
#[derive(Debug, Default)]
pub struct FaultPlan {
    armed: VecDeque<Failpoint>,
}

impl FaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `fp` after any previously armed failpoints.
    pub fn inject(mut self, fp: Failpoint) -> Self {
        self.armed.push_back(fp);
        self
    }

    /// Whether any failpoints remain armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Consumes and fires the next armed failpoint if it is `site`.
    pub(crate) fn fires(&mut self, site: Failpoint) -> bool {
        if self.armed.front() == Some(&site) {
            self.armed.pop_front();
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Update codecs
// ---------------------------------------------------------------------------

/// A self-describing binary codec for one update vocabulary — what lets a
/// WAL batch record hold any [`ServingEngine::Update`]. Encodings are
/// little-endian and fixed per variant; `decode` returns `None` on any
/// malformed or truncated input (the caller reports it as corruption).
pub trait JournalUpdate: Sized {
    /// Appends the binary form of `self`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes one update from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

fn take_u8(buf: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = buf.split_first()?;
    *buf = rest;
    Some(b)
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Some(u32::from_le_bytes(head.try_into().unwrap()))
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    if buf.len() < 8 {
        return None;
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Some(u64::from_le_bytes(head.try_into().unwrap()))
}

impl JournalUpdate for GraphUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        match *self {
            GraphUpdate::InsertEdge(a, b) => {
                buf.put_u8(1);
                buf.put_u32_le(a.0);
                buf.put_u32_le(b.0);
            }
            GraphUpdate::DeleteEdge(a, b) => {
                buf.put_u8(2);
                buf.put_u32_le(a.0);
                buf.put_u32_le(b.0);
            }
            GraphUpdate::InsertVertex => buf.put_u8(3),
            GraphUpdate::DeleteVertex(v) => {
                buf.put_u8(4);
                buf.put_u32_le(v.0);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(match take_u8(buf)? {
            1 => GraphUpdate::InsertEdge(VertexId(take_u32(buf)?), VertexId(take_u32(buf)?)),
            2 => GraphUpdate::DeleteEdge(VertexId(take_u32(buf)?), VertexId(take_u32(buf)?)),
            3 => GraphUpdate::InsertVertex,
            4 => GraphUpdate::DeleteVertex(VertexId(take_u32(buf)?)),
            _ => return None,
        })
    }
}

impl JournalUpdate for ArcUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        match *self {
            ArcUpdate::InsertArc(a, b) => {
                buf.put_u8(1);
                buf.put_u32_le(a.0);
                buf.put_u32_le(b.0);
            }
            ArcUpdate::DeleteArc(a, b) => {
                buf.put_u8(2);
                buf.put_u32_le(a.0);
                buf.put_u32_le(b.0);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(match take_u8(buf)? {
            1 => ArcUpdate::InsertArc(VertexId(take_u32(buf)?), VertexId(take_u32(buf)?)),
            2 => ArcUpdate::DeleteArc(VertexId(take_u32(buf)?), VertexId(take_u32(buf)?)),
            _ => return None,
        })
    }
}

impl JournalUpdate for WeightedUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        match *self {
            WeightedUpdate::InsertEdge(a, b, w) => {
                buf.put_u8(1);
                buf.put_u32_le(a.0);
                buf.put_u32_le(b.0);
                buf.put_u32_le(w);
            }
            WeightedUpdate::DeleteEdge(a, b) => {
                buf.put_u8(2);
                buf.put_u32_le(a.0);
                buf.put_u32_le(b.0);
            }
            WeightedUpdate::SetWeight(a, b, w) => {
                buf.put_u8(3);
                buf.put_u32_le(a.0);
                buf.put_u32_le(b.0);
                buf.put_u32_le(w);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(match take_u8(buf)? {
            1 => WeightedUpdate::InsertEdge(
                VertexId(take_u32(buf)?),
                VertexId(take_u32(buf)?),
                take_u32(buf)?,
            ),
            2 => WeightedUpdate::DeleteEdge(VertexId(take_u32(buf)?), VertexId(take_u32(buf)?)),
            3 => WeightedUpdate::SetWeight(
                VertexId(take_u32(buf)?),
                VertexId(take_u32(buf)?),
                take_u32(buf)?,
            ),
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------------
// Durable engines
// ---------------------------------------------------------------------------

/// A serving engine whose complete live state round-trips through bytes —
/// the capability [`crate::EpochServer::checkpoint`] and [`crate::EpochServer::recover`]
/// require. `decode_state(encode_state())` must reconstruct an engine that
/// is *bit-identical* for all future behavior: same answers, same
/// maintenance counters on every subsequent batch.
pub trait DurableEngine: ServingEngine {
    /// Serializes the complete live state (graph, index, and every counter
    /// that influences future behavior).
    fn encode_state(&self) -> Vec<u8>;
    /// Reconstructs the engine from [`DurableEngine::encode_state`] bytes.
    fn decode_state(data: &[u8]) -> Result<Self, JournalError>
    where
        Self: Sized;
}

const STATE_KIND_DYNAMIC: u8 = 1;
const STATE_KIND_MANAGED: u8 = 2;

fn encode_strategy(buf: &mut BytesMut, s: OrderingStrategy) {
    let (tag, seed) = match s {
        OrderingStrategy::Degree => (0u8, 0u64),
        OrderingStrategy::Identity => (1, 0),
        OrderingStrategy::Random(seed) => (2, seed),
    };
    buf.put_u8(tag);
    buf.put_u64_le(seed);
}

fn encode_dynamic_state(d: &DynamicSpc, managed: Option<(MaintenancePolicy, usize)>) -> Vec<u8> {
    let flat_bytes = encode_flat(&FlatIndex::freeze(d.index()));
    let g = d.graph();
    let mut buf = BytesMut::with_capacity(flat_bytes.len() + 16 * g.num_edges() + 128);
    buf.put_slice(STATE_MAGIC);
    buf.put_u32_le(STATE_VERSION);
    buf.put_u8(if managed.is_some() {
        STATE_KIND_MANAGED
    } else {
        STATE_KIND_DYNAMIC
    });
    encode_strategy(&mut buf, d.strategy());
    match d.maintenance_threads() {
        MaintenanceThreads::Auto => {
            buf.put_u8(0);
            buf.put_u64_le(0);
        }
        MaintenanceThreads::Fixed(n) => {
            buf.put_u8(1);
            buf.put_u64_le(n as u64);
        }
    }
    buf.put_u64_le(d.updates_since_build() as u64);
    if let Some((policy, rebuilds)) = managed {
        match policy.max_updates {
            Some(n) => {
                buf.put_u8(1);
                buf.put_u64_le(n as u64);
            }
            None => {
                buf.put_u8(0);
                buf.put_u64_le(0);
            }
        }
        for threshold in [
            policy.max_staleness,
            policy.batched_staleness,
            policy.local_staleness,
        ] {
            match threshold {
                Some(x) => {
                    buf.put_u8(1);
                    buf.put_u64_le(x.to_bits());
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u64_le(0);
                }
            }
        }
        buf.put_u64_le(policy.local_swap_budget as u64);
        buf.put_u64_le(policy.batched_swap_budget as u64);
        buf.put_u64_le(rebuilds as u64);
    }
    buf.put_u64_le(g.capacity() as u64);
    for slot in 0..g.capacity() {
        buf.put_u8(g.contains_vertex(VertexId(slot as u32)) as u8);
    }
    buf.put_u64_le(g.num_edges() as u64);
    for (u, v) in g.edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(v.0);
    }
    buf.put_u64_le(flat_bytes.len() as u64);
    buf.put_slice(&flat_bytes);
    let crc = crc64(&buf);
    buf.put_u64_le(crc);
    buf.freeze().to_vec()
}

fn decode_dynamic_state(
    data: &[u8],
) -> Result<(DynamicSpc, Option<(MaintenancePolicy, usize)>), JournalError> {
    let corrupt = |section| JournalError::Corrupt { section, offset: 0 };
    if data.len() < STATE_MAGIC.len() + 12 {
        return Err(corrupt("state"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 8);
    if crc64(body) != u64::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Err(corrupt("state"));
    }
    let mut rd = body;
    let (magic, rest) = rd.split_at(STATE_MAGIC.len());
    rd = rest;
    if magic != STATE_MAGIC {
        return Err(corrupt("state"));
    }
    if take_u32(&mut rd).ok_or_else(|| corrupt("state"))? != STATE_VERSION {
        return Err(corrupt("state"));
    }
    let next = |rd: &mut &[u8]| take_u64(rd).ok_or_else(|| corrupt("state"));
    let kind = take_u8(&mut rd).ok_or_else(|| corrupt("state"))?;
    let strategy = {
        let tag = take_u8(&mut rd).ok_or_else(|| corrupt("state"))?;
        let seed = next(&mut rd)?;
        match tag {
            0 => OrderingStrategy::Degree,
            1 => OrderingStrategy::Identity,
            2 => OrderingStrategy::Random(seed),
            _ => return Err(corrupt("state")),
        }
    };
    let threads = {
        let tag = take_u8(&mut rd).ok_or_else(|| corrupt("state"))?;
        let n = next(&mut rd)?;
        match tag {
            0 => MaintenanceThreads::Auto,
            1 => MaintenanceThreads::Fixed(n as usize),
            _ => return Err(corrupt("state")),
        }
    };
    let updates_since_build = next(&mut rd)? as usize;
    let managed = if kind == STATE_KIND_MANAGED {
        let opt = |rd: &mut &[u8]| -> Result<Option<u64>, JournalError> {
            let flag = take_u8(rd).ok_or_else(|| corrupt("state"))?;
            let v = take_u64(rd).ok_or_else(|| corrupt("state"))?;
            Ok((flag == 1).then_some(v))
        };
        let max_updates = opt(&mut rd)?.map(|n| n as usize);
        let max_staleness = opt(&mut rd)?.map(f64::from_bits);
        let batched_staleness = opt(&mut rd)?.map(f64::from_bits);
        let local_staleness = opt(&mut rd)?.map(f64::from_bits);
        let local_swap_budget = next(&mut rd)? as usize;
        let batched_swap_budget = next(&mut rd)? as usize;
        let rebuilds = next(&mut rd)? as usize;
        Some((
            MaintenancePolicy {
                max_updates,
                max_staleness,
                batched_staleness,
                local_staleness,
                local_swap_budget,
                batched_swap_budget,
            },
            rebuilds,
        ))
    } else if kind == STATE_KIND_DYNAMIC {
        None
    } else {
        return Err(corrupt("state"));
    };
    let capacity = next(&mut rd)? as usize;
    if rd.len() < capacity {
        return Err(corrupt("state"));
    }
    let (alive, rest) = rd.split_at(capacity);
    rd = rest;
    // Rebuild the graph exactly: the adjacency invariant (sorted neighbor
    // lists) makes the final representation independent of insertion
    // order, so replaying the edge list reconstructs it bit-for-bit.
    let mut graph = UndirectedGraph::with_vertices(capacity);
    for (slot, &flag) in alive.iter().enumerate() {
        if flag == 0 {
            graph
                .delete_vertex(VertexId(slot as u32))
                .map_err(|_| corrupt("state"))?;
        }
    }
    let edges = next(&mut rd)? as usize;
    for _ in 0..edges {
        let u = VertexId(take_u32(&mut rd).ok_or_else(|| corrupt("state"))?);
        let v = VertexId(take_u32(&mut rd).ok_or_else(|| corrupt("state"))?);
        graph
            .insert_edge(u, v)
            .map_err(|e| JournalError::ReplayFailed(format!("state edge list: {e}")))?;
    }
    let flat_len = next(&mut rd)? as usize;
    if rd.len() != flat_len {
        return Err(corrupt("state"));
    }
    let flat = decode_flat(rd)?;
    if flat.num_vertices() != graph.capacity() {
        return Err(corrupt("state"));
    }
    let mut d = DynamicSpc::from_parts(graph, flat.thaw(), strategy);
    d.set_maintenance_threads(threads);
    d.restore_update_pressure(updates_since_build);
    Ok((d, managed))
}

impl DurableEngine for DynamicSpc {
    fn encode_state(&self) -> Vec<u8> {
        encode_dynamic_state(self, None)
    }

    fn decode_state(data: &[u8]) -> Result<Self, JournalError> {
        match decode_dynamic_state(data)? {
            (d, None) => Ok(d),
            (_, Some(_)) => Err(JournalError::Corrupt {
                section: "state",
                offset: 0,
            }),
        }
    }
}

impl DurableEngine for ManagedSpc {
    fn encode_state(&self) -> Vec<u8> {
        encode_dynamic_state(self.inner(), Some((self.policy(), self.rebuilds())))
    }

    fn decode_state(data: &[u8]) -> Result<Self, JournalError> {
        match decode_dynamic_state(data)? {
            (d, Some((policy, rebuilds))) => Ok(ManagedSpc::recover(d, policy, rebuilds)),
            (_, None) => Err(JournalError::Corrupt {
                section: "state",
                offset: 0,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Paths, manifest, atomic writes
// ---------------------------------------------------------------------------

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

fn state_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("state-{generation}.dspc"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

/// The path of the currently authoritative WAL in `dir` (per `MANIFEST`).
/// The fault-injection harness uses this to tear and bit-flip records.
pub fn current_wal_path(dir: impl AsRef<Path>) -> Result<PathBuf, JournalError> {
    let dir = dir.as_ref();
    let (generation, _) = read_manifest(dir)?;
    Ok(wal_path(dir, generation))
}

/// Writes `data` to `path` atomically: temp file, sync, rename, sync dir.
fn write_atomic(path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        File::open(parent)?.sync_all()?;
    }
    Ok(())
}

fn write_manifest(dir: &Path, generation: u64, epoch: u64) -> Result<(), JournalError> {
    let mut buf = BytesMut::with_capacity(32);
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u64_le(generation);
    buf.put_u64_le(epoch);
    let crc = crc64(&buf);
    buf.put_u64_le(crc);
    write_atomic(&manifest_path(dir), &buf)?;
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<(u64, u64), JournalError> {
    let data = fs::read(manifest_path(dir))?;
    let corrupt = JournalError::Corrupt {
        section: "manifest",
        offset: 0,
    };
    if data.len() != 32 || &data[..8] != MANIFEST_MAGIC {
        return Err(corrupt);
    }
    let (body, crc_bytes) = data.split_at(24);
    if crc64(body) != u64::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Err(corrupt);
    }
    let generation = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let epoch = u64::from_le_bytes(data[16..24].try_into().unwrap());
    Ok((generation, epoch))
}

/// Removes orphan generation files a mid-checkpoint crash left behind
/// (anything not belonging to the authoritative generation). Best-effort.
fn remove_orphans(dir: &Path, keep_generation: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let keep_state = state_path(dir, keep_generation);
    let keep_wal = wal_path(dir, keep_generation);
    for entry in entries.flatten() {
        let path = entry.path();
        if path == keep_state || path == keep_wal || path == manifest_path(dir) {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("state-") || name.starts_with("wal-") || name.ends_with(".tmp") {
            let _ = fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// The checkpoint header and WAL records
// ---------------------------------------------------------------------------

/// The counters a WAL's checkpoint-header record carries: the server's
/// aggregate statistics at checkpoint time, restored verbatim on recovery
/// so a recovered server's [`ServerStats`](crate::ServerStats) match a
/// never-crashed one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct CheckpointHeader {
    pub generation: u64,
    pub epoch: u64,
    pub rotations: u64,
    pub updates_applied: u64,
    pub rejected_updates: u64,
    pub quarantined_rotations: u64,
    pub replayed_batches: u64,
    pub journal_bytes: u64,
}

impl CheckpointHeader {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(OP_CHECKPOINT);
        for v in [
            self.generation,
            self.epoch,
            self.rotations,
            self.updates_applied,
            self.rejected_updates,
            self.quarantined_rotations,
            self.replayed_batches,
            self.journal_bytes,
        ] {
            buf.put_u64_le(v);
        }
    }

    fn decode(body: &mut &[u8]) -> Option<Self> {
        Some(CheckpointHeader {
            generation: take_u64(body)?,
            epoch: take_u64(body)?,
            rotations: take_u64(body)?,
            updates_applied: take_u64(body)?,
            rejected_updates: take_u64(body)?,
            quarantined_rotations: take_u64(body)?,
            replayed_batches: take_u64(body)?,
            journal_bytes: take_u64(body)?,
        })
    }
}

fn frame_record(payload: &[u8]) -> BytesMut {
    let mut framed = BytesMut::with_capacity(RECORD_HEADER + payload.len());
    framed.put_u32_le(payload.len() as u32);
    framed.put_u64_le(crc64(payload));
    framed.put_slice(payload);
    framed
}

fn encode_batch_record<U: JournalUpdate>(batch: &[U]) -> BytesMut {
    let mut payload = BytesMut::with_capacity(1 + 4 + 16 * batch.len());
    payload.put_u8(OP_BATCH);
    payload.put_u32_le(batch.len() as u32);
    for u in batch {
        u.encode(&mut payload);
    }
    frame_record(&payload)
}

// ---------------------------------------------------------------------------
// The journal writer
// ---------------------------------------------------------------------------

/// The append end of a write-ahead log: owns the open WAL file of the
/// current generation. Created by [`crate::EpochServer::with_journal`], replaced
/// by [`crate::EpochServer::checkpoint`], reattached by [`crate::EpochServer::recover`].
pub struct Journal<U> {
    dir: PathBuf,
    generation: u64,
    writer: BufWriter<File>,
    _updates: PhantomData<fn(&U)>,
}

impl<U: JournalUpdate> Journal<U> {
    /// Creates `wal-<generation>.log` with its checkpoint-header record
    /// plus one batch record per `pending` batch (the still-unapplied
    /// submissions a checkpoint must carry forward). Returns the journal
    /// and the bytes written.
    fn create(
        dir: &Path,
        header: &CheckpointHeader,
        pending: &[U],
    ) -> Result<(Self, u64), JournalError> {
        let mut payload = BytesMut::with_capacity(80);
        header.encode(&mut payload);
        let mut bytes = frame_record(&payload);
        if !pending.is_empty() {
            let rec = encode_batch_record(pending);
            bytes.put_slice(&rec);
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(wal_path(dir, header.generation))?;
        let mut writer = BufWriter::new(file);
        writer.write_all(&bytes)?;
        writer.flush()?;
        writer.get_ref().sync_data()?;
        Ok((
            Journal {
                dir: dir.to_path_buf(),
                generation: header.generation,
                writer,
                _updates: PhantomData,
            },
            bytes.len() as u64,
        ))
    }

    /// Reopens `wal-<generation>.log` for appending, truncated to
    /// `valid_len` (recovery discards any torn tail first).
    fn reattach(dir: &Path, generation: u64, valid_len: u64) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(wal_path(dir, generation))?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            generation,
            writer: BufWriter::new(file),
            _updates: PhantomData,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The generation this journal extends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn append(&mut self, framed: &[u8]) -> Result<u64, JournalError> {
        self.writer.write_all(framed)?;
        Ok(framed.len() as u64)
    }

    /// Appends one batch record. Returns the bytes written (call
    /// [`Journal::sync`] to make them durable).
    pub(crate) fn append_batch(&mut self, batch: &[U]) -> Result<u64, JournalError> {
        let rec = encode_batch_record(batch);
        self.append(&rec)
    }

    /// Appends an epoch marker: every batch record since the previous
    /// marker was applied and published as `epoch`.
    pub(crate) fn append_epoch(&mut self, epoch: u64) -> Result<u64, JournalError> {
        let mut payload = BytesMut::with_capacity(9);
        payload.put_u8(OP_EPOCH);
        payload.put_u64_le(epoch);
        let rec = frame_record(&payload);
        self.append(&rec)
    }

    /// Appends a quarantine marker: every batch record since the previous
    /// marker was rejected by a failed rotation and must not be replayed.
    pub(crate) fn append_quarantine(&mut self) -> Result<u64, JournalError> {
        let rec = frame_record(&[OP_QUARANTINE]);
        self.append(&rec)
    }

    /// Flushes buffered appends and fsyncs the WAL file.
    pub(crate) fn sync(&mut self) -> Result<(), JournalError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }
}

impl<U> Drop for Journal<U> {
    fn drop(&mut self) {
        // Best-effort: push buffered bytes to the OS so a clean drop loses
        // nothing (crash durability is per-append sync, not this).
        let _ = self.writer.flush();
    }
}

// ---------------------------------------------------------------------------
// WAL parsing
// ---------------------------------------------------------------------------

/// Everything recovery learns from one WAL.
#[derive(Debug)]
pub(crate) struct WalReplay<U> {
    pub header: CheckpointHeader,
    /// Marker-terminated groups: the batches of each committed epoch, in
    /// rotation order.
    pub epochs: Vec<Vec<Vec<U>>>,
    /// Batches after the last marker: journaled but never applied —
    /// restored to the pending buffer.
    pub pending: Vec<Vec<U>>,
    /// Failed rotations recorded by quarantine markers.
    pub quarantine_events: u64,
    /// Updates voided by those quarantine markers.
    pub quarantined_updates: u64,
    /// Bytes of torn/corrupt tail dropped from the end of the WAL.
    pub dropped_tail_bytes: u64,
    /// Length of the valid prefix (the WAL is truncated to this before
    /// appends resume).
    pub valid_len: u64,
}

pub(crate) fn parse_wal<U: JournalUpdate>(data: &[u8]) -> Result<WalReplay<U>, JournalError> {
    let mut header: Option<CheckpointHeader> = None;
    let mut epochs: Vec<Vec<Vec<U>>> = Vec::new();
    let mut current: Vec<Vec<U>> = Vec::new();
    let mut quarantine_events = 0u64;
    let mut quarantined_updates = 0u64;
    let mut pos = 0usize;
    let mut valid_len = 0usize;
    while pos < data.len() {
        let remaining = data.len() - pos;
        if remaining < RECORD_HEADER {
            break; // torn tail: incomplete frame header
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let crc = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().unwrap());
        if len > MAX_RECORD_LEN || remaining - RECORD_HEADER < len as usize {
            break; // torn tail: truncated payload (or garbage length)
        }
        let end = pos + RECORD_HEADER + len as usize;
        let payload = &data[pos + RECORD_HEADER..end];
        if crc64(payload) != crc {
            if end == data.len() {
                break; // corrupt final record: drop like a torn tail
            }
            // Corruption with intact records after it is not a crash
            // artifact — refuse to guess.
            return Err(JournalError::Corrupt {
                section: "wal-record",
                offset: pos as u64,
            });
        }
        let corrupt = |section| JournalError::Corrupt {
            section,
            offset: pos as u64,
        };
        let mut body = payload;
        let op = take_u8(&mut body).ok_or_else(|| corrupt("wal-record"))?;
        match (op, header.is_some()) {
            (OP_CHECKPOINT, false) => {
                header =
                    Some(CheckpointHeader::decode(&mut body).ok_or_else(|| corrupt("wal-header"))?);
            }
            (OP_CHECKPOINT, true) | (_, false) => {
                return Err(corrupt("wal-header"));
            }
            (OP_BATCH, true) => {
                let count = take_u32(&mut body).ok_or_else(|| corrupt("wal-batch"))?;
                let mut batch = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    batch.push(U::decode(&mut body).ok_or_else(|| corrupt("wal-batch"))?);
                }
                if !body.is_empty() {
                    return Err(corrupt("wal-batch"));
                }
                current.push(batch);
            }
            (OP_EPOCH, true) => {
                let epoch = take_u64(&mut body).ok_or_else(|| corrupt("wal-epoch"))?;
                let expected = header.as_ref().unwrap().epoch + epochs.len() as u64 + 1;
                if epoch != expected {
                    return Err(corrupt("wal-epoch"));
                }
                epochs.push(std::mem::take(&mut current));
            }
            (OP_QUARANTINE, true) => {
                quarantine_events += 1;
                quarantined_updates += current.iter().map(|b| b.len() as u64).sum::<u64>();
                current.clear();
            }
            _ => return Err(corrupt("wal-record")),
        }
        pos = end;
        valid_len = end;
    }
    let header = header.ok_or(JournalError::Corrupt {
        section: "wal-header",
        offset: 0,
    })?;
    Ok(WalReplay {
        header,
        epochs,
        pending: current,
        quarantine_events,
        quarantined_updates,
        dropped_tail_bytes: (data.len() - valid_len) as u64,
        valid_len: valid_len as u64,
    })
}

// ---------------------------------------------------------------------------
// Recovery report + checkpoint plumbing used by server.rs
// ---------------------------------------------------------------------------

/// What [`crate::EpochServer::recover`] did.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// The generation recovered from.
    pub generation: u64,
    /// The epoch at the recovered checkpoint.
    pub checkpoint_epoch: u64,
    /// The epoch after WAL replay (the server resumes here).
    pub resumed_epoch: u64,
    /// Journaled batches replayed (committed epochs + restored pending).
    pub replayed_batches: u64,
    /// Committed epoch groups re-rotated during replay.
    pub replayed_rotations: u64,
    /// Updates restored to the pending buffer (journaled, never applied).
    pub restored_pending_updates: usize,
    /// Updates skipped because a quarantine marker voided them.
    pub quarantined_updates_skipped: u64,
    /// Torn/corrupt tail bytes dropped from the WAL.
    pub dropped_tail_bytes: u64,
}

/// Stage 1 of a checkpoint: the new generation's state file (atomic).
pub(crate) fn write_checkpoint_state(
    dir: &Path,
    generation: u64,
    state: &[u8],
) -> Result<(), JournalError> {
    write_atomic(&state_path(dir, generation), state)?;
    Ok(())
}

/// Stages 2+3 of a checkpoint: the new generation's WAL (header plus the
/// re-journaled pending batches), then the `MANIFEST` commit. Returns the
/// new journal and the WAL bytes written.
pub(crate) fn commit_checkpoint<U: JournalUpdate>(
    dir: &Path,
    header: &CheckpointHeader,
    pending: &[U],
) -> Result<(Journal<U>, u64), JournalError> {
    let (journal, bytes) = Journal::create(dir, header, pending)?;
    write_manifest(dir, header.generation, header.epoch)?;
    Ok((journal, bytes))
}

/// Stage 4 of a checkpoint (and recovery hygiene): drop files of every
/// generation except the authoritative one. Best-effort.
pub(crate) fn cleanup_generations(dir: &Path, keep_generation: u64) {
    remove_orphans(dir, keep_generation);
}

/// Reads the authoritative generation: `(generation, epoch, state bytes,
/// wal bytes)`.
pub(crate) fn load_generation(dir: &Path) -> Result<(u64, u64, Vec<u8>, Vec<u8>), JournalError> {
    let (generation, epoch) = read_manifest(dir)?;
    let state = fs::read(state_path(dir, generation))?;
    let wal = fs::read(wal_path(dir, generation))?;
    Ok((generation, epoch, state, wal))
}

/// Reopens the WAL for appending after replay truncated its torn tail.
pub(crate) fn reattach_journal<U: JournalUpdate>(
    dir: &Path,
    generation: u64,
    valid_len: u64,
) -> Result<Journal<U>, JournalError> {
    Journal::reattach(dir, generation, valid_len)
}

/// Whether `dir` already holds an initialized journal.
pub(crate) fn manifest_exists(dir: &Path) -> bool {
    manifest_path(dir).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_updates() -> Vec<GraphUpdate> {
        vec![
            GraphUpdate::InsertEdge(VertexId(3), VertexId(9)),
            GraphUpdate::DeleteEdge(VertexId(1), VertexId(2)),
            GraphUpdate::InsertVertex,
            GraphUpdate::DeleteVertex(VertexId(7)),
        ]
    }

    #[test]
    fn update_codecs_round_trip() {
        let mut buf = BytesMut::with_capacity(64);
        for u in sample_updates() {
            u.encode(&mut buf);
        }
        let mut rd: &[u8] = &buf;
        for u in sample_updates() {
            assert_eq!(GraphUpdate::decode(&mut rd), Some(u));
        }
        assert!(rd.is_empty());
        assert_eq!(GraphUpdate::decode(&mut rd), None, "empty input");
        let mut bad: &[u8] = &[9];
        assert_eq!(GraphUpdate::decode(&mut bad), None, "unknown tag");

        let arcs = [
            ArcUpdate::InsertArc(VertexId(0), VertexId(5)),
            ArcUpdate::DeleteArc(VertexId(5), VertexId(0)),
        ];
        let weighted = [
            WeightedUpdate::InsertEdge(VertexId(1), VertexId(2), 7),
            WeightedUpdate::DeleteEdge(VertexId(1), VertexId(2)),
            WeightedUpdate::SetWeight(VertexId(2), VertexId(3), 11),
        ];
        let mut buf = BytesMut::with_capacity(64);
        arcs.iter().for_each(|u| u.encode(&mut buf));
        let mut rd: &[u8] = &buf;
        for u in arcs {
            assert_eq!(ArcUpdate::decode(&mut rd), Some(u));
        }
        let mut buf = BytesMut::with_capacity(64);
        weighted.iter().for_each(|u| u.encode(&mut buf));
        let mut rd: &[u8] = &buf;
        for u in weighted {
            assert_eq!(WeightedUpdate::decode(&mut rd), Some(u));
        }
    }

    #[test]
    fn wal_parse_handles_groups_quarantine_and_torn_tail() {
        let header = CheckpointHeader {
            generation: 3,
            epoch: 5,
            ..CheckpointHeader::default()
        };
        let mut payload = BytesMut::with_capacity(80);
        header.encode(&mut payload);
        let mut wal = frame_record(&payload);
        // Epoch 6: two batches, committed.
        wal.put_slice(&encode_batch_record(&[GraphUpdate::InsertEdge(
            VertexId(0),
            VertexId(1),
        )]));
        wal.put_slice(&encode_batch_record(&[GraphUpdate::InsertEdge(
            VertexId(1),
            VertexId(2),
        )]));
        let mut p = BytesMut::with_capacity(9);
        p.put_u8(OP_EPOCH);
        p.put_u64_le(6);
        wal.put_slice(&frame_record(&p));
        // A rejected batch, quarantined.
        wal.put_slice(&encode_batch_record(&[GraphUpdate::DeleteEdge(
            VertexId(8),
            VertexId(9),
        )]));
        wal.put_slice(&frame_record(&[OP_QUARANTINE]));
        // A pending batch with no marker.
        wal.put_slice(&encode_batch_record(&[GraphUpdate::InsertVertex]));
        let clean_len = wal.len();
        // A torn final record: only half of a frame made it to disk.
        let torn = encode_batch_record(&[GraphUpdate::InsertEdge(VertexId(2), VertexId(3))]);
        wal.put_slice(&torn[..torn.len() / 2]);

        let replay: WalReplay<GraphUpdate> = parse_wal(&wal).unwrap();
        assert_eq!(replay.header, header);
        assert_eq!(replay.epochs.len(), 1);
        assert_eq!(replay.epochs[0].len(), 2);
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0], vec![GraphUpdate::InsertVertex]);
        assert_eq!(replay.quarantine_events, 1);
        assert_eq!(replay.quarantined_updates, 1);
        assert_eq!(replay.valid_len as usize, clean_len);
        assert_eq!(replay.dropped_tail_bytes as usize, wal.len() - clean_len);
    }

    #[test]
    fn wal_parse_rejects_mid_file_corruption_but_drops_final_bitflip() {
        let header = CheckpointHeader::default();
        let mut payload = BytesMut::with_capacity(80);
        header.encode(&mut payload);
        let mut wal = frame_record(&payload).to_vec();
        let first_end = wal.len();
        let rec = encode_batch_record(&[GraphUpdate::InsertEdge(VertexId(0), VertexId(1))]);
        wal.extend_from_slice(&rec);
        let second_end = wal.len();
        wal.extend_from_slice(&encode_batch_record(&[GraphUpdate::InsertVertex]));

        // Bit-flip inside the FINAL record's payload: dropped as a crash
        // artifact, everything before it survives.
        let mut flipped_last = wal.clone();
        let last = flipped_last.len() - 1;
        flipped_last[last] ^= 0x40;
        let replay: WalReplay<GraphUpdate> = parse_wal(&flipped_last).unwrap();
        assert_eq!(replay.pending.len(), 1, "first batch survives");
        assert_eq!(replay.valid_len as usize, second_end);
        assert!(replay.dropped_tail_bytes > 0);

        // The same flip mid-file (with intact records after it) is a hard
        // error naming the damaged record's offset.
        let mut flipped_mid = wal.clone();
        flipped_mid[second_end - 1] ^= 0x40;
        match parse_wal::<GraphUpdate>(&flipped_mid) {
            Err(JournalError::Corrupt { section, offset }) => {
                assert_eq!(section, "wal-record");
                assert_eq!(offset as usize, first_end);
            }
            other => panic!("expected mid-file corruption error, got {other:?}"),
        }
    }

    #[test]
    fn wal_parse_requires_a_header_first() {
        let lone = encode_batch_record(&[GraphUpdate::InsertVertex]);
        match parse_wal::<GraphUpdate>(&lone) {
            Err(JournalError::Corrupt { section, .. }) => assert_eq!(section, "wal-header"),
            other => panic!("expected header error, got {other:?}"),
        }
        // An empty file has no header either.
        assert!(parse_wal::<GraphUpdate>(&[]).is_err());
    }

    #[test]
    fn fault_plan_fires_in_order_and_once() {
        let mut plan = FaultPlan::new()
            .inject(Failpoint::KillAfterAppend)
            .inject(Failpoint::KillAfterManifest);
        assert!(!plan.fires(Failpoint::KillBeforeAppend));
        assert!(!plan.fires(Failpoint::KillAfterManifest), "not yet first");
        assert!(plan.fires(Failpoint::KillAfterAppend));
        assert!(plan.fires(Failpoint::KillAfterManifest));
        assert!(plan.is_empty());
        assert!(!plan.fires(Failpoint::KillAfterManifest), "fires once");
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("dspc-journal-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        write_manifest(&dir, 4, 17).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), (4, 17));
        // Flip a byte of the generation: crc catches it.
        let path = manifest_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[9] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(JournalError::Corrupt {
                section: "manifest",
                ..
            })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dynamic_state_round_trips_exactly() {
        use dspc_graph::UndirectedGraph;
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
        d.set_maintenance_threads(MaintenanceThreads::Fixed(2));
        d.insert_edge(VertexId(0), VertexId(3)).unwrap();
        d.delete_vertex(VertexId(5)).unwrap();
        let bytes = d.encode_state();
        let r = DynamicSpc::decode_state(&bytes).unwrap();
        assert_eq!(r.updates_since_build(), d.updates_since_build());
        assert_eq!(r.maintenance_threads(), MaintenanceThreads::Fixed(2));
        assert_eq!(r.strategy(), d.strategy());
        assert_eq!(r.graph().num_edges(), d.graph().num_edges());
        for s in d.graph().vertices() {
            for t in d.graph().vertices() {
                assert_eq!(r.query(s, t), d.query(s, t));
            }
        }
        // Identical future behavior: the same batch yields the same
        // counters on both.
        let mut r = r;
        let batch = [
            GraphUpdate::InsertEdge(VertexId(1), VertexId(4)),
            GraphUpdate::DeleteEdge(VertexId(0), VertexId(3)),
        ];
        assert_eq!(
            d.apply_batch(&batch).unwrap(),
            r.apply_batch(&batch).unwrap()
        );

        // Corruption is caught by the trailing crc.
        let mut bad = d.encode_state();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            DynamicSpc::decode_state(&bad),
            Err(JournalError::Corrupt {
                section: "state",
                ..
            })
        ));
    }

    #[test]
    fn managed_state_round_trips_policy_and_rebuilds() {
        use dspc_graph::UndirectedGraph;
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = DynamicSpc::build(g, OrderingStrategy::Random(42));
        let mut m = ManagedSpc::new(d, MaintenancePolicy::every(3));
        m.apply(GraphUpdate::InsertEdge(VertexId(0), VertexId(2)))
            .unwrap();
        let bytes = m.encode_state();
        let r = ManagedSpc::decode_state(&bytes).unwrap();
        assert_eq!(r.policy(), m.policy());
        assert_eq!(r.rebuilds(), m.rebuilds());
        assert_eq!(
            r.inner().updates_since_build(),
            m.inner().updates_since_build()
        );
        assert_eq!(r.inner().strategy(), OrderingStrategy::Random(42));
        // Kind confusion is rejected.
        assert!(DynamicSpc::decode_state(&bytes).is_err());
    }
}
