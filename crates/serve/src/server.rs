//! The epoch server: single-writer rotation over the snapshot chain, plus
//! the per-reader handle queries are served through.

use crate::engine::{ServingEngine, ServingSnapshot};
use crate::journal::{
    cleanup_generations, commit_checkpoint, load_generation, manifest_exists, parse_wal,
    reattach_journal, write_checkpoint_state, CheckpointHeader, DurableEngine, Failpoint,
    FaultPlan, Journal, JournalError, RecoveryReport,
};
use crate::publish::{Publisher, Subscription};
use dspc::shard::EpochSnapshot;
use dspc::{FlatScratch, KernelCounters, UpdateStats};
use dspc_graph::VertexId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// Server construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Shared-nothing shards each published snapshot fans out over
    /// (representations without sharding ignore the hint).
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { shards: 1 }
    }
}

/// What one [`EpochServer::rotate`] did.
#[derive(Clone, Copy, Debug)]
pub struct RotationReport {
    /// The epoch just published.
    pub epoch: u64,
    /// Updates drained from the pending buffer into the batch.
    pub batched_updates: usize,
    /// Maintenance counters of the applied batch; `None` when the epoch
    /// had no pending updates (the rotation still publishes, so readers
    /// can observe an explicit epoch boundary).
    pub applied: Option<UpdateStats>,
}

/// Aggregate write-side counters across a server's lifetime. For a
/// journaled server these survive crashes: they are checkpointed into the
/// WAL header and restored (plus replay) by [`EpochServer::recover`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Snapshots published past the initial one.
    pub rotations: u64,
    /// Updates drained into epoch batches.
    pub updates_applied: u64,
    /// Updates handed back to callers by failed rotations (the quarantined
    /// batches of [`RotationError::rejected`]).
    pub rejected_updates: u64,
    /// Rotations that failed and quarantined their batch.
    pub quarantined_rotations: u64,
    /// Journaled batches re-applied by [`EpochServer::recover`].
    pub replayed_batches: u64,
    /// Bytes appended to the write-ahead journal.
    pub journal_bytes: u64,
}

/// Why a rotation failed.
#[derive(Debug)]
pub enum RotationFailure {
    /// The batch failed validation — nothing was applied, the engine is
    /// untouched.
    Invalid(dspc_graph::GraphError),
    /// The engine panicked applying the batch. The panic was contained
    /// (readers keep serving the last good epoch); the payload's message
    /// is carried here.
    Panicked(String),
    /// The write-ahead journal failed (I/O error or injected crash). When
    /// this arises from a quarantine-record append, the journal fault
    /// supersedes the original validation failure.
    Journal(JournalError),
}

/// A failed rotation: why it failed, plus the quarantined batch — the
/// updates are returned to the caller for repair/requeue, never silently
/// dropped. The server stays serviceable: readers keep serving the last
/// published epoch and later rotations proceed normally.
#[derive(Debug)]
pub struct RotationError<U> {
    /// What went wrong.
    pub kind: RotationFailure,
    /// The updates drained for this rotation, handed back un-applied.
    pub rejected: Vec<U>,
}

impl std::fmt::Display for RotationFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RotationFailure::Invalid(e) => write!(f, "batch validation failed: {e}"),
            RotationFailure::Panicked(msg) => write!(f, "engine panicked applying batch: {msg}"),
            RotationFailure::Journal(e) => write!(f, "journal failure: {e}"),
        }
    }
}

impl<U: std::fmt::Debug> std::fmt::Display for RotationError<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rotation failed ({}); {} updates quarantined",
            self.kind,
            self.rejected.len()
        )
    }
}

impl<U: std::fmt::Debug> std::error::Error for RotationError<U> {}

/// A failed submission: the journal refused the batch (or an injected
/// crash fired), and the updates are handed back un-buffered.
#[derive(Debug)]
pub struct SubmitError<U> {
    /// What went wrong in the journal.
    pub error: JournalError,
    /// The updates that were not accepted.
    pub rejected: Vec<U>,
}

impl<U: std::fmt::Debug> std::fmt::Display for SubmitError<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submit failed ({}); {} updates rejected",
            self.error,
            self.rejected.len()
        )
    }
}

impl<U: std::fmt::Debug> std::error::Error for SubmitError<U> {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The single writer: owns the live engine, buffers updates, rotates the
/// published snapshot at epoch boundaries.
///
/// All mutation goes through `&mut self` — the type system enforces the
/// single-writer half of the epoch contract, while [`Reader`] handles
/// (any number, any threads) serve from published snapshots without ever
/// blocking on this writer. To run the writer on its own thread, see
/// [`EpochServer::spawn`].
///
/// A server built with [`EpochServer::with_journal`] additionally
/// write-ahead journals every submitted batch; see the
/// [`journal`](crate::journal) module docs for the durability contract.
pub struct EpochServer<E: ServingEngine> {
    engine: E,
    publisher: Publisher<E::Snapshot>,
    pending: Vec<E::Update>,
    config: ServeConfig,
    stats: ServerStats,
    journal: Option<Journal<E::Update>>,
    faults: FaultPlan,
}

impl<E: ServingEngine> EpochServer<E> {
    /// Wraps `engine` and publishes its current state as the epoch-0
    /// snapshot.
    pub fn new(engine: E, config: ServeConfig) -> Self {
        let initial = engine.freeze(config.shards);
        EpochServer::assemble(
            engine,
            Publisher::new(initial),
            config,
            ServerStats::default(),
        )
    }

    /// Boots a server from an *already-frozen* snapshot (the warm-start
    /// path: a v2 columnar file loads straight into serving position) plus
    /// the live engine that will take over maintenance. The loaded
    /// snapshot is published as epoch 0 as-is — no re-freeze, no rebuild —
    /// so the first queries are served before the engine is even touched.
    pub fn warm_start(engine: E, initial: E::Snapshot, config: ServeConfig) -> Self {
        EpochServer::assemble(
            engine,
            Publisher::new(initial),
            config,
            ServerStats::default(),
        )
    }

    fn assemble(
        engine: E,
        publisher: Publisher<E::Snapshot>,
        config: ServeConfig,
        stats: ServerStats,
    ) -> Self {
        EpochServer {
            engine,
            publisher,
            pending: Vec::new(),
            config,
            stats,
            journal: None,
            faults: FaultPlan::new(),
        }
    }

    /// A new reader handle pinned at the newest published snapshot.
    /// Readers are independent: hand them to other threads freely.
    pub fn reader(&self) -> Reader<E::Snapshot> {
        Reader::new(self.publisher.subscribe())
    }

    /// Queues updates for the next rotation. Nothing is applied — and
    /// nothing a reader can observe changes — until [`EpochServer::rotate`].
    ///
    /// On a journaled server the batch is appended to the write-ahead log
    /// and fsynced *before* it enters the pending buffer: `Ok` means the
    /// updates survive a crash. On error the updates come back in
    /// [`SubmitError::rejected`], un-buffered. Without a journal this
    /// never fails.
    pub fn submit<I: IntoIterator<Item = E::Update>>(
        &mut self,
        updates: I,
    ) -> Result<(), SubmitError<E::Update>> {
        let batch: Vec<E::Update> = updates.into_iter().collect();
        if batch.is_empty() {
            return Ok(());
        }
        if self.journal.is_some() {
            if self.faults.fires(Failpoint::KillBeforeAppend) {
                self.journal = None;
                return Err(SubmitError {
                    error: JournalError::InjectedCrash(Failpoint::KillBeforeAppend),
                    rejected: batch,
                });
            }
            let journal = self.journal.as_mut().expect("checked above");
            match journal
                .append_batch(&batch)
                .and_then(|n| journal.sync().map(|()| n))
            {
                Ok(n) => self.stats.journal_bytes += n,
                Err(error) => {
                    return Err(SubmitError {
                        error,
                        rejected: batch,
                    })
                }
            }
            if self.faults.fires(Failpoint::KillAfterAppend) {
                self.journal = None;
                return Err(SubmitError {
                    error: JournalError::InjectedCrash(Failpoint::KillAfterAppend),
                    rejected: batch,
                });
            }
        }
        self.pending.extend(batch);
        Ok(())
    }

    /// Updates waiting for the next rotation.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// The newest published epoch.
    pub fn epoch(&self) -> u64 {
        self.publisher.epoch()
    }

    /// Aggregate write-side counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The live engine (e.g. for reference queries against the current
    /// epoch's labels).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Whether a write-ahead journal is attached.
    pub fn is_journaled(&self) -> bool {
        self.journal.is_some()
    }

    /// The attached journal's generation, if any.
    pub fn journal_generation(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.generation())
    }

    /// Arms a deterministic crash schedule (see [`FaultPlan`]). Testing
    /// hook: each armed failpoint simulates a process kill at its site.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Flushes and fsyncs the journal (no-op without one). Appends are
    /// already synced individually; this exists for shutdown paths.
    pub fn sync_journal(&mut self) -> Result<(), JournalError> {
        match self.journal.as_mut() {
            Some(j) => j.sync(),
            None => Ok(()),
        }
    }

    /// Ends the current epoch: drains the pending buffer, applies it as
    /// one coalesced batch through the engine (off the read path — readers
    /// keep serving from published snapshots throughout), freezes the
    /// repaired index, and publishes it as the next epoch.
    ///
    /// An empty pending buffer still rotates (publishing an identical
    /// snapshot under a new stamp) so callers can force epoch boundaries.
    ///
    /// On failure nothing is published and the drained batch is
    /// *quarantined*: handed back in [`RotationError::rejected`] for the
    /// caller to repair/requeue (on a journaled server a quarantine record
    /// voids the batch so recovery will not replay it). Engine panics are
    /// contained the same way — no panic propagates to readers or callers.
    pub fn rotate(&mut self) -> Result<RotationReport, RotationError<E::Update>> {
        let batch = std::mem::take(&mut self.pending);
        let applied = if batch.is_empty() {
            None
        } else {
            let engine = &mut self.engine;
            match catch_unwind(AssertUnwindSafe(|| engine.apply_batch(&batch))) {
                Ok(Ok(stats)) => Some(stats),
                Ok(Err(e)) => return Err(self.quarantine(batch, RotationFailure::Invalid(e))),
                Err(payload) => {
                    let kind = RotationFailure::Panicked(panic_message(payload));
                    return Err(self.quarantine(batch, kind));
                }
            }
        };
        let epoch = self
            .publisher
            .publish(self.engine.freeze(self.config.shards));
        self.stats.rotations += 1;
        self.stats.updates_applied += batch.len() as u64;
        if let Some(journal) = self.journal.as_mut() {
            match journal
                .append_epoch(epoch)
                .and_then(|n| journal.sync().map(|()| n))
            {
                Ok(n) => self.stats.journal_bytes += n,
                // The batch WAS applied and published; the marker is
                // missing, so recovery would replay it against the last
                // checkpoint — still exact relative to durable state.
                Err(e) => {
                    return Err(RotationError {
                        kind: RotationFailure::Journal(e),
                        rejected: Vec::new(),
                    })
                }
            }
        }
        Ok(RotationReport {
            epoch,
            batched_updates: batch.len(),
            applied,
        })
    }

    /// Books a failed rotation: counts it, voids the batch journal-side,
    /// and wraps the rejected updates into the error.
    fn quarantine(
        &mut self,
        batch: Vec<E::Update>,
        kind: RotationFailure,
    ) -> RotationError<E::Update> {
        self.stats.rejected_updates += batch.len() as u64;
        self.stats.quarantined_rotations += 1;
        let kind = match self.journal.as_mut() {
            Some(journal) => match journal
                .append_quarantine()
                .and_then(|n| journal.sync().map(|()| n))
            {
                Ok(n) => {
                    self.stats.journal_bytes += n;
                    kind
                }
                Err(e) => RotationFailure::Journal(e),
            },
            None => kind,
        };
        RotationError {
            kind,
            rejected: batch,
        }
    }

    /// Consumes the server, returning the live engine.
    pub fn into_engine(self) -> E {
        self.engine
    }
}

impl<E: DurableEngine> EpochServer<E> {
    /// Like [`EpochServer::new`], but with a write-ahead journal in `dir`:
    /// the engine's state is checkpointed as generation 1 and every
    /// subsequent [`EpochServer::submit`] is journaled before it is
    /// buffered. Refuses a directory that already holds a journal — boot
    /// that with [`EpochServer::recover`] instead.
    pub fn with_journal(
        engine: E,
        config: ServeConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, JournalError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if manifest_exists(dir) {
            return Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "journal directory already initialized; use EpochServer::recover",
            )));
        }
        let mut server = EpochServer::new(engine, config);
        let state = server.engine.encode_state();
        write_checkpoint_state(dir, 1, &state)?;
        let header = CheckpointHeader {
            generation: 1,
            epoch: 0,
            ..CheckpointHeader::default()
        };
        let (journal, bytes) = commit_checkpoint::<E::Update>(dir, &header, &[])?;
        server.stats.journal_bytes += bytes;
        server.journal = Some(journal);
        Ok(server)
    }

    /// Snapshots the live engine as the next generation and truncates the
    /// journal, crash-atomically: state file first, then a fresh WAL
    /// carrying the still-pending batches, then the `MANIFEST` rename that
    /// commits the switch, then best-effort cleanup of the old generation.
    /// A crash at any point leaves a recoverable directory (see the
    /// [`journal`](crate::journal) module docs). Returns the new
    /// generation number.
    pub fn checkpoint(&mut self) -> Result<u64, JournalError> {
        let (dir, old_generation) = match self.journal.as_ref() {
            Some(j) => (j.dir().to_path_buf(), j.generation()),
            None => return Err(JournalError::NotJournaled),
        };
        let generation = old_generation + 1;
        let state = self.engine.encode_state();
        write_checkpoint_state(&dir, generation, &state)?;
        if self.faults.fires(Failpoint::KillAfterStateFile) {
            self.journal = None;
            return Err(JournalError::InjectedCrash(Failpoint::KillAfterStateFile));
        }
        let header = CheckpointHeader {
            generation,
            epoch: self.epoch(),
            rotations: self.stats.rotations,
            updates_applied: self.stats.updates_applied,
            rejected_updates: self.stats.rejected_updates,
            quarantined_rotations: self.stats.quarantined_rotations,
            replayed_batches: self.stats.replayed_batches,
            journal_bytes: self.stats.journal_bytes,
        };
        let (journal, bytes) = commit_checkpoint(&dir, &header, &self.pending)?;
        if self.faults.fires(Failpoint::KillAfterManifest) {
            self.journal = None;
            return Err(JournalError::InjectedCrash(Failpoint::KillAfterManifest));
        }
        self.stats.journal_bytes += bytes;
        self.journal = Some(journal);
        cleanup_generations(&dir, generation);
        Ok(generation)
    }

    /// Boots a server from a journal directory after a crash: decodes the
    /// checkpointed engine state, republishes it at the checkpoint epoch,
    /// replays every committed WAL epoch exactly as the crashed server
    /// rotated it (skipping quarantined batches, dropping a torn tail),
    /// restores unapplied batches to the pending buffer, and reattaches
    /// the journal for further appends. The recovered server is
    /// bit-identical — answers and counters — to one that never crashed.
    pub fn recover(
        dir: impl AsRef<Path>,
        config: ServeConfig,
    ) -> Result<(Self, RecoveryReport), JournalError> {
        let dir = dir.as_ref();
        let (generation, epoch, state, wal) = load_generation(dir)?;
        let engine = E::decode_state(&state)?;
        let replay = parse_wal::<E::Update>(&wal)?;
        if replay.header.generation != generation || replay.header.epoch != epoch {
            return Err(JournalError::Corrupt {
                section: "wal-header",
                offset: 0,
            });
        }
        let initial = engine.freeze(config.shards);
        let stats = ServerStats {
            rotations: replay.header.rotations,
            updates_applied: replay.header.updates_applied,
            rejected_updates: replay.header.rejected_updates + replay.quarantined_updates,
            quarantined_rotations: replay.header.quarantined_rotations + replay.quarantine_events,
            replayed_batches: replay.header.replayed_batches,
            // The header counter predates this generation's WAL; the bytes
            // of every acknowledged append since are exactly the WAL's
            // valid length, so the restored counter matches a server that
            // never crashed.
            journal_bytes: replay.header.journal_bytes + replay.valid_len,
        };
        let mut server = EpochServer::assemble(
            engine,
            Publisher::starting_at(initial, epoch),
            config,
            stats,
        );
        let mut replayed_batches = 0u64;
        let replayed_rotations = replay.epochs.len() as u64;
        // Replay each committed epoch exactly as the crashed server
        // rotated it: all of its batches into the pending buffer, one
        // coalesced rotation. The journal is not attached yet, so replay
        // does not re-append what the WAL already holds.
        for group in replay.epochs {
            for batch in group {
                replayed_batches += 1;
                server.pending.extend(batch);
            }
            server
                .rotate()
                .map_err(|e| JournalError::ReplayFailed(e.kind.to_string()))?;
        }
        let mut restored_pending_updates = 0usize;
        for batch in replay.pending {
            replayed_batches += 1;
            restored_pending_updates += batch.len();
            server.pending.extend(batch);
        }
        server.stats.replayed_batches += replayed_batches;
        server.journal = Some(reattach_journal(dir, generation, replay.valid_len)?);
        cleanup_generations(dir, generation);
        let report = RecoveryReport {
            generation,
            checkpoint_epoch: epoch,
            resumed_epoch: server.epoch(),
            replayed_batches,
            replayed_rotations,
            restored_pending_updates,
            quarantined_updates_skipped: replay.quarantined_updates,
            dropped_tail_bytes: replay.dropped_tail_bytes,
        };
        Ok((server, report))
    }
}

/// A reader's handle: serves queries from its pinned snapshot, advances
/// between epochs only when asked, and keeps deterministic serving
/// counters (queries served, stale-epoch reads, per-shard kernel work).
///
/// Handles are `Send` — create them on the writer thread, move them into
/// reader threads. Queries never lock: the pinned snapshot is immutable
/// and refreshing is a wait-free pointer walk.
pub struct Reader<S: ServingSnapshot> {
    sub: Subscription<S>,
    scratch: FlatScratch,
    per_shard: Vec<KernelCounters>,
    queries_served: u64,
    stale_epoch_reads: u64,
}

impl<S: ServingSnapshot> Reader<S> {
    fn new(sub: Subscription<S>) -> Self {
        let shards = sub.snapshot().index().shard_count();
        Reader {
            sub,
            scratch: FlatScratch::new(),
            per_shard: vec![KernelCounters::new(); shards],
            queries_served: 0,
            stale_epoch_reads: 0,
        }
    }

    /// An independent reader pinned at this reader's current snapshot,
    /// with zeroed counters.
    pub fn fork(&self) -> Reader<S> {
        Reader::new(self.sub.clone())
    }

    /// The pinned snapshot's epoch.
    pub fn epoch(&self) -> u64 {
        self.sub.epoch()
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &EpochSnapshot<S> {
        self.sub.snapshot()
    }

    /// Whether a newer epoch has been published past the pinned one.
    pub fn is_stale(&self) -> bool {
        self.sub.is_stale()
    }

    /// Advances to the newest published snapshot (wait-free) and returns
    /// its epoch. Epochs observed through one reader are monotone.
    pub fn refresh(&mut self) -> u64 {
        self.sub.advance()
    }

    /// `SPC(s, t)` from the pinned snapshot. Returns the answer stamped
    /// with the epoch it was computed against. Counts the query as a
    /// stale-epoch read if a newer snapshot was already visible when the
    /// query ran (the reader chose staleness — the paper's kept-stale
    /// labels, one epoch coarser).
    pub fn query(&mut self, s: VertexId, t: VertexId) -> (u64, S::Answer) {
        if self.sub.is_stale() {
            self.stale_epoch_reads += 1;
        }
        self.queries_served += 1;
        let snap = self.sub.snapshot();
        let answer = snap
            .index()
            .query_counted(&mut self.scratch, &mut self.per_shard, s, t);
        (snap.epoch(), answer)
    }

    /// Queries served through this handle.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Queries answered while a newer epoch was already visible.
    pub fn stale_epoch_reads(&self) -> u64 {
        self.stale_epoch_reads
    }

    /// Per-shard kernel work accumulated by this handle's queries.
    pub fn shard_counters(&self) -> &[KernelCounters] {
        &self.per_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspc::dynamic::GraphUpdate;
    use dspc::{DynamicSpc, OrderingStrategy};
    use dspc_graph::UndirectedGraph;

    fn server() -> EpochServer<DynamicSpc> {
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        EpochServer::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            ServeConfig { shards: 2 },
        )
    }

    #[test]
    fn rotation_preserves_pinned_reads_and_publishes_new_epochs() {
        let mut server = server();
        let mut pinned = server.reader();
        let mut fresh = server.reader();
        let (e, before) = pinned.query(VertexId(0), VertexId(4));
        assert_eq!((e, before.as_option()), (0, Some((4, 1))));

        server
            .submit([GraphUpdate::InsertEdge(VertexId(0), VertexId(4))])
            .unwrap();
        let report = server.rotate().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.batched_updates, 1);
        assert!(report.applied.is_some());

        // The pinned reader still serves epoch 0 — and knows it's stale.
        assert!(pinned.is_stale());
        let (e, r) = pinned.query(VertexId(0), VertexId(4));
        assert_eq!((e, r.as_option()), (0, Some((4, 1))));
        assert_eq!(pinned.stale_epoch_reads(), 1);

        // A refreshed reader sees the new edge.
        assert_eq!(fresh.refresh(), 1);
        let (e, r) = fresh.query(VertexId(0), VertexId(4));
        assert_eq!((e, r.as_option()), (1, Some((1, 1))));
        assert_eq!(fresh.stale_epoch_reads(), 0);

        // Live engine and fresh snapshot agree.
        assert_eq!(r, server.engine().query_live(VertexId(0), VertexId(4)));
        assert_eq!(server.stats().rotations, 1);
        assert_eq!(server.stats().updates_applied, 1);
    }

    #[test]
    fn empty_rotation_still_advances_the_epoch() {
        let mut server = server();
        let mut reader = server.reader();
        let report = server.rotate().unwrap();
        assert_eq!(report.epoch, 1);
        assert!(report.applied.is_none());
        assert_eq!(reader.refresh(), 1);
        assert_eq!(server.epoch(), 1);
    }

    #[test]
    fn failed_rotation_quarantines_the_batch_without_publishing() {
        let mut server = server();
        let good = GraphUpdate::InsertEdge(VertexId(0), VertexId(2));
        // A duplicate insert poisons the batch; the good update queued
        // behind it must come back too, not be destroyed.
        server
            .submit([GraphUpdate::InsertEdge(VertexId(0), VertexId(1)), good])
            .unwrap();
        let err = server.rotate().unwrap_err();
        assert!(matches!(err.kind, RotationFailure::Invalid(_)));
        assert_eq!(err.rejected.len(), 2, "whole batch handed back");
        assert_eq!(server.epoch(), 0, "no snapshot published");
        assert_eq!(server.pending_updates(), 0, "batch moved into the error");
        assert_eq!(server.stats().rejected_updates, 2);
        assert_eq!(server.stats().quarantined_rotations, 1);

        // The caller repairs the batch (drops the bad op) and requeues the
        // good updates from the error — nothing was lost.
        let repaired: Vec<GraphUpdate> = err
            .rejected
            .into_iter()
            .filter(|u| *u != GraphUpdate::InsertEdge(VertexId(0), VertexId(1)))
            .collect();
        server.submit(repaired).unwrap();
        let report = server.rotate().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.batched_updates, 1);
        assert_eq!(
            server
                .engine()
                .query_live(VertexId(0), VertexId(2))
                .as_option(),
            Some((1, 1))
        );
    }

    #[test]
    fn per_shard_counters_accumulate() {
        let server = server();
        let mut reader = server.reader();
        for s in 0..5u32 {
            for t in 0..5u32 {
                reader.query(VertexId(s), VertexId(t));
            }
        }
        assert_eq!(reader.queries_served(), 25);
        let total: u64 = reader.shard_counters().iter().map(|c| c.queries).sum();
        assert_eq!(total, 25);
        assert_eq!(reader.shard_counters().len(), 2);
        // Forked readers start with fresh counters at the same epoch.
        let fork = reader.fork();
        assert_eq!(fork.queries_served(), 0);
        assert_eq!(fork.epoch(), reader.epoch());
    }
}
