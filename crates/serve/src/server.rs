//! The epoch server: single-writer rotation over the snapshot chain, plus
//! the per-reader handle queries are served through.

use crate::engine::{ServingEngine, ServingSnapshot};
use crate::publish::{Publisher, Subscription};
use dspc::shard::EpochSnapshot;
use dspc::{FlatScratch, KernelCounters, UpdateStats};
use dspc_graph::VertexId;

/// Server construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Shared-nothing shards each published snapshot fans out over
    /// (representations without sharding ignore the hint).
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { shards: 1 }
    }
}

/// What one [`EpochServer::rotate`] did.
#[derive(Clone, Copy, Debug)]
pub struct RotationReport {
    /// The epoch just published.
    pub epoch: u64,
    /// Updates drained from the pending buffer into the batch.
    pub batched_updates: usize,
    /// Maintenance counters of the applied batch; `None` when the epoch
    /// had no pending updates (the rotation still publishes, so readers
    /// can observe an explicit epoch boundary).
    pub applied: Option<UpdateStats>,
}

/// Aggregate write-side counters across a server's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Snapshots published past the initial one.
    pub rotations: u64,
    /// Updates drained into epoch batches.
    pub updates_applied: u64,
}

/// The single writer: owns the live engine, buffers updates, rotates the
/// published snapshot at epoch boundaries.
///
/// All mutation goes through `&mut self` — the type system enforces the
/// single-writer half of the epoch contract, while [`Reader`] handles
/// (any number, any threads) serve from published snapshots without ever
/// blocking on this writer. To run the writer on its own thread, see
/// [`EpochServer::spawn`].
pub struct EpochServer<E: ServingEngine> {
    engine: E,
    publisher: Publisher<E::Snapshot>,
    pending: Vec<E::Update>,
    config: ServeConfig,
    stats: ServerStats,
}

impl<E: ServingEngine> EpochServer<E> {
    /// Wraps `engine` and publishes its current state as the epoch-0
    /// snapshot.
    pub fn new(engine: E, config: ServeConfig) -> Self {
        let initial = engine.freeze(config.shards);
        EpochServer {
            engine,
            publisher: Publisher::new(initial),
            pending: Vec::new(),
            config,
            stats: ServerStats::default(),
        }
    }

    /// Boots a server from an *already-frozen* snapshot (the warm-start
    /// path: a v2 columnar file loads straight into serving position) plus
    /// the live engine that will take over maintenance. The loaded
    /// snapshot is published as epoch 0 as-is — no re-freeze, no rebuild —
    /// so the first queries are served before the engine is even touched.
    pub fn warm_start(engine: E, initial: E::Snapshot, config: ServeConfig) -> Self {
        EpochServer {
            engine,
            publisher: Publisher::new(initial),
            pending: Vec::new(),
            config,
            stats: ServerStats::default(),
        }
    }

    /// A new reader handle pinned at the newest published snapshot.
    /// Readers are independent: hand them to other threads freely.
    pub fn reader(&self) -> Reader<E::Snapshot> {
        Reader::new(self.publisher.subscribe())
    }

    /// Queues updates for the next rotation. Nothing is applied — and
    /// nothing a reader can observe changes — until [`EpochServer::rotate`].
    pub fn submit<I: IntoIterator<Item = E::Update>>(&mut self, updates: I) {
        self.pending.extend(updates);
    }

    /// Updates waiting for the next rotation.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// The newest published epoch.
    pub fn epoch(&self) -> u64 {
        self.publisher.epoch()
    }

    /// Aggregate write-side counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The live engine (e.g. for reference queries against the current
    /// epoch's labels).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Ends the current epoch: drains the pending buffer, applies it as
    /// one coalesced batch through the engine (off the read path — readers
    /// keep serving from published snapshots throughout), freezes the
    /// repaired index, and publishes it as the next epoch.
    ///
    /// An empty pending buffer still rotates (publishing an identical
    /// snapshot under a new stamp) so callers can force epoch boundaries.
    /// On a batch validation error nothing was applied; the faulty batch
    /// is dropped and no snapshot is published.
    pub fn rotate(&mut self) -> dspc_graph::Result<RotationReport> {
        let batch = std::mem::take(&mut self.pending);
        let applied = if batch.is_empty() {
            None
        } else {
            Some(self.engine.apply_batch(&batch)?)
        };
        let epoch = self
            .publisher
            .publish(self.engine.freeze(self.config.shards));
        self.stats.rotations += 1;
        self.stats.updates_applied += batch.len() as u64;
        Ok(RotationReport {
            epoch,
            batched_updates: batch.len(),
            applied,
        })
    }

    /// Consumes the server, returning the live engine.
    pub fn into_engine(self) -> E {
        self.engine
    }
}

/// A reader's handle: serves queries from its pinned snapshot, advances
/// between epochs only when asked, and keeps deterministic serving
/// counters (queries served, stale-epoch reads, per-shard kernel work).
///
/// Handles are `Send` — create them on the writer thread, move them into
/// reader threads. Queries never lock: the pinned snapshot is immutable
/// and refreshing is a wait-free pointer walk.
pub struct Reader<S: ServingSnapshot> {
    sub: Subscription<S>,
    scratch: FlatScratch,
    per_shard: Vec<KernelCounters>,
    queries_served: u64,
    stale_epoch_reads: u64,
}

impl<S: ServingSnapshot> Reader<S> {
    fn new(sub: Subscription<S>) -> Self {
        let shards = sub.snapshot().index().shard_count();
        Reader {
            sub,
            scratch: FlatScratch::new(),
            per_shard: vec![KernelCounters::new(); shards],
            queries_served: 0,
            stale_epoch_reads: 0,
        }
    }

    /// An independent reader pinned at this reader's current snapshot,
    /// with zeroed counters.
    pub fn fork(&self) -> Reader<S> {
        Reader::new(self.sub.clone())
    }

    /// The pinned snapshot's epoch.
    pub fn epoch(&self) -> u64 {
        self.sub.epoch()
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &EpochSnapshot<S> {
        self.sub.snapshot()
    }

    /// Whether a newer epoch has been published past the pinned one.
    pub fn is_stale(&self) -> bool {
        self.sub.is_stale()
    }

    /// Advances to the newest published snapshot (wait-free) and returns
    /// its epoch. Epochs observed through one reader are monotone.
    pub fn refresh(&mut self) -> u64 {
        self.sub.advance()
    }

    /// `SPC(s, t)` from the pinned snapshot. Returns the answer stamped
    /// with the epoch it was computed against. Counts the query as a
    /// stale-epoch read if a newer snapshot was already visible when the
    /// query ran (the reader chose staleness — the paper's kept-stale
    /// labels, one epoch coarser).
    pub fn query(&mut self, s: VertexId, t: VertexId) -> (u64, S::Answer) {
        if self.sub.is_stale() {
            self.stale_epoch_reads += 1;
        }
        self.queries_served += 1;
        let snap = self.sub.snapshot();
        let answer = snap
            .index()
            .query_counted(&mut self.scratch, &mut self.per_shard, s, t);
        (snap.epoch(), answer)
    }

    /// Queries served through this handle.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Queries answered while a newer epoch was already visible.
    pub fn stale_epoch_reads(&self) -> u64 {
        self.stale_epoch_reads
    }

    /// Per-shard kernel work accumulated by this handle's queries.
    pub fn shard_counters(&self) -> &[KernelCounters] {
        &self.per_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspc::dynamic::GraphUpdate;
    use dspc::{DynamicSpc, OrderingStrategy};
    use dspc_graph::UndirectedGraph;

    fn server() -> EpochServer<DynamicSpc> {
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        EpochServer::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            ServeConfig { shards: 2 },
        )
    }

    #[test]
    fn rotation_preserves_pinned_reads_and_publishes_new_epochs() {
        let mut server = server();
        let mut pinned = server.reader();
        let mut fresh = server.reader();
        let (e, before) = pinned.query(VertexId(0), VertexId(4));
        assert_eq!((e, before.as_option()), (0, Some((4, 1))));

        server.submit([GraphUpdate::InsertEdge(VertexId(0), VertexId(4))]);
        let report = server.rotate().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.batched_updates, 1);
        assert!(report.applied.is_some());

        // The pinned reader still serves epoch 0 — and knows it's stale.
        assert!(pinned.is_stale());
        let (e, r) = pinned.query(VertexId(0), VertexId(4));
        assert_eq!((e, r.as_option()), (0, Some((4, 1))));
        assert_eq!(pinned.stale_epoch_reads(), 1);

        // A refreshed reader sees the new edge.
        assert_eq!(fresh.refresh(), 1);
        let (e, r) = fresh.query(VertexId(0), VertexId(4));
        assert_eq!((e, r.as_option()), (1, Some((1, 1))));
        assert_eq!(fresh.stale_epoch_reads(), 0);

        // Live engine and fresh snapshot agree.
        assert_eq!(r, server.engine().query_live(VertexId(0), VertexId(4)));
        assert_eq!(server.stats().rotations, 1);
        assert_eq!(server.stats().updates_applied, 1);
    }

    #[test]
    fn empty_rotation_still_advances_the_epoch() {
        let mut server = server();
        let mut reader = server.reader();
        let report = server.rotate().unwrap();
        assert_eq!(report.epoch, 1);
        assert!(report.applied.is_none());
        assert_eq!(reader.refresh(), 1);
        assert_eq!(server.epoch(), 1);
    }

    #[test]
    fn invalid_batch_is_dropped_without_publishing() {
        let mut server = server();
        server.submit([GraphUpdate::InsertEdge(VertexId(0), VertexId(1))]); // duplicate
        assert!(server.rotate().is_err());
        assert_eq!(server.epoch(), 0, "no snapshot published");
        assert_eq!(server.pending_updates(), 0, "faulty batch dropped");
        // The server keeps serving and rotating afterwards.
        server.submit([GraphUpdate::InsertEdge(VertexId(0), VertexId(2))]);
        assert_eq!(server.rotate().unwrap().epoch, 1);
    }

    #[test]
    fn per_shard_counters_accumulate() {
        let server = server();
        let mut reader = server.reader();
        for s in 0..5u32 {
            for t in 0..5u32 {
                reader.query(VertexId(s), VertexId(t));
            }
        }
        assert_eq!(reader.queries_served(), 25);
        let total: u64 = reader.shard_counters().iter().map(|c| c.queries).sum();
        assert_eq!(total, 25);
        assert_eq!(reader.shard_counters().len(), 2);
        // Forked readers start with fresh counters at the same epoch.
        let fork = reader.fork();
        assert_eq!(fork.queries_served(), 0);
        assert_eq!(fork.epoch(), reader.epoch());
    }
}
