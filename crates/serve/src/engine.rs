//! The two capability traits the server is generic over: what a frozen
//! snapshot can answer, and what a live engine can do between rotations.

use dspc::directed::{directed_spc_query, DynamicDirectedSpc};
use dspc::dynamic::GraphUpdate;
use dspc::policy::ManagedSpc;
use dspc::query::spc_query;
use dspc::shard::ShardedFlatIndex;
use dspc::weighted::{weighted_spc_query, DynamicWeightedSpc, WQueryResult, WeightedUpdate};
use dspc::{
    DirectedFlatIndex, DynamicSpc, FlatIndex, FlatScratch, KernelCounters, QueryResult,
    UpdateStats, WeightedFlatIndex,
};
use dspc_graph::VertexId;

/// A frozen, immutable index representation the read path can serve from.
///
/// Implementations attribute the kernel's deterministic work counters to
/// the shard that owns the *source* vertex's label slice; unsharded
/// snapshots report a single shard.
pub trait ServingSnapshot: Send + Sync + 'static {
    /// What a query returns (`QueryResult` for hop distances,
    /// `WQueryResult` for accumulated weights).
    type Answer: Copy + PartialEq + std::fmt::Debug + Send + 'static;

    /// Number of shared-nothing shards this snapshot fans out over.
    fn shard_count(&self) -> usize;

    /// `SPC(s, t)` against the snapshot, accumulating kernel work into
    /// `per_shard` (length [`ServingSnapshot::shard_count`]).
    fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        per_shard: &mut [KernelCounters],
        s: VertexId,
        t: VertexId,
    ) -> Self::Answer;
}

impl ServingSnapshot for ShardedFlatIndex {
    type Answer = QueryResult;

    fn shard_count(&self) -> usize {
        self.num_shards()
    }

    #[inline]
    fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        per_shard: &mut [KernelCounters],
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        ShardedFlatIndex::query_counted(self, scratch, per_shard, s, t)
    }
}

impl ServingSnapshot for FlatIndex {
    type Answer = QueryResult;

    fn shard_count(&self) -> usize {
        1
    }

    #[inline]
    fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        per_shard: &mut [KernelCounters],
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        FlatIndex::query_counted(self, scratch, &mut per_shard[0], s, t)
    }
}

impl ServingSnapshot for DirectedFlatIndex {
    type Answer = QueryResult;

    fn shard_count(&self) -> usize {
        1
    }

    #[inline]
    fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        per_shard: &mut [KernelCounters],
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        DirectedFlatIndex::query_counted(self, scratch, &mut per_shard[0], s, t)
    }
}

impl ServingSnapshot for WeightedFlatIndex {
    type Answer = WQueryResult;

    fn shard_count(&self) -> usize {
        1
    }

    #[inline]
    fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        per_shard: &mut [KernelCounters],
        s: VertexId,
        t: VertexId,
    ) -> WQueryResult {
        WeightedFlatIndex::query_counted(self, scratch, &mut per_shard[0], s, t)
    }
}

/// A live dynamic index a single writer drives between rotations: apply a
/// coalesced epoch batch, freeze a serving snapshot, answer reference
/// queries against the live labels (the oracle the snapshots must agree
/// with).
pub trait ServingEngine: Send + 'static {
    /// The frozen representation published to readers.
    type Snapshot: ServingSnapshot;
    /// The update vocabulary of this graph variant. Updates are
    /// journalable ([`crate::journal::JournalUpdate`]) so any engine can
    /// ride behind the write-ahead journal.
    type Update: Clone + Send + 'static + crate::journal::JournalUpdate;

    /// Applies one epoch's updates as a single coalesced batch (the
    /// `apply_batch_with` epoch contract: net effect only, exact index on
    /// return). Implementations route through the facade's
    /// `apply_batch_with` under its configured
    /// [`dspc::MaintenanceOptions`], so the serving write path inherits
    /// the global-agenda repair pipeline and its thread budget.
    fn apply_batch(&mut self, updates: &[Self::Update]) -> dspc_graph::Result<UpdateStats>;

    /// Freezes the current epoch's serving snapshot, fanned out over
    /// `shards` where the representation supports it (unsharded
    /// representations ignore the hint).
    fn freeze(&self, shards: usize) -> Self::Snapshot;

    /// `SPC(s, t)` straight off the live label sets — bit-identical to
    /// what a freshly frozen snapshot answers.
    fn query_live(&self, s: VertexId, t: VertexId) -> <Self::Snapshot as ServingSnapshot>::Answer;
}

impl ServingEngine for DynamicSpc {
    type Snapshot = ShardedFlatIndex;
    type Update = GraphUpdate;

    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> dspc_graph::Result<UpdateStats> {
        let options = self.maintenance_options();
        DynamicSpc::apply_batch_with(self, updates, &options)
    }

    fn freeze(&self, shards: usize) -> ShardedFlatIndex {
        ShardedFlatIndex::from_flat(&FlatIndex::freeze(self.index()), shards)
    }

    fn query_live(&self, s: VertexId, t: VertexId) -> QueryResult {
        spc_query(self.index(), s, t)
    }
}

/// A policy-managed engine: the epoch batch applies through
/// [`ManagedSpc::apply_batch`], so a rotation may end in a policy-triggered
/// full rebuild (fresh ordering) instead of incremental repair — the
/// serving layer's rebuild/rotation policy knob.
impl ServingEngine for ManagedSpc {
    type Snapshot = ShardedFlatIndex;
    type Update = GraphUpdate;

    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> dspc_graph::Result<UpdateStats> {
        let options = self.maintenance_options();
        ManagedSpc::apply_batch_with(self, updates, &options)
    }

    fn freeze(&self, shards: usize) -> ShardedFlatIndex {
        ShardedFlatIndex::from_flat(&FlatIndex::freeze(self.inner().index()), shards)
    }

    fn query_live(&self, s: VertexId, t: VertexId) -> QueryResult {
        spc_query(self.inner().index(), s, t)
    }
}

impl ServingEngine for DynamicDirectedSpc {
    type Snapshot = DirectedFlatIndex;
    type Update = dspc::directed::ArcUpdate;

    fn apply_batch(
        &mut self,
        updates: &[dspc::directed::ArcUpdate],
    ) -> dspc_graph::Result<UpdateStats> {
        let options = self.maintenance_options();
        DynamicDirectedSpc::apply_batch_with(self, updates, &options)
    }

    fn freeze(&self, _shards: usize) -> DirectedFlatIndex {
        DirectedFlatIndex::freeze(self.index())
    }

    fn query_live(&self, s: VertexId, t: VertexId) -> QueryResult {
        directed_spc_query(self.index(), s, t)
    }
}

impl ServingEngine for DynamicWeightedSpc {
    type Snapshot = WeightedFlatIndex;
    type Update = WeightedUpdate;

    fn apply_batch(&mut self, updates: &[WeightedUpdate]) -> dspc_graph::Result<UpdateStats> {
        let options = self.maintenance_options();
        DynamicWeightedSpc::apply_batch_with(self, updates, &options)
    }

    fn freeze(&self, _shards: usize) -> WeightedFlatIndex {
        WeightedFlatIndex::freeze(self.index())
    }

    fn query_live(&self, s: VertexId, t: VertexId) -> WQueryResult {
        weighted_spc_query(self.index(), s, t)
    }
}
