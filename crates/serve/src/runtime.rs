//! A dedicated writer thread behind a command channel.
//!
//! [`EpochServer`] is single-threaded by construction; this module moves it
//! onto its own thread so update submission and rotation can be driven from
//! elsewhere while reader threads keep serving. Readers are unaffected —
//! handles created before or after the spawn serve from the same published
//! chain and never interact with the channel.

use crate::engine::ServingEngine;
use crate::server::{EpochServer, RotationReport};
use std::sync::mpsc;
use std::thread::JoinHandle;

enum Cmd<U> {
    Submit(Vec<U>),
    Rotate(mpsc::Sender<dspc_graph::Result<RotationReport>>),
    Shutdown,
}

/// Control handle for an [`EpochServer`] running on its own thread.
///
/// Obtained from [`EpochServer::spawn`]. Dropping the handle without
/// calling [`WriterHandle::shutdown`] detaches the writer thread (it exits
/// when the channel closes); readers keep serving from the last published
/// snapshot either way.
pub struct WriterHandle<E: ServingEngine> {
    tx: mpsc::Sender<Cmd<E::Update>>,
    join: Option<JoinHandle<EpochServer<E>>>,
}

impl<E: ServingEngine> EpochServer<E> {
    /// Moves the server onto a dedicated writer thread and returns the
    /// control handle. Create [`Reader`](crate::Reader)s before spawning
    /// (or from other readers via [`Reader::fork`](crate::Reader::fork)) —
    /// they are independent of the writer thread.
    pub fn spawn(self) -> WriterHandle<E> {
        let (tx, rx) = mpsc::channel::<Cmd<E::Update>>();
        let join = std::thread::spawn(move || {
            let mut server = self;
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Cmd::Submit(updates) => server.submit(updates),
                    Cmd::Rotate(ack) => {
                        // A dropped ack receiver means the caller went
                        // away; the rotation still happened.
                        let _ = ack.send(server.rotate());
                    }
                    Cmd::Shutdown => break,
                }
            }
            server
        });
        WriterHandle {
            tx,
            join: Some(join),
        }
    }
}

impl<E: ServingEngine> WriterHandle<E> {
    /// Queues updates on the writer thread for its next rotation.
    pub fn submit(&self, updates: Vec<E::Update>) {
        self.tx
            .send(Cmd::Submit(updates))
            .expect("writer thread is alive");
    }

    /// Asks the writer thread to rotate and blocks until the new epoch is
    /// published (readers are not blocked — only this caller waits).
    pub fn rotate(&self) -> dspc_graph::Result<RotationReport> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Cmd::Rotate(ack_tx))
            .expect("writer thread is alive");
        ack_rx.recv().expect("writer thread answers rotations")
    }

    /// Stops the writer thread and returns the server (with its live
    /// engine, publisher, and stats) to the caller.
    pub fn shutdown(mut self) -> EpochServer<E> {
        self.tx.send(Cmd::Shutdown).expect("writer thread is alive");
        self.join
            .take()
            .expect("shutdown consumes the handle")
            .join()
            .expect("writer thread exits cleanly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use dspc::dynamic::GraphUpdate;
    use dspc::{DynamicSpc, OrderingStrategy};
    use dspc_graph::{UndirectedGraph, VertexId};

    #[test]
    fn threaded_writer_rotates_while_readers_serve() {
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let server = EpochServer::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            ServeConfig { shards: 3 },
        );
        let mut reader = server.reader();
        let handle = server.spawn();

        handle.submit(vec![GraphUpdate::InsertEdge(VertexId(0), VertexId(5))]);
        let report = handle.rotate().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.batched_updates, 1);

        // The reader (on this thread, untouched by the channel) can refresh
        // to the published epoch and sees the shortcut edge.
        assert_eq!(reader.refresh(), 1);
        let (epoch, r) = reader.query(VertexId(0), VertexId(5));
        assert_eq!((epoch, r.as_option()), (1, Some((1, 1))));

        let server = handle.shutdown();
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.stats().rotations, 1);
    }

    #[test]
    fn rotation_errors_cross_the_channel() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let server = EpochServer::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            ServeConfig::default(),
        );
        let handle = server.spawn();
        handle.submit(vec![GraphUpdate::InsertEdge(VertexId(0), VertexId(1))]);
        assert!(handle.rotate().is_err(), "duplicate edge surfaces");
        // The writer thread survives the error and keeps rotating.
        assert_eq!(handle.rotate().unwrap().epoch, 1);
        handle.shutdown();
    }
}
