//! A dedicated writer thread behind a command channel.
//!
//! [`EpochServer`] is single-threaded by construction; this module moves it
//! onto its own thread so update submission and rotation can be driven from
//! elsewhere while reader threads keep serving. Readers are unaffected —
//! handles created before or after the spawn serve from the same published
//! chain and never interact with the channel.
//!
//! Failure containment: nothing on this handle panics. A dead or panicked
//! writer thread surfaces as [`WriterError`] from every method, and a
//! submission the journal refused is *deferred* — stashed on the writer
//! thread and handed back (with its rejected updates) from the next
//! [`WriterHandle::rotate`] rather than lost.

use crate::engine::ServingEngine;
use crate::server::{EpochServer, RotationError, RotationFailure, RotationReport, SubmitError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread::JoinHandle;

enum Cmd<E: ServingEngine> {
    Submit(Vec<E::Update>),
    Rotate(mpsc::Sender<Result<RotationReport, RotationError<E::Update>>>),
    Shutdown,
    /// Testing hook: panic the writer thread, simulating a hard crash.
    Crash,
}

/// Why a [`WriterHandle`] call could not reach the writer thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriterError {
    /// The writer thread is gone (its channel is closed) — it panicked or
    /// was detached and exited.
    Disconnected,
    /// A previous call on this handle already observed the writer dead;
    /// the handle refuses further work.
    Poisoned,
}

impl std::fmt::Display for WriterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriterError::Disconnected => write!(f, "writer thread is gone"),
            WriterError::Poisoned => write!(f, "writer handle is poisoned by an earlier failure"),
        }
    }
}

impl std::error::Error for WriterError {}

/// A [`WriterHandle::rotate`] failure: either the handle could not reach
/// the writer thread at all, or the rotation itself failed (carrying the
/// quarantined batch).
#[derive(Debug)]
pub enum RotateError<U> {
    /// The writer thread is unreachable.
    Writer(WriterError),
    /// The rotation ran and failed; the batch is in
    /// [`RotationError::rejected`].
    Rotation(RotationError<U>),
}

impl<U: std::fmt::Debug> std::fmt::Display for RotateError<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RotateError::Writer(e) => write!(f, "{e}"),
            RotateError::Rotation(e) => write!(f, "{e}"),
        }
    }
}

impl<U: std::fmt::Debug> std::error::Error for RotateError<U> {}

/// Control handle for an [`EpochServer`] running on its own thread.
///
/// Obtained from [`EpochServer::spawn`]. Dropping the handle without
/// calling [`WriterHandle::shutdown`] detaches the writer thread (it exits
/// when the channel closes); readers keep serving from the last published
/// snapshot either way. A writer-thread death never panics through this
/// handle: the first call to observe it returns
/// [`WriterError::Disconnected`] and poisons the handle, and every later
/// call returns [`WriterError::Poisoned`].
pub struct WriterHandle<E: ServingEngine> {
    tx: mpsc::Sender<Cmd<E>>,
    join: Option<JoinHandle<EpochServer<E>>>,
    poisoned: AtomicBool,
}

impl<E: ServingEngine> EpochServer<E> {
    /// Moves the server onto a dedicated writer thread and returns the
    /// control handle. Create [`Reader`](crate::Reader)s before spawning
    /// (or from other readers via [`Reader::fork`](crate::Reader::fork)) —
    /// they are independent of the writer thread.
    pub fn spawn(self) -> WriterHandle<E> {
        let (tx, rx) = mpsc::channel::<Cmd<E>>();
        let join = std::thread::spawn(move || {
            let mut server = self;
            // A journaled submit can fail after the caller's fire-and-forget
            // send; the failure (with its rejected updates) is deferred here
            // and surfaces from the next rotation instead of vanishing.
            let mut deferred: Option<SubmitError<E::Update>> = None;
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Cmd::Submit(updates) => match deferred.as_mut() {
                        // Once a submit failed, later submits are rejected
                        // too (the journal no longer covers them); their
                        // updates accumulate into the deferred error so the
                        // caller gets every unaccepted update back.
                        Some(err) => err.rejected.extend(updates),
                        None => {
                            if let Err(e) = server.submit(updates) {
                                deferred = Some(e);
                            }
                        }
                    },
                    Cmd::Rotate(ack) => {
                        let result = match deferred.take() {
                            Some(SubmitError { error, rejected }) => Err(RotationError {
                                kind: RotationFailure::Journal(error),
                                rejected,
                            }),
                            None => server.rotate(),
                        };
                        // A dropped ack receiver means the caller went
                        // away; the rotation still happened.
                        let _ = ack.send(result);
                    }
                    Cmd::Shutdown => {
                        let _ = server.sync_journal();
                        break;
                    }
                    Cmd::Crash => panic!("injected writer crash"),
                }
            }
            server
        });
        WriterHandle {
            tx,
            join: Some(join),
            poisoned: AtomicBool::new(false),
        }
    }
}

impl<E: ServingEngine> WriterHandle<E> {
    fn guard(&self) -> Result<(), WriterError> {
        if self.poisoned.load(Ordering::Acquire) {
            Err(WriterError::Poisoned)
        } else {
            Ok(())
        }
    }

    fn poison(&self) -> WriterError {
        self.poisoned.store(true, Ordering::Release);
        WriterError::Disconnected
    }

    /// Queues updates on the writer thread for its next rotation.
    ///
    /// Fire-and-forget: on a journaled server the append happens on the
    /// writer thread, and an append failure is deferred — it comes back
    /// (with the rejected updates) from the next [`WriterHandle::rotate`].
    pub fn submit(&self, updates: Vec<E::Update>) -> Result<(), WriterError> {
        self.guard()?;
        self.tx
            .send(Cmd::Submit(updates))
            .map_err(|_| self.poison())
    }

    /// Asks the writer thread to rotate and blocks until the new epoch is
    /// published (readers are not blocked — only this caller waits). A
    /// failed rotation hands the quarantined batch back in the error; the
    /// writer thread survives it and keeps serving.
    pub fn rotate(&self) -> Result<RotationReport, RotateError<E::Update>> {
        self.guard().map_err(RotateError::Writer)?;
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Cmd::Rotate(ack_tx))
            .map_err(|_| RotateError::Writer(self.poison()))?;
        match ack_rx.recv() {
            Ok(result) => result.map_err(RotateError::Rotation),
            // The writer thread died mid-rotation (e.g. an injected crash
            // raced in): the ack channel closed without an answer.
            Err(_) => Err(RotateError::Writer(self.poison())),
        }
    }

    /// Stops the writer thread (flushing the journal, if any) and returns
    /// the server to the caller. Fails with [`WriterError`] if the writer
    /// thread is already dead — the engine is lost with it.
    pub fn shutdown(mut self) -> Result<EpochServer<E>, WriterError> {
        self.guard()?;
        if self.tx.send(Cmd::Shutdown).is_err() {
            return Err(self.poison());
        }
        self.join
            .take()
            .expect("shutdown consumes the handle")
            .join()
            .map_err(|_| self.poison())
    }

    /// Panics the writer thread, simulating a hard crash. Testing hook for
    /// the fault-injection harness; the handle stays usable and reports
    /// [`WriterError`] from subsequent calls.
    #[doc(hidden)]
    pub fn crash_writer_for_test(&self) {
        let _ = self.tx.send(Cmd::Crash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use dspc::dynamic::GraphUpdate;
    use dspc::{DynamicSpc, OrderingStrategy};
    use dspc_graph::{UndirectedGraph, VertexId};

    fn spawn_server() -> WriterHandle<DynamicSpc> {
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        EpochServer::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            ServeConfig { shards: 3 },
        )
        .spawn()
    }

    #[test]
    fn threaded_writer_rotates_while_readers_serve() {
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let server = EpochServer::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            ServeConfig { shards: 3 },
        );
        let mut reader = server.reader();
        let handle = server.spawn();

        handle
            .submit(vec![GraphUpdate::InsertEdge(VertexId(0), VertexId(5))])
            .unwrap();
        let report = handle.rotate().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.batched_updates, 1);

        // The reader (on this thread, untouched by the channel) can refresh
        // to the published epoch and sees the shortcut edge.
        assert_eq!(reader.refresh(), 1);
        let (epoch, r) = reader.query(VertexId(0), VertexId(5));
        assert_eq!((epoch, r.as_option()), (1, Some((1, 1))));

        let server = handle.shutdown().unwrap();
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.stats().rotations, 1);
    }

    #[test]
    fn rotation_errors_cross_the_channel_with_the_batch() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let server = EpochServer::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            ServeConfig::default(),
        );
        let handle = server.spawn();
        handle
            .submit(vec![GraphUpdate::InsertEdge(VertexId(0), VertexId(1))])
            .unwrap();
        match handle.rotate() {
            Err(RotateError::Rotation(e)) => {
                assert!(matches!(e.kind, RotationFailure::Invalid(_)));
                assert_eq!(e.rejected.len(), 1, "quarantined batch crosses the channel");
            }
            other => panic!("expected a rotation error, got {other:?}"),
        }
        // The writer thread survives the error and keeps rotating.
        assert_eq!(handle.rotate().unwrap().epoch, 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn killed_writer_poisons_the_handle_instead_of_panicking() {
        let handle = spawn_server();
        let mut reader = {
            // Rotate once so readers have a non-trivial epoch to pin.
            handle.rotate().unwrap();
            handle.shutdown().unwrap()
        }
        .reader();

        let handle = spawn_server();
        handle.crash_writer_for_test();
        // The first call to observe the dead writer reports Disconnected…
        let err = loop {
            match handle.rotate() {
                Err(RotateError::Writer(e)) => break e,
                Ok(_) => continue, // the crash command may still be queued
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        };
        assert_eq!(err, WriterError::Disconnected);
        // …and every later call sees the poisoned handle.
        assert_eq!(
            handle.submit(vec![GraphUpdate::InsertEdge(VertexId(0), VertexId(2))]),
            Err(WriterError::Poisoned)
        );
        match handle.rotate() {
            Err(RotateError::Writer(WriterError::Poisoned)) => {}
            other => panic!("expected poisoned, got {other:?}"),
        }
        match handle.shutdown() {
            Err(WriterError::Poisoned) => {}
            Err(other) => panic!("expected poisoned, got {other:?}"),
            Ok(_) => panic!("shutdown must fail on a poisoned handle"),
        }

        // Readers created before the crash keep serving their snapshot.
        let (epoch, r) = reader.query(VertexId(0), VertexId(5));
        assert_eq!((epoch, r.as_option()), (1, Some((5, 1))));
    }

    #[test]
    fn dropping_the_handle_detaches_cleanly() {
        let handle = spawn_server();
        let reader = {
            handle
                .submit(vec![GraphUpdate::InsertEdge(VertexId(0), VertexId(5))])
                .unwrap();
            handle.rotate().unwrap();
            // A reader forked off the server outlives the handle.
            let server = handle.shutdown().unwrap();
            server.reader()
        };
        // New handle, dropped without shutdown: the writer thread exits on
        // channel close, nothing panics, the reader still serves.
        let handle = spawn_server();
        drop(handle);
        let mut reader = reader;
        let (_, r) = reader.query(VertexId(0), VertexId(5));
        assert_eq!(r.as_option(), Some((1, 1)));
    }
}
