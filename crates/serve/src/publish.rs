//! Atomic snapshot publication: a single-writer, many-reader chain of
//! epoch-stamped snapshots.
//!
//! The chain is a forward-linked list of `Arc` nodes. The writer appends
//! with [`Publisher::publish`] (setting the previous tail's `OnceLock`
//! forward pointer — one atomic store). A [`Subscription`] pins some node;
//! [`Subscription::advance`] follows forward pointers to the newest
//! published node with plain atomic loads — readers never take a lock and
//! never block on the writer, and a reader's observed epoch sequence is
//! monotone by construction (the chain only grows forward).
//!
//! Memory reclamation falls out of `Arc`: a node is freed as soon as no
//! subscription pins it and its predecessor is gone. Readers that advance
//! promptly keep at most one superseded snapshot alive.

use dspc::shard::EpochSnapshot;
use std::sync::{Arc, OnceLock};

struct Node<S> {
    snap: EpochSnapshot<S>,
    next: OnceLock<Arc<Node<S>>>,
}

/// The writer's end of the snapshot chain. Owned by exactly one writer
/// (appending requires `&mut self`).
pub struct Publisher<S> {
    tail: Arc<Node<S>>,
}

impl<S> Publisher<S> {
    /// Starts a chain with `initial` as the epoch-0 snapshot.
    pub fn new(initial: S) -> Self {
        Publisher::starting_at(initial, 0)
    }

    /// Starts a chain with `initial` stamped as `epoch` — the recovery
    /// path: a server rebooting from a checkpoint resumes the epoch clock
    /// where the crashed instance left it, so readers attached before and
    /// after a crash observe one monotone epoch sequence.
    pub fn starting_at(initial: S, epoch: u64) -> Self {
        Publisher {
            tail: Arc::new(Node {
                snap: EpochSnapshot::new(epoch, initial),
                next: OnceLock::new(),
            }),
        }
    }

    /// The epoch of the newest published snapshot.
    pub fn epoch(&self) -> u64 {
        self.tail.snap.epoch()
    }

    /// The newest published snapshot.
    pub fn latest(&self) -> &EpochSnapshot<S> {
        &self.tail.snap
    }

    /// Publishes `snap` as the next epoch and returns its stamp. Readers
    /// see it as soon as the forward pointer is set — one atomic store.
    pub fn publish(&mut self, snap: S) -> u64 {
        let epoch = self.tail.snap.epoch() + 1;
        let node = Arc::new(Node {
            snap: EpochSnapshot::new(epoch, snap),
            next: OnceLock::new(),
        });
        self.tail
            .next
            .set(Arc::clone(&node))
            .unwrap_or_else(|_| unreachable!("single writer owns the tail"));
        self.tail = node;
        epoch
    }

    /// A new subscription pinned at the newest published snapshot.
    pub fn subscribe(&self) -> Subscription<S> {
        Subscription {
            cur: Arc::clone(&self.tail),
        }
    }
}

/// A reader's pin into the snapshot chain. Cloning yields an independent
/// subscription pinned at the same node.
pub struct Subscription<S> {
    cur: Arc<Node<S>>,
}

impl<S> Clone for Subscription<S> {
    fn clone(&self) -> Self {
        Subscription {
            cur: Arc::clone(&self.cur),
        }
    }
}

impl<S> Subscription<S> {
    /// The currently pinned snapshot.
    #[inline]
    pub fn snapshot(&self) -> &EpochSnapshot<S> {
        &self.cur.snap
    }

    /// The pinned snapshot's epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.cur.snap.epoch()
    }

    /// Whether a newer snapshot has been published past the pinned one
    /// (one atomic load).
    #[inline]
    pub fn is_stale(&self) -> bool {
        self.cur.next.get().is_some()
    }

    /// Advances to the newest visible snapshot (wait-free: follows forward
    /// pointers with atomic loads) and returns its epoch. Never moves
    /// backward, so the epochs a subscription observes are monotone.
    pub fn advance(&mut self) -> u64 {
        while let Some(next) = self.cur.next.get() {
            self.cur = Arc::clone(next);
        }
        self.cur.snap.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_publishes_and_advances_monotonically() {
        let mut p = Publisher::new("e0");
        let mut sub = p.subscribe();
        assert_eq!(sub.epoch(), 0);
        assert!(!sub.is_stale());
        assert_eq!(p.publish("e1"), 1);
        assert_eq!(p.publish("e2"), 2);
        assert!(sub.is_stale());
        assert_eq!(sub.epoch(), 0, "pinned until advanced");
        assert_eq!(*sub.snapshot().index(), "e0");
        assert_eq!(sub.advance(), 2);
        assert_eq!(*sub.snapshot().index(), "e2");
        assert!(!sub.is_stale());
        // A late subscriber starts at the newest snapshot.
        assert_eq!(p.subscribe().epoch(), 2);
    }

    #[test]
    fn chain_can_resume_a_prior_epoch_clock() {
        let mut p = Publisher::starting_at("ckpt", 7);
        assert_eq!(p.epoch(), 7);
        let mut sub = p.subscribe();
        assert_eq!(sub.epoch(), 7);
        assert_eq!(p.publish("e8"), 8);
        assert_eq!(sub.advance(), 8);
    }

    #[test]
    fn clones_pin_independently() {
        let mut p = Publisher::new(10u32);
        let mut a = p.subscribe();
        let b = a.clone();
        p.publish(11);
        assert_eq!(a.advance(), 1);
        assert_eq!(b.epoch(), 0, "clone stays pinned");
        assert_eq!(*b.snapshot().index(), 10);
    }

    #[test]
    fn readers_across_threads_observe_monotone_epochs() {
        let mut p = Publisher::new(0u64);
        let subs: Vec<Subscription<u64>> = (0..4).map(|_| p.subscribe()).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = subs
                .into_iter()
                .map(|mut sub| {
                    scope.spawn(move || {
                        let mut last = sub.epoch();
                        for _ in 0..10_000 {
                            let e = sub.advance();
                            assert!(e >= last, "epoch went backwards");
                            assert_eq!(*sub.snapshot().index(), e, "stamp matches payload");
                            last = e;
                        }
                        last
                    })
                })
                .collect();
            for e in 1..=64u64 {
                p.publish(e);
                std::thread::yield_now();
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    }
}
