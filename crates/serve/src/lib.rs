//! # dspc-serve — the epoch-rotation serving layer
//!
//! The paper's batch-update contract (§5: updates coalesce to their net
//! effect and apply as one atomic epoch; queries between epochs answer
//! against the kept-stale labels of the last epoch) is exactly the shape of
//! a snapshot-rotation server. This crate productionizes that contract:
//!
//! * **Readers** hold a [`Reader`] handle onto an atomically published
//!   chain of [`EpochSnapshot`]-stamped frozen indexes (the flat columnar
//!   representation of `dspc::flat`, optionally fanned out over
//!   shared-nothing vertex-range shards — [`dspc::ShardedFlatIndex`]).
//!   Queries are served from the reader's pinned snapshot with **no locks
//!   anywhere on the read path**; advancing to a newer epoch is a wait-free
//!   walk of atomically-set forward pointers.
//! * **A single writer** ([`EpochServer`]) owns the live dynamic facade,
//!   buffers incoming updates, applies them off the read path as one
//!   coalesced batch per rotation (`apply_batch` → the `NetPlan` batch
//!   planner), freezes the repaired index, and publishes the new snapshot
//!   by appending to the chain — a pointer swap, never a rebuild of
//!   anything a reader is holding.
//! * **Epoch stamps make serving testable.** Every answer carries the
//!   epoch of the snapshot that produced it, so a concurrent test harness
//!   can check each answer against the *exact* epoch the reader legally
//!   observed — not probabilistically, exactly
//!   (`tests/serving_epochs.rs` at the workspace root).
//!
//! The writer may run on the owning thread (deterministic, replayable —
//! what the `bench_smoke` serving phase drives) or on a dedicated thread
//! behind a command channel ([`EpochServer::spawn`] → [`WriterHandle`]).
//!
//! **Durability** ([`journal`] module): a server built with
//! [`EpochServer::with_journal`] write-ahead journals every submitted
//! batch (length-prefixed, CRC-64 checksummed, fsynced before the batch is
//! acknowledged), stamps an epoch marker at each successful rotation, and
//! checkpoints on demand — snapshotting the engine through the v2 columnar
//! codec and truncating the log. [`EpochServer::recover`] boots from the
//! last checkpoint and replays the journal, producing a server
//! bit-identical — answers *and* maintenance counters — to one that never
//! crashed. Failures are contained, not fatal: a batch that fails
//! validation (or panics the engine) is quarantined and handed back in
//! [`RotationError::rejected`] while readers keep serving the last good
//! epoch, and a dead writer thread surfaces as [`WriterError`] instead of
//! a panic. The whole story is exercised by a deterministic [`FaultPlan`]
//! crash schedule (`tests/fault_injection.rs` at the workspace root).
//!
//! ```
//! use dspc::dynamic::GraphUpdate;
//! use dspc::{DynamicSpc, OrderingStrategy};
//! use dspc_graph::{UndirectedGraph, VertexId};
//! use dspc_serve::{EpochServer, ServeConfig};
//!
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let engine = DynamicSpc::build(g, OrderingStrategy::Degree);
//! let mut server = EpochServer::new(engine, ServeConfig { shards: 2 });
//!
//! let mut reader = server.reader(); // epoch 0 snapshot
//! let (epoch, r) = reader.query(VertexId(0), VertexId(3));
//! assert_eq!((epoch, r.as_option()), (0, Some((3, 1))));
//!
//! // The writer batches updates and rotates; the reader still answers
//! // from its pinned epoch-0 snapshot until it refreshes.
//! server.submit([GraphUpdate::InsertEdge(VertexId(0), VertexId(3))]).unwrap();
//! server.rotate().unwrap();
//! assert_eq!(reader.query(VertexId(0), VertexId(3)).0, 0); // pinned
//! assert_eq!(reader.refresh(), 1);
//! let (epoch, r) = reader.query(VertexId(0), VertexId(3));
//! assert_eq!((epoch, r.as_option()), (1, Some((1, 1))));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod journal;
mod publish;
mod runtime;
mod server;

pub use engine::{ServingEngine, ServingSnapshot};
pub use journal::{
    current_wal_path, DurableEngine, Failpoint, FaultPlan, Journal, JournalError, JournalUpdate,
    RecoveryReport,
};
pub use publish::{Publisher, Subscription};
pub use runtime::{RotateError, WriterError, WriterHandle};
pub use server::{
    EpochServer, Reader, RotationError, RotationFailure, RotationReport, ServeConfig, ServerStats,
    SubmitError,
};

pub use dspc::shard::EpochSnapshot;
