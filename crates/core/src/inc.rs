//! IncSPC — incremental SPC-Index maintenance under edge insertion
//! (Algorithms 2 and 3, §3.1).
//!
//! When edge `(a, b)` arrives, the affected hub set is
//! `AFF = hubs(L(a)) ∪ hubs(L(b))` — sufficient because a new shortest path
//! through `(a, b)` whose highest-ranked vertex is `h` decomposes at the new
//! edge into a prefix certified by `h ∈ L(a)` (or `L(b)`); a vertex labeling
//! neither endpoint cannot top any path through the edge (§3.1's `v8`
//! discussion).
//!
//! For each affected hub `h` (descending rank), a pruned counting BFS starts
//! *at the far endpoint*, seeded as if stepping across the new edge:
//! `D[b] = d + 1, C[b] = c` for `(h, d, c) ∈ L(a)`. The BFS prunes where the
//! current index already certifies a strictly smaller distance
//! (`SpcQUERY(h, v) < D[v]`, the *relaxed* condition of Lemma 3.4 that keeps
//! count-only changes reachable), renews or inserts labels elsewhere, and
//! observes rank pruning (`h ≤ w`) to preserve ESPC.
//!
//! Distance-stale labels are deliberately kept (Lemma 3.1): a label whose
//! distance is now an overestimate loses every query to some fresher hub,
//! so correctness survives and update time drops.

use crate::engine::{merge_affected, MaintenanceCounters, UndirectedTopo, UpdateEngine};
use crate::index::SpcIndex;
use crate::query::HubProbe;
use dspc_graph::{UndirectedGraph, VertexId};

/// Per-update label-operation counters (Figure 8's RenewC / RenewD /
/// Insert series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncStats {
    /// Labels whose count changed but distance did not (RenewC).
    pub renew_count: usize,
    /// Labels whose distance changed (RenewD).
    pub renew_dist: usize,
    /// Newly inserted labels (Insert).
    pub inserted: usize,
    /// Affected hubs processed (|AFF|, counting both-side hubs once).
    pub hubs_processed: usize,
    /// Total vertices dequeued across all pruned BFSs.
    pub vertices_visited: usize,
}

impl IncStats {
    /// Total label operations.
    pub fn total_ops(&self) -> usize {
        self.renew_count + self.renew_dist + self.inserted
    }

    /// Merges counters (for streams).
    pub fn absorb(&mut self, other: &IncStats) {
        self.renew_count += other.renew_count;
        self.renew_dist += other.renew_dist;
        self.inserted += other.inserted;
        self.hubs_processed += other.hubs_processed;
        self.vertices_visited += other.vertices_visited;
    }
}

impl From<MaintenanceCounters> for IncStats {
    fn from(c: MaintenanceCounters) -> Self {
        IncStats {
            renew_count: c.renew_count,
            renew_dist: c.renew_dist,
            inserted: c.inserted,
            hubs_processed: c.hubs_processed,
            vertices_visited: c.vertices_visited,
        }
    }
}

impl From<IncStats> for MaintenanceCounters {
    fn from(s: IncStats) -> Self {
        MaintenanceCounters {
            renew_count: s.renew_count,
            renew_dist: s.renew_dist,
            inserted: s.inserted,
            hubs_processed: s.hubs_processed,
            vertices_visited: s.vertices_visited,
            ..MaintenanceCounters::default()
        }
    }
}

/// Reusable IncSPC driver (Algorithm 2): the undirected insertion policy
/// over the shared [`UpdateEngine`].
#[derive(Debug)]
pub struct IncSpc {
    engine: UpdateEngine<u32>,
    probe: HubProbe,
}

impl IncSpc {
    /// Creates an engine for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        IncSpc {
            engine: UpdateEngine::new(capacity),
            probe: HubProbe::new(capacity),
        }
    }

    /// Updates `index` for the insertion of `(a, b)`.
    ///
    /// `g` must already contain the new edge (Algorithm 2 line 1 performs
    /// `G_{i+1} ← G_i ⊕ (a, b)` before any BFS; [`crate::DynamicSpc`]
    /// sequences this for you).
    pub fn insert_edge(
        &mut self,
        g: &UndirectedGraph,
        index: &mut SpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> IncStats {
        debug_assert!(g.has_edge(a, b), "IncSPC runs after the graph mutation");
        self.engine.ensure_capacity(g.capacity());
        let mut stats = MaintenanceCounters::default();

        // AFF = {h | h ∈ L_i(a) ∪ L_i(b)}, membership snapshotted *before*
        // any label mutation, processed in descending rank order (ascending
        // rank position). Flags record which side(s) contributed the hub.
        let aff = merge_affected(index.label_set(a).entries(), index.label_set(b).entries());

        let rank_a = index.rank(a);
        let rank_b = index.rank(b);
        for (h_rank, in_a, in_b) in aff {
            let h = index.vertex(h_rank);
            stats.hubs_processed += 1;
            // IncUPDATE(h, v_a, v_b): sweep from v_b as if stepping over
            // the new edge, seeded from the *live* label (h, d, c) ∈
            // L(v_a) — a same-hub pass in the opposite direction may
            // already have refreshed it.
            if in_a && h_rank <= rank_b {
                if let Some(seed) = index.label_of(a, h).copied() {
                    let mut topo = UndirectedTopo::new(g, index, &mut self.probe);
                    self.engine
                        .inc_pass(&mut topo, h, b, seed.dist + 1, seed.count, &mut stats);
                }
            }
            if in_b && h_rank <= rank_a {
                if let Some(seed) = index.label_of(b, h).copied() {
                    let mut topo = UndirectedTopo::new(g, index, &mut self.probe);
                    self.engine
                        .inc_pass(&mut topo, h, a, seed.dist + 1, seed.count, &mut stats);
                }
            }
        }
        IncStats::from(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use crate::query::spc_query;
    use crate::verify::verify_all_pairs;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::{barabasi_albert, erdos_renyi_gnm};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn insert_and_verify(
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        engine: &mut IncSpc,
        a: u32,
        b: u32,
    ) -> IncStats {
        g.insert_edge(VertexId(a), VertexId(b)).unwrap();
        let stats = engine.insert_edge(g, index, VertexId(a), VertexId(b));
        verify_all_pairs(g, index).unwrap();
        stats
    }

    #[test]
    fn paper_example_3_5_insert_v3_v9() {
        // Figure 3: inserting (v3, v9) into G under the identity ordering.
        let mut g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let mut engine = IncSpc::new(g.capacity());
        insert_and_verify(&mut g, &mut index, &mut engine, 3, 9);

        // Figure 3(d) row 1: L(v9) hub v0 renewed from (v0,4,4) to (v0,2,1).
        let e = *index.label_of(VertexId(9), VertexId(0)).unwrap();
        assert_eq!((e.dist, e.count), (2, 1));
        // Row 2: L(v4) hub v0 count renewed 3 → 4 at distance 3.
        let e = *index.label_of(VertexId(4), VertexId(0)).unwrap();
        assert_eq!((e.dist, e.count), (3, 4));
        // Row 3: L(v10) hub v0 count renewed 1 → 2 at distance 3.
        let e = *index.label_of(VertexId(10), VertexId(0)).unwrap();
        assert_eq!((e.dist, e.count), (3, 2));
        // Hub v1 block: L(v9) hub v1 renewed (v1,3,2) → (v1,3,3).
        let e = *index.label_of(VertexId(9), VertexId(1)).unwrap();
        assert_eq!((e.dist, e.count), (3, 3));
        // Hub v2 block: (v2,3,1) → (v2,2,1) in L(v9); new (v2,3,1) in L(v10).
        let e = *index.label_of(VertexId(9), VertexId(2)).unwrap();
        assert_eq!((e.dist, e.count), (2, 1));
        let e = *index.label_of(VertexId(10), VertexId(2)).unwrap();
        assert_eq!((e.dist, e.count), (3, 1));
        // New hub v3 label at v9: distance 1.
        let e = *index.label_of(VertexId(9), VertexId(3)).unwrap();
        assert_eq!((e.dist, e.count), (1, 1));
    }

    #[test]
    fn aff_excludes_uninvolved_hubs() {
        // §3.1: v8 ∉ AFF for the (v3, v9) insertion even though
        // sd(v8, v9) decreases.
        let g0 = figure2_g();
        let index = build_index(&g0, OrderingStrategy::Identity);
        let r8 = index.rank(VertexId(8));
        assert!(!index.label_set(VertexId(3)).contains(r8));
        assert!(!index.label_set(VertexId(9)).contains(r8));
        // And after the update the v8 labels elsewhere are untouched but
        // queries involving v8 are still exact (covered by other hubs) —
        // checked by verify_all_pairs in the previous test.
    }

    #[test]
    fn connects_two_components() {
        let mut g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut index = build_index(&g, OrderingStrategy::Degree);
        assert!(!spc_query(&index, VertexId(0), VertexId(5)).is_connected());
        let mut engine = IncSpc::new(g.capacity());
        let stats = insert_and_verify(&mut g, &mut index, &mut engine, 2, 3);
        assert!(stats.inserted > 0);
        assert_eq!(
            spc_query(&index, VertexId(0), VertexId(5)).as_option(),
            Some((5, 1))
        );
    }

    #[test]
    fn parallel_shortest_path_only_changes_counts() {
        // Square 0-1-2-3-0: inserting chord creates new equal-length paths.
        let mut g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)]);
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let mut engine = IncSpc::new(g.capacity());
        let stats = insert_and_verify(&mut g, &mut index, &mut engine, 3, 4);
        // sd(0,4) stays 2 but gains no path; sd(2,4) stays 2 and gains one.
        assert_eq!(
            spc_query(&index, VertexId(2), VertexId(4)).as_option(),
            Some((2, 2))
        );
        assert!(stats.total_ops() > 0);
    }

    #[test]
    fn two_isolated_vertices_edge() {
        let mut g = UndirectedGraph::with_vertices(2);
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let mut engine = IncSpc::new(g.capacity());
        let stats = insert_and_verify(&mut g, &mut index, &mut engine, 0, 1);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.renew_count + stats.renew_dist, 0);
    }

    #[test]
    fn random_insertion_streams_stay_correct() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..6 {
            let n = 30 + trial * 5;
            let mut g = erdos_renyi_gnm(n, 2 * n, &mut rng);
            let mut index = build_index(&g, OrderingStrategy::Degree);
            let mut engine = IncSpc::new(g.capacity());
            let mut applied = 0;
            while applied < 15 {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a == b || g.has_edge(VertexId(a), VertexId(b)) {
                    continue;
                }
                g.insert_edge(VertexId(a), VertexId(b)).unwrap();
                engine.insert_edge(&g, &mut index, VertexId(a), VertexId(b));
                applied += 1;
            }
            verify_all_pairs(&g, &index).unwrap();
            index.check_invariants().unwrap();
        }
    }

    #[test]
    fn scale_free_insertions_match_rebuild_queries() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut g = barabasi_albert(120, 2, &mut rng);
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let mut engine = IncSpc::new(g.capacity());
        for _ in 0..25 {
            loop {
                let a = rng.gen_range(0..120u32);
                let b = rng.gen_range(0..120u32);
                if a != b && !g.has_edge(VertexId(a), VertexId(b)) {
                    g.insert_edge(VertexId(a), VertexId(b)).unwrap();
                    engine.insert_edge(&g, &mut index, VertexId(a), VertexId(b));
                    break;
                }
            }
        }
        let rebuilt = crate::build::rebuild_index(&g, index.ranks().clone());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    spc_query(&index, s, t),
                    spc_query(&rebuilt, s, t),
                    "({s:?},{t:?})"
                );
            }
        }
    }

    #[test]
    fn stale_labels_are_kept_not_removed() {
        // Lemma 3.1: the maintained index may be a superset of the rebuilt
        // one, never smaller.
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = erdos_renyi_gnm(40, 80, &mut rng);
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let mut engine = IncSpc::new(g.capacity());
        for _ in 0..10 {
            loop {
                let a = rng.gen_range(0..40u32);
                let b = rng.gen_range(0..40u32);
                if a != b && !g.has_edge(VertexId(a), VertexId(b)) {
                    g.insert_edge(VertexId(a), VertexId(b)).unwrap();
                    engine.insert_edge(&g, &mut index, VertexId(a), VertexId(b));
                    break;
                }
            }
        }
        let rebuilt = crate::build::rebuild_index(&g, index.ranks().clone());
        assert!(index.num_entries() >= rebuilt.num_entries());
    }
}
