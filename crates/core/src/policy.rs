//! Maintenance policy — the answer to ordering staleness, tiered.
//!
//! §6 ("Vertex Ordering Changes"): after many updates the degree-based
//! order no longer reflects the graph, inflating future labels. The paper's
//! suggested mitigation is a *lazy strategy* — "reconstructing the entire
//! index after a certain number of updates". [`MaintenancePolicy`] encodes
//! that trigger plus a direct staleness measurement
//! ([`crate::order::degree_order_staleness`]), and since the bounded
//! re-ranking work ([`crate::reorder`]) it escalates through three tiers
//! instead of jumping straight to reconstruction:
//!
//! 1. **Local re-rank** — staleness crossed
//!    [`MaintenancePolicy::local_staleness`]: repair up to
//!    [`MaintenancePolicy::local_swap_budget`] adjacent inversions one
//!    committed swap at a time.
//! 2. **Batched re-rank** — staleness crossed
//!    [`MaintenancePolicy::batched_staleness`]: plan up to
//!    [`MaintenancePolicy::batched_swap_budget`] non-overlapping swaps and
//!    repair them under one agenda on the maintenance thread pool.
//! 3. **Full rebuild** — the update cliff
//!    ([`MaintenancePolicy::max_updates`]) or the staleness cliff
//!    ([`MaintenancePolicy::max_staleness`]) fired; reconstruct with a
//!    fresh order, exactly as before.
//!
//! [`ManagedSpc`] applies the policy automatically around a [`DynamicSpc`],
//! measuring staleness in O(1) per check through an incrementally
//! maintained [`StalenessTracker`] instead of rescanning all rank pairs on
//! every batch.

use crate::dynamic::{DynamicSpc, GraphUpdate, UpdateStats};
use crate::engine::MaintenanceCounters;
use crate::order::{degree_order_staleness, plan_adjacent_swaps, StalenessTracker};
use crate::parallel::MaintenanceOptions;
use dspc_graph::Result;

/// When — and how hard — to push back against ordering staleness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaintenancePolicy {
    /// Rebuild after this many updates since the last build (the paper's
    /// "certain number of updates"). `None` disables the trigger.
    pub max_updates: Option<usize>,
    /// Rebuild when the fraction of degree-order inversions among adjacent
    /// ranks exceeds this threshold. `None` disables the trigger.
    pub max_staleness: Option<f64>,
    /// Below the rebuild cliff: batched re-rank when staleness exceeds
    /// this. `None` disables the tier.
    pub batched_staleness: Option<f64>,
    /// Below the batched tier: bounded local re-rank when staleness
    /// exceeds this. `None` disables the tier.
    pub local_staleness: Option<f64>,
    /// Most adjacent swaps one local-tier response may repair (sequential,
    /// one committed swap at a time).
    pub local_swap_budget: usize,
    /// Most adjacent swaps one batched-tier response may repair (one
    /// agenda on the maintenance thread pool).
    pub batched_swap_budget: usize,
}

/// The response [`MaintenancePolicy::action`] selects, most severe wins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceAction {
    /// Nothing due.
    None,
    /// Repair a few inversions sequentially ([`crate::reorder::swap_and_repair`]).
    LocalRerank,
    /// Repair a planned swap run under one agenda
    /// ([`crate::reorder::rerank_adjacent`]).
    BatchedRerank,
    /// Reconstruct with a fresh order ([`DynamicSpc::rebuild`]).
    Rebuild,
}

impl MaintenancePolicy {
    /// Never rebuild (pure dynamic maintenance — what the paper evaluates).
    pub const NEVER: MaintenancePolicy = MaintenancePolicy {
        max_updates: None,
        max_staleness: None,
        batched_staleness: None,
        local_staleness: None,
        local_swap_budget: 0,
        batched_swap_budget: 0,
    };

    /// Rebuild every `n` updates.
    pub fn every(n: usize) -> Self {
        MaintenancePolicy {
            max_updates: Some(n),
            ..MaintenancePolicy::NEVER
        }
    }

    /// A three-tier policy: local re-rank above `local`, batched re-rank
    /// above `batched`, full rebuild only above the `cliff` staleness —
    /// with default swap budgets (4 local, 32 batched).
    pub fn tiered(local: f64, batched: f64, cliff: f64) -> Self {
        MaintenancePolicy {
            max_updates: None,
            max_staleness: Some(cliff),
            batched_staleness: Some(batched),
            local_staleness: Some(local),
            local_swap_budget: 4,
            batched_swap_budget: 32,
        }
    }

    /// The response due after `updates` updates at `staleness` — the
    /// severest tier whose trigger fired.
    pub fn action(&self, updates: usize, staleness: f64) -> MaintenanceAction {
        if let Some(n) = self.max_updates {
            if updates >= n {
                return MaintenanceAction::Rebuild;
            }
        }
        if let Some(limit) = self.max_staleness {
            if staleness > limit {
                return MaintenanceAction::Rebuild;
            }
        }
        if let Some(limit) = self.batched_staleness {
            if staleness > limit && self.batched_swap_budget > 0 {
                return MaintenanceAction::BatchedRerank;
            }
        }
        if let Some(limit) = self.local_staleness {
            if staleness > limit && self.local_swap_budget > 0 {
                return MaintenanceAction::LocalRerank;
            }
        }
        MaintenanceAction::None
    }

    /// Whether a rebuild is due for `dspc` (one-shot staleness scan; the
    /// managed facade uses [`MaintenancePolicy::action`] with the tracked
    /// value instead).
    pub fn should_rebuild(&self, dspc: &DynamicSpc) -> bool {
        let staleness = if self.max_staleness.is_some() {
            degree_order_staleness(dspc.graph(), dspc.index().ranks())
        } else {
            0.0
        };
        self.action(dspc.updates_since_build(), staleness) == MaintenanceAction::Rebuild
    }
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy::NEVER
    }
}

/// A [`DynamicSpc`] that applies a [`MaintenancePolicy`] after every
/// update, tracking staleness incrementally so the per-update policy check
/// is O(1).
#[derive(Debug)]
pub struct ManagedSpc {
    inner: DynamicSpc,
    policy: MaintenancePolicy,
    rebuilds: usize,
    tracker: StalenessTracker,
    rerank_totals: MaintenanceCounters,
}

impl ManagedSpc {
    /// Wraps `dspc` under `policy`.
    pub fn new(inner: DynamicSpc, policy: MaintenancePolicy) -> Self {
        let tracker = StalenessTracker::new(inner.graph(), inner.index().ranks());
        ManagedSpc {
            inner,
            policy,
            rebuilds: 0,
            tracker,
            rerank_totals: MaintenanceCounters::default(),
        }
    }

    /// Reassembles a managed facade from checkpointed state: the recovered
    /// inner facade, the policy it ran under, and the rebuild count at
    /// checkpoint time — so policy behavior (and its counters) continue
    /// exactly where the crashed instance left off.
    pub fn recover(inner: DynamicSpc, policy: MaintenancePolicy, rebuilds: usize) -> Self {
        let tracker = StalenessTracker::new(inner.graph(), inner.index().ranks());
        ManagedSpc {
            inner,
            policy,
            rebuilds,
            tracker,
            rerank_totals: MaintenanceCounters::default(),
        }
    }

    /// The wrapped facade.
    pub fn inner(&self) -> &DynamicSpc {
        &self.inner
    }

    /// The active maintenance policy.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Number of policy-triggered rebuilds so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Cumulative counters of every policy-triggered re-rank (local and
    /// batched tiers) over the facade's lifetime — `rerank_swaps`,
    /// `rerank_sweeps`, and the label ops the repairs performed.
    pub fn rerank_totals(&self) -> MaintenanceCounters {
        self.rerank_totals
    }

    /// Current degree-order staleness, read off the incremental tracker
    /// (O(1); same value [`crate::order::degree_order_staleness`] would
    /// recompute by scanning every adjacent rank pair).
    pub fn staleness(&self) -> f64 {
        self.tracker.staleness()
    }

    /// Applies an update, then responds if the policy fires (re-rank
    /// counters are absorbed into the returned stats).
    pub fn apply(&mut self, update: GraphUpdate) -> Result<UpdateStats> {
        match self.inner.apply(update) {
            Ok(mut stats) => {
                self.note_updates(&[update]);
                stats.counters.absorb(&self.maybe_maintain());
                Ok(stats)
            }
            Err(e) => {
                self.reseed_tracker();
                Err(e)
            }
        }
    }

    /// Applies a whole epoch through [`DynamicSpc::apply_batch`], then
    /// responds if the policy fires — the write path the serving layer
    /// drives once per rotation. Whether the epoch ends in incremental
    /// repair, a re-rank, or a policy-triggered rebuild, the facade's
    /// frozen snapshot cache is dropped, so the next
    /// [`ManagedSpc::frozen_queries`] freezes the post-epoch index.
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<UpdateStats> {
        self.apply_batch_with(updates, &self.inner.maintenance_options())
    }

    /// [`ManagedSpc::apply_batch`] with explicit [`MaintenanceOptions`]
    /// (see [`DynamicSpc::apply_batch_with`]).
    pub fn apply_batch_with(
        &mut self,
        updates: &[GraphUpdate],
        options: &MaintenanceOptions,
    ) -> Result<UpdateStats> {
        match self.inner.apply_batch_with(updates, options) {
            Ok(mut stats) => {
                self.note_updates(updates);
                stats.counters.absorb(&self.maybe_maintain());
                Ok(stats)
            }
            Err(e) => {
                // A failed batch may still have applied earlier segments
                // (vertex ops are barriers); reseed rather than guess.
                self.reseed_tracker();
                Err(e)
            }
        }
    }

    /// The wrapped facade's default [`MaintenanceOptions`].
    pub fn maintenance_options(&self) -> MaintenanceOptions {
        self.inner.maintenance_options()
    }

    /// Feeds the applied updates to the staleness tracker. Edge endpoints
    /// refresh their ≤ 2 rank pairs; vertex insertion grows the tracker at
    /// the tail; vertex deletion reseeds (the deleted adjacency — whose
    /// endpoints all changed degree — is no longer observable).
    fn note_updates(&mut self, updates: &[GraphUpdate]) {
        if updates
            .iter()
            .any(|u| matches!(u, GraphUpdate::DeleteVertex(_)))
        {
            self.reseed_tracker();
            return;
        }
        let ManagedSpc { inner, tracker, .. } = self;
        tracker.sync(inner.graph(), inner.index().ranks());
        for u in updates {
            if let GraphUpdate::InsertEdge(a, b) | GraphUpdate::DeleteEdge(a, b) = u {
                tracker.note_vertex(inner.graph(), inner.index().ranks(), *a);
                tracker.note_vertex(inner.graph(), inner.index().ranks(), *b);
            }
        }
    }

    fn reseed_tracker(&mut self) {
        let ManagedSpc { inner, tracker, .. } = self;
        tracker.rebuild(inner.graph(), inner.index().ranks());
    }

    /// Runs the severest due maintenance response; returns the counters of
    /// any re-rank work performed.
    fn maybe_maintain(&mut self) -> MaintenanceCounters {
        let mut extra = MaintenanceCounters::default();
        let action = self
            .policy
            .action(self.inner.updates_since_build(), self.tracker.staleness());
        match action {
            MaintenanceAction::None => {}
            MaintenanceAction::Rebuild => {
                self.inner.rebuild();
                self.rebuilds += 1;
                self.reseed_tracker();
            }
            MaintenanceAction::LocalRerank => {
                // One committed swap at a time, re-picking the largest
                // inversion after each repair so a displaced vertex can
                // climb several positions within the budget.
                for _ in 0..self.policy.local_swap_budget {
                    let plan =
                        plan_adjacent_swaps(self.inner.graph(), self.inner.index().ranks(), 1);
                    let Some(&r) = plan.first() else { break };
                    extra.absorb(&self.inner.rerank_adjacent(&[r], 1));
                    let ManagedSpc { inner, tracker, .. } = self;
                    tracker.note_swap(inner.index().ranks(), r);
                    if self
                        .policy
                        .local_staleness
                        .is_some_and(|limit| self.tracker.staleness() <= limit)
                    {
                        break;
                    }
                }
            }
            MaintenanceAction::BatchedRerank => {
                // Spend the budget over successive plan-and-repair rounds:
                // a non-overlapping plan moves each vertex at most one
                // position, so replanning after each committed round lets a
                // badly displaced vertex keep climbing within one response.
                let threads = self.inner.maintenance_threads().resolve();
                let mut budget = self.policy.batched_swap_budget;
                while budget > 0 {
                    let plan =
                        plan_adjacent_swaps(self.inner.graph(), self.inner.index().ranks(), budget);
                    if plan.is_empty() {
                        break;
                    }
                    budget -= plan.len();
                    extra.absorb(&self.inner.rerank_adjacent(&plan, threads));
                    let ManagedSpc { inner, tracker, .. } = self;
                    for &r in &plan {
                        tracker.note_swap(inner.index().ranks(), r);
                    }
                    if self
                        .policy
                        .batched_staleness
                        .is_some_and(|limit| self.tracker.staleness() <= limit)
                    {
                        break;
                    }
                }
            }
        }
        self.rerank_totals.absorb(&extra);
        extra
    }

    /// `SPC(s, t)` through the live index.
    pub fn query(
        &self,
        s: dspc_graph::VertexId,
        t: dspc_graph::VertexId,
    ) -> Option<(u32, crate::label::Count)> {
        self.inner.query(s, t)
    }

    /// The current epoch's flat snapshot (delegates to
    /// [`DynamicSpc::frozen_queries`] — invalidated by every mutation,
    /// including policy-triggered rebuilds).
    pub fn frozen_queries(&mut self) -> &crate::flat::FlatIndex {
        self.inner.frozen_queries()
    }

    /// Whether a flat snapshot is currently cached.
    pub fn has_frozen_snapshot(&self) -> bool {
        self.inner.has_frozen_snapshot()
    }

    /// Unwraps.
    pub fn into_inner(self) -> DynamicSpc {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderingStrategy;
    use crate::verify::verify_all_pairs;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::{UndirectedGraph, VertexId};

    #[test]
    fn never_policy_never_fires() {
        let d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        assert!(!MaintenancePolicy::NEVER.should_rebuild(&d));
    }

    #[test]
    fn update_count_trigger() {
        let d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        let mut managed = ManagedSpc::new(d, MaintenancePolicy::every(2));
        managed
            .apply(GraphUpdate::InsertEdge(VertexId(3), VertexId(9)))
            .unwrap();
        assert_eq!(managed.rebuilds(), 0);
        managed
            .apply(GraphUpdate::DeleteEdge(VertexId(3), VertexId(9)))
            .unwrap();
        assert_eq!(managed.rebuilds(), 1);
        assert_eq!(managed.inner().updates_since_build(), 0);
        verify_all_pairs(managed.inner().graph(), managed.inner().index()).unwrap();
    }

    /// Regression pin: the policy's full-rebuild branch replaces the index
    /// wholesale, so it MUST drop the facade's cached flat snapshot like
    /// every ordinary mutator does — otherwise `frozen_queries` would keep
    /// serving the pre-rebuild labels. Queries through the frozen engine
    /// after a policy-triggered rebuild must match the rebuilt live index.
    #[test]
    fn policy_rebuild_invalidates_frozen_snapshot() {
        let d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        let mut managed = ManagedSpc::new(d, MaintenancePolicy::every(1));
        managed.frozen_queries();
        assert!(managed.has_frozen_snapshot());
        // Every apply fires the policy: update repair, then a full rebuild.
        managed
            .apply(GraphUpdate::InsertEdge(VertexId(3), VertexId(9)))
            .unwrap();
        assert_eq!(managed.rebuilds(), 1);
        assert!(
            !managed.has_frozen_snapshot(),
            "rebuild must invalidate the frozen snapshot"
        );
        let vs: Vec<VertexId> = managed.inner().graph().vertices().collect();
        for &s in &vs {
            for &t in &vs {
                let live = managed.query(s, t);
                assert_eq!(managed.frozen_queries().query(s, t).as_option(), live);
            }
        }
        // Same contract on the batch path.
        managed
            .apply_batch(&[GraphUpdate::DeleteEdge(VertexId(3), VertexId(9))])
            .unwrap();
        assert_eq!(managed.rebuilds(), 2);
        assert!(!managed.has_frozen_snapshot());
        for &s in &vs {
            for &t in &vs {
                let live = managed.query(s, t);
                assert_eq!(managed.frozen_queries().query(s, t).as_option(), live);
            }
        }
        verify_all_pairs(managed.inner().graph(), managed.inner().index()).unwrap();
    }

    #[test]
    fn staleness_trigger() {
        // Star where the hub loses its edges: degree order inverts quickly.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let d = DynamicSpc::build(g, OrderingStrategy::Degree);
        let policy = MaintenancePolicy {
            max_staleness: Some(0.0),
            ..MaintenancePolicy::NEVER
        };
        let mut managed = ManagedSpc::new(d, policy);
        managed
            .apply(GraphUpdate::DeleteEdge(VertexId(0), VertexId(3)))
            .unwrap();
        managed
            .apply(GraphUpdate::DeleteEdge(VertexId(0), VertexId(4)))
            .unwrap();
        // Vertex 0 now has degree 2 like vertex 1/2 — inversions appear and
        // the policy rebuilds with a fresh order.
        assert!(managed.rebuilds() >= 1);
        verify_all_pairs(managed.inner().graph(), managed.inner().index()).unwrap();
    }
}
