//! Maintenance policy — the paper's lazy answer to ordering staleness.
//!
//! §6 ("Vertex Ordering Changes"): after many updates the degree-based
//! order no longer reflects the graph, inflating future labels. The paper's
//! suggested mitigation is a *lazy strategy* — "reconstructing the entire
//! index after a certain number of updates". [`MaintenancePolicy`] encodes
//! that trigger plus a direct staleness measurement
//! ([`crate::order::degree_order_staleness`]), and [`ManagedSpc`] applies
//! it automatically around a [`DynamicSpc`].

use crate::dynamic::{DynamicSpc, GraphUpdate, UpdateStats};
use crate::order::degree_order_staleness;
use crate::parallel::MaintenanceOptions;
use dspc_graph::Result;

/// When to trigger a full rebuild with a fresh ordering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaintenancePolicy {
    /// Rebuild after this many updates since the last build (the paper's
    /// "certain number of updates"). `None` disables the trigger.
    pub max_updates: Option<usize>,
    /// Rebuild when the fraction of degree-order inversions among adjacent
    /// ranks exceeds this threshold. `None` disables the trigger.
    pub max_staleness: Option<f64>,
}

impl MaintenancePolicy {
    /// Never rebuild (pure dynamic maintenance — what the paper evaluates).
    pub const NEVER: MaintenancePolicy = MaintenancePolicy {
        max_updates: None,
        max_staleness: None,
    };

    /// Rebuild every `n` updates.
    pub fn every(n: usize) -> Self {
        MaintenancePolicy {
            max_updates: Some(n),
            max_staleness: None,
        }
    }

    /// Whether a rebuild is due for `dspc`.
    pub fn should_rebuild(&self, dspc: &DynamicSpc) -> bool {
        if let Some(n) = self.max_updates {
            if dspc.updates_since_build() >= n {
                return true;
            }
        }
        if let Some(limit) = self.max_staleness {
            if degree_order_staleness(dspc.graph(), dspc.index().ranks()) > limit {
                return true;
            }
        }
        false
    }
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy::NEVER
    }
}

/// A [`DynamicSpc`] that applies a [`MaintenancePolicy`] after every
/// update.
#[derive(Debug)]
pub struct ManagedSpc {
    inner: DynamicSpc,
    policy: MaintenancePolicy,
    rebuilds: usize,
}

impl ManagedSpc {
    /// Wraps `dspc` under `policy`.
    pub fn new(inner: DynamicSpc, policy: MaintenancePolicy) -> Self {
        ManagedSpc {
            inner,
            policy,
            rebuilds: 0,
        }
    }

    /// Reassembles a managed facade from checkpointed state: the recovered
    /// inner facade, the policy it ran under, and the rebuild count at
    /// checkpoint time — so policy behavior (and its counters) continue
    /// exactly where the crashed instance left off.
    pub fn recover(inner: DynamicSpc, policy: MaintenancePolicy, rebuilds: usize) -> Self {
        ManagedSpc {
            inner,
            policy,
            rebuilds,
        }
    }

    /// The wrapped facade.
    pub fn inner(&self) -> &DynamicSpc {
        &self.inner
    }

    /// The active maintenance policy.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Number of policy-triggered rebuilds so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Applies an update, then rebuilds if the policy fires.
    pub fn apply(&mut self, update: GraphUpdate) -> Result<UpdateStats> {
        let stats = self.inner.apply(update)?;
        self.maybe_rebuild();
        Ok(stats)
    }

    /// Applies a whole epoch through [`DynamicSpc::apply_batch`], then
    /// rebuilds if the policy fires — the write path the serving layer
    /// drives once per rotation. Whether the epoch ends in incremental
    /// repair or a policy-triggered rebuild, the facade's frozen snapshot
    /// cache is dropped, so the next [`ManagedSpc::frozen_queries`] freezes
    /// the post-epoch index.
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<UpdateStats> {
        self.apply_batch_with(updates, &self.inner.maintenance_options())
    }

    /// [`ManagedSpc::apply_batch`] with explicit [`MaintenanceOptions`]
    /// (see [`DynamicSpc::apply_batch_with`]).
    pub fn apply_batch_with(
        &mut self,
        updates: &[GraphUpdate],
        options: &MaintenanceOptions,
    ) -> Result<UpdateStats> {
        let stats = self.inner.apply_batch_with(updates, options)?;
        self.maybe_rebuild();
        Ok(stats)
    }

    /// The wrapped facade's default [`MaintenanceOptions`].
    pub fn maintenance_options(&self) -> MaintenanceOptions {
        self.inner.maintenance_options()
    }

    fn maybe_rebuild(&mut self) {
        if self.policy.should_rebuild(&self.inner) {
            self.inner.rebuild();
            self.rebuilds += 1;
        }
    }

    /// `SPC(s, t)` through the live index.
    pub fn query(
        &self,
        s: dspc_graph::VertexId,
        t: dspc_graph::VertexId,
    ) -> Option<(u32, crate::label::Count)> {
        self.inner.query(s, t)
    }

    /// The current epoch's flat snapshot (delegates to
    /// [`DynamicSpc::frozen_queries`] — invalidated by every mutation,
    /// including policy-triggered rebuilds).
    pub fn frozen_queries(&mut self) -> &crate::flat::FlatIndex {
        self.inner.frozen_queries()
    }

    /// Whether a flat snapshot is currently cached.
    pub fn has_frozen_snapshot(&self) -> bool {
        self.inner.has_frozen_snapshot()
    }

    /// Unwraps.
    pub fn into_inner(self) -> DynamicSpc {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderingStrategy;
    use crate::verify::verify_all_pairs;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::{UndirectedGraph, VertexId};

    #[test]
    fn never_policy_never_fires() {
        let d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        assert!(!MaintenancePolicy::NEVER.should_rebuild(&d));
    }

    #[test]
    fn update_count_trigger() {
        let d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        let mut managed = ManagedSpc::new(d, MaintenancePolicy::every(2));
        managed
            .apply(GraphUpdate::InsertEdge(VertexId(3), VertexId(9)))
            .unwrap();
        assert_eq!(managed.rebuilds(), 0);
        managed
            .apply(GraphUpdate::DeleteEdge(VertexId(3), VertexId(9)))
            .unwrap();
        assert_eq!(managed.rebuilds(), 1);
        assert_eq!(managed.inner().updates_since_build(), 0);
        verify_all_pairs(managed.inner().graph(), managed.inner().index()).unwrap();
    }

    /// Regression pin: the policy's full-rebuild branch replaces the index
    /// wholesale, so it MUST drop the facade's cached flat snapshot like
    /// every ordinary mutator does — otherwise `frozen_queries` would keep
    /// serving the pre-rebuild labels. Queries through the frozen engine
    /// after a policy-triggered rebuild must match the rebuilt live index.
    #[test]
    fn policy_rebuild_invalidates_frozen_snapshot() {
        let d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        let mut managed = ManagedSpc::new(d, MaintenancePolicy::every(1));
        managed.frozen_queries();
        assert!(managed.has_frozen_snapshot());
        // Every apply fires the policy: update repair, then a full rebuild.
        managed
            .apply(GraphUpdate::InsertEdge(VertexId(3), VertexId(9)))
            .unwrap();
        assert_eq!(managed.rebuilds(), 1);
        assert!(
            !managed.has_frozen_snapshot(),
            "rebuild must invalidate the frozen snapshot"
        );
        let vs: Vec<VertexId> = managed.inner().graph().vertices().collect();
        for &s in &vs {
            for &t in &vs {
                let live = managed.query(s, t);
                assert_eq!(managed.frozen_queries().query(s, t).as_option(), live);
            }
        }
        // Same contract on the batch path.
        managed
            .apply_batch(&[GraphUpdate::DeleteEdge(VertexId(3), VertexId(9))])
            .unwrap();
        assert_eq!(managed.rebuilds(), 2);
        assert!(!managed.has_frozen_snapshot());
        for &s in &vs {
            for &t in &vs {
                let live = managed.query(s, t);
                assert_eq!(managed.frozen_queries().query(s, t).as_option(), live);
            }
        }
        verify_all_pairs(managed.inner().graph(), managed.inner().index()).unwrap();
    }

    #[test]
    fn staleness_trigger() {
        // Star where the hub loses its edges: degree order inverts quickly.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let d = DynamicSpc::build(g, OrderingStrategy::Degree);
        let policy = MaintenancePolicy {
            max_updates: None,
            max_staleness: Some(0.0),
        };
        let mut managed = ManagedSpc::new(d, policy);
        managed
            .apply(GraphUpdate::DeleteEdge(VertexId(0), VertexId(3)))
            .unwrap();
        managed
            .apply(GraphUpdate::DeleteEdge(VertexId(0), VertexId(4)))
            .unwrap();
        // Vertex 0 now has degree 2 like vertex 1/2 — inversions appear and
        // the policy rebuilds with a fresh order.
        assert!(managed.rebuilds() >= 1);
        verify_all_pairs(managed.inner().graph(), managed.inner().index()).unwrap();
    }
}
