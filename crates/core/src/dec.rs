//! DecSPC — decremental SPC-Index maintenance under edge deletion
//! (Algorithms 4, 5, and 6, §3.2).
//!
//! Deletions are the hard direction: distances can *increase*, so stale
//! labels would underestimate queries and must be found. DecSPC works in
//! two phases:
//!
//! 1. **`SrrSEARCH`** (Algorithm 5) runs on the *pre-deletion* graph: a
//!    full-counting BFS from each endpoint classifies every vertex with a
//!    shortest path through `(a, b)` into
//!    * `SR` (*Sender-and-Receiver*, Definition 3.10) — hubs whose outgoing
//!      labels `(v, ·, ·)` may need renewal/insertion/removal: either
//!      condition **A** (`v` is a common hub of `a` and `b` — at least one
//!      top-ranked shortest path crosses the edge) or condition **B**
//!      (`spc_i(v, a) = spc_i(v, b)` — *every* shortest path to the far
//!      endpoint crosses the edge, so a brand-new top-ranked path may
//!      emerge, Figure 4's `w`), or
//!    * `R` (*Receiver-Only*, Definition 3.12) — vertices whose own label
//!      set may change but who never need a BFS of their own.
//! 2. **`DecUPDATE`** (Algorithm 6) runs on the *post-deletion* graph: for
//!    each hub `h ∈ SR` in descending rank order, a rank-pruned counting
//!    BFS from `h` repairs `(h, ·, ·)` labels of reached vertices in the
//!    *opposite side's* `SR ∪ R` (Lemma 3.14), pruning where `PreQUERY`
//!    (hubs ranked strictly above `h`, already repaired) certifies a
//!    shorter path. Labels of opposite-side vertices the BFS never updated
//!    are removed afterwards — unconditionally, not only for common hubs
//!    of `a` and `b` as in the paper's Algorithm 6: the common-hub gate is
//!    unsound once Lemma 3.1's kept-stale labels are in play (see
//!    [`crate::engine`] module docs for the counterexample).
//!
//! The isolated-vertex optimization (§3.2.3) short-circuits the whole
//! procedure when the deletion strands a degree-one endpoint that no label
//! anywhere uses as a hub (tracked exactly by the index's hub-entry
//! counts).

use crate::engine::{
    aggregate_far_columns, build_endpoint_tasks, FarAggregator, FarColumn, MaintenanceCounters,
    RepairAgenda, UndirectedTopo, UpdateEngine, REPAIR_PRIMARY,
};
use crate::index::SpcIndex;
use crate::label::Rank;
use crate::parallel::{ClassifyMode, MaintenanceOptions, MaintenanceThreads};
use crate::query::HubProbe;
use dspc_graph::{UndirectedGraph, VertexId};

/// Former name of the deletion driver's counter block — now the unified
/// [`MaintenanceCounters`] (the `isolated_fast_path` flag lives there).
#[deprecated(
    note = "renamed to `MaintenanceCounters` (one counter type across engine, drivers, and facades)"
)]
pub type DecStats = MaintenanceCounters;

/// The affected-vertex sets computed by `SrrSEARCH` — Table 5 reports their
/// cardinalities.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SrrOutcome {
    /// Affected hubs on `a`'s side (`SR_a`).
    pub sr_a: Vec<VertexId>,
    /// Affected hubs on `b`'s side (`SR_b`).
    pub sr_b: Vec<VertexId>,
    /// Receiver-only vertices on `a`'s side (`R_a`).
    pub r_a: Vec<VertexId>,
    /// Receiver-only vertices on `b`'s side (`R_b`).
    pub r_b: Vec<VertexId>,
}

/// Which affected-hub set drives the update BFSs — the ablation knob
/// behind the paper's §2.3 argument that prior SD-Index definitions of
/// "affected" give no reduction for SPC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DecMode {
    /// The paper's DecSPC: BFS only from `SR` hubs (Definition 3.10).
    #[default]
    SrOnly,
    /// Naive baseline: treat *every* affected vertex (`SR ∪ R`, the
    /// `|sd(v,a) − sd(v,b)| = 1` set of \[8\]) as a hub to update from.
    /// Correct but wasteful — the extra BFSs only insert redundant
    /// (accurate) labels; benchmarked in `ablation_dec`.
    NaiveAffected,
    /// The paper's DecSPC with the §3.2.3 isolated-vertex fast path
    /// disabled — used by tests to prove the fast path is a pure
    /// optimization (identical resulting queries).
    SrOnlyNoFastPath,
}

/// Reusable DecSPC driver (Algorithm 4): the undirected deletion policy
/// over the shared [`UpdateEngine`].
#[derive(Debug)]
pub struct DecSpc {
    engine: UpdateEngine<u32>,
    probe: HubProbe,
    /// Probe pool for multi-far classification (one probe per pinned far
    /// of the widest task seen), grown on demand.
    probes: Vec<HubProbe>,
    agenda: RepairAgenda,
    agg: FarAggregator,
}

impl DecSpc {
    /// Creates an engine for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        DecSpc {
            engine: UpdateEngine::new(capacity),
            probe: HubProbe::new(capacity),
            probes: Vec::new(),
            agenda: RepairAgenda::new(capacity),
            agg: FarAggregator::new(capacity),
        }
    }

    /// Deletes `(a, b)` from `g` and repairs `index`. The engine performs
    /// the graph mutation itself because Algorithm 4 interleaves it between
    /// the two phases (`SrrSEARCH` sees `G_i`, `DecUPDATE` sees `G_{i+1}`).
    ///
    /// Returns the operation counters and the affected sets (for Table 5).
    pub fn delete_edge(
        &mut self,
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> dspc_graph::Result<(MaintenanceCounters, SrrOutcome)> {
        self.delete_edge_with_mode(g, index, a, b, DecMode::SrOnly)
    }

    /// [`DecSpc::delete_edge`] with an explicit [`DecMode`] (ablation hook).
    pub fn delete_edge_with_mode(
        &mut self,
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        a: VertexId,
        b: VertexId,
        mode: DecMode,
    ) -> dspc_graph::Result<(MaintenanceCounters, SrrOutcome)> {
        if !g.has_edge(a, b) {
            return Err(dspc_graph::GraphError::MissingEdge(a, b));
        }
        self.engine.ensure_capacity(g.capacity());

        // §3.2.3 isolated-vertex fast path: the deletion strands a
        // degree-one endpoint `x` that no label anywhere uses as a hub
        // (checked exactly via the index's hub-entry counts — `x`'s own
        // self label is the single permitted occurrence), so emptying L(x)
        // is the entire repair. The count check replaces the paper's
        // rank-comparison precondition: rank(y) < rank(x) guarantees a
        // *freshly built* index has no (x, ·, ·) labels, but stale labels
        // from earlier updates can violate that — and conversely the count
        // check also fires for higher-ranked pendants whose hub entries
        // happen to have been cleaned up, so it is both sound and broader.
        for x in [b, a] {
            if mode != DecMode::SrOnlyNoFastPath
                && g.degree(x) == 1
                && index.hub_entry_count(index.rank(x)) == 1
            {
                g.delete_edge(a, b)?;
                let stats = MaintenanceCounters {
                    removed: index.reset_vertex_to_self(x),
                    isolated_fast_path: true,
                    ..MaintenanceCounters::default()
                };
                return Ok((stats, SrrOutcome::default()));
            }
        }

        // Phase 1 — SrrSEARCH on G_i (edge still present).
        let mut stats = MaintenanceCounters::default();
        let srr = {
            let mut topo = UndirectedTopo::new(g, index, &mut self.probe);
            let (sr_a, r_a) = self.engine.srr_pass(&mut topo, a, b, 1, &mut stats);
            let (sr_b, r_b) = self.engine.srr_pass(&mut topo, b, a, 1, &mut stats);
            SrrOutcome {
                sr_a,
                sr_b,
                r_a,
                r_b,
            }
        };
        self.engine
            .set_marks([&srr.sr_a, &srr.r_a], [&srr.sr_b, &srr.r_b]);

        // Phase boundary — G_{i+1} ← G_i ⊖ (a, b).
        g.delete_edge(a, b)?;

        // SR = SR_a ∪ SR_b sorted by descending rank (ascending position).
        // NaiveAffected additionally promotes every R vertex to hub status.
        let mut sr: Vec<(Rank, bool)> = srr
            .sr_a
            .iter()
            .map(|&v| (index.rank(v), true))
            .chain(srr.sr_b.iter().map(|&v| (index.rank(v), false)))
            .collect();
        if mode == DecMode::NaiveAffected {
            sr.extend(srr.r_a.iter().map(|&v| (index.rank(v), true)));
            sr.extend(srr.r_b.iter().map(|&v| (index.rank(v), false)));
        }
        sr.sort_unstable_by_key(|&(r, _)| r);

        for &(h_rank, from_a) in &sr {
            let h = index.vertex(h_rank);
            stats.hubs_processed += 1;
            let (opposite, removal) = if from_a {
                (crate::engine::MARK_B, [&srr.sr_b[..], &srr.r_b[..]])
            } else {
                (crate::engine::MARK_A, [&srr.sr_a[..], &srr.r_a[..]])
            };
            let mut topo = UndirectedTopo::new(g, index, &mut self.probe);
            self.engine
                .dec_pass(&mut topo, h, opposite, removal, &mut stats);
        }

        self.engine.clear_marks();
        Ok((stats, srr))
    }

    /// Multi-edge `SrrSEARCH` repair (the batch generalization of
    /// Algorithm 4), sequential. Equivalent to [`DecSpc::delete_edges_with`]
    /// with [`MaintenanceOptions::sequential`].
    #[deprecated(note = "use `delete_edges_with` with `MaintenanceOptions::sequential()`")]
    pub fn delete_edges(
        &mut self,
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        edges: &[(VertexId, VertexId)],
    ) -> dspc_graph::Result<MaintenanceCounters> {
        self.delete_edges_with(g, index, edges, &MaintenanceOptions::sequential())
    }

    /// Multi-edge deletion with an explicit thread budget. Equivalent to
    /// [`DecSpc::delete_edges_with`] with
    /// [`MaintenanceOptions::with_threads`].
    #[deprecated(note = "use `delete_edges_with` with `MaintenanceOptions::with_threads(..)`")]
    pub fn delete_edges_with_threads(
        &mut self,
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        edges: &[(VertexId, VertexId)],
        threads: usize,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        self.delete_edges_with(
            g,
            index,
            edges,
            &MaintenanceOptions::with_threads(MaintenanceThreads::Fixed(threads)),
        )
    }

    /// Multi-edge `SrrSEARCH` repair (the batch generalization of
    /// Algorithm 4): deletes every edge of `edges` from `g` and repairs
    /// `index` with **one** `DecUPDATE` sweep per distinct affected hub,
    /// instead of one per edge per hub.
    ///
    /// Phase 1 classifies the whole set on the *group-pre* graph (all of
    /// `edges` still present). Under the default
    /// [`ClassifyMode::MultiFar`] this costs **one**
    /// [`UpdateEngine::multi_far_pass`] sweep per *distinct endpoint* of
    /// the set (not two per edge), with per-far count columns summed per
    /// shared far endpoint — which also fixes the mixed-frontier
    /// condition-**B** undercount the legacy per-edge comparison suffers
    /// when several doomed edges share a far endpoint. The mutation then
    /// removes the whole set; phase 2 sweeps each hub of `⋃ SR`
    /// (descending rank, deduplicated) against the residual graph, so
    /// every repaired label is RenewC/RenewD relative to the graph with
    /// the *entire* deleted set absent. The receiver/removal candidate
    /// list is the union of every classified vertex — a superset of each
    /// edge's opposite side, safe under the unconditional removal pass
    /// (see [`crate::engine`] module docs).
    ///
    /// A thread budget above 1 classifies endpoint tasks in parallel
    /// (read-only on the pre-mutation graph) and runs the repair sweeps
    /// as rank-independent waves on a persistent worker pool
    /// ([`crate::engine::parallel::run_wave_pool`]). Results are
    /// deterministic: the repaired index, query answers, and
    /// label-operation counters are identical at every thread count —
    /// only the `waves` / `max_wave_width` / `interference_probes` /
    /// `steal_events` schedule counters distinguish the parallel path.
    ///
    /// Edges eligible for the §3.2.3 isolated-vertex fast path (a pendant
    /// endpoint no label uses as a hub) are peeled off the group first and
    /// deleted through [`DecSpc::delete_edge`] — they cost zero sweeps
    /// there, so routing them through the group machinery would only *add*
    /// classification work.
    ///
    /// All edges are validated present (and pairwise distinct) before the
    /// first mutation; on error nothing is applied.
    pub fn delete_edges_with(
        &mut self,
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        edges: &[(VertexId, VertexId)],
        options: &MaintenanceOptions,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        match edges {
            [] => return Ok(MaintenanceCounters::default()),
            &[(a, b)] => return self.delete_edge(g, index, a, b).map(|(s, _)| s),
            _ => {}
        }
        let mut keys: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if !g.has_edge(a, b) {
                return Err(dspc_graph::GraphError::MissingEdge(a, b));
            }
            keys.push(crate::engine::ordered_key(a, b));
        }
        if let Some((x, y)) = crate::engine::duplicate_edge_key(&mut keys) {
            return Err(dspc_graph::GraphError::MissingEdge(
                VertexId(x),
                VertexId(y),
            ));
        }

        // Peel fast-path-eligible edges off the group (checked against the
        // evolving graph, since each peeled deletion can strand the next
        // pendant).
        let mut total = MaintenanceCounters::default();
        let mut group: Vec<(VertexId, VertexId)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            let eligible = [a, b].into_iter().any(|x| {
                let r = index.rank(x);
                g.degree(x) == 1 && index.hub_entry_count(r) == 1
            });
            if eligible {
                let (s, _) = self.delete_edge(g, index, a, b)?;
                total.absorb(&s);
            } else {
                group.push((a, b));
            }
        }
        match group[..] {
            [] => return Ok(total),
            [(a, b)] => {
                let (s, _) = self.delete_edge(g, index, a, b)?;
                total.absorb(&s);
                return Ok(total);
            }
            _ => {}
        }

        self.engine.ensure_capacity(g.capacity());
        self.agenda.ensure_capacity(g.capacity());
        self.agg.ensure_capacity(g.capacity());
        let threads = options.threads.resolve();
        let mut stats = MaintenanceCounters::default();

        if threads <= 1 {
            // Phase 1 — classification on the group-pre graph, outcomes
            // merged into the shared agenda.
            match options.classify {
                ClassifyMode::PerEdge => {
                    for &(a, b) in &group {
                        let mut topo = UndirectedTopo::new(g, index, &mut self.probe);
                        let (sr_a, r_a) = self.engine.srr_pass(&mut topo, a, b, 1, &mut stats);
                        let (sr_b, r_b) = self.engine.srr_pass(&mut topo, b, a, 1, &mut stats);
                        self.agenda
                            .note_side(&sr_a, &r_a, REPAIR_PRIMARY, |v| index.rank(v));
                        self.agenda
                            .note_side(&sr_b, &r_b, REPAIR_PRIMARY, |v| index.rank(v));
                    }
                }
                ClassifyMode::MultiFar => {
                    let tasks = build_endpoint_tasks(
                        group.iter().flat_map(|&(a, b)| [(a, b, 1u32), (b, a, 1)]),
                    );
                    let mut columns: Vec<FarColumn> = Vec::new();
                    {
                        use crate::engine::FrozenUndirected;
                        let (g_ref, index_ref): (&UndirectedGraph, &SpcIndex) = (g, index);
                        let engine = &mut self.engine;
                        let probes = &mut self.probes;
                        for task in &tasks {
                            while probes.len() < task.fars.len() {
                                probes.push(HubProbe::new(g_ref.capacity()));
                            }
                            let mut views: Vec<FrozenUndirected> = probes[..task.fars.len()]
                                .iter_mut()
                                .map(|p| FrozenUndirected::new(g_ref, index_ref, p))
                                .collect();
                            columns.extend(
                                engine
                                    .multi_far_pass(&mut views, task.near, &task.fars, &mut stats),
                            );
                        }
                    }
                    aggregate_far_columns(
                        &mut self.agg,
                        &columns,
                        &mut self.agenda,
                        REPAIR_PRIMARY,
                        |v| index.rank(v),
                    );
                }
            }
            self.engine
                .set_marks([self.agenda.receivers(), &[]], [&[], &[]]);

            // Phase boundary — G_{i+1} ← G_i ⊖ group (the whole set at once).
            for &(a, b) in &group {
                g.delete_edge(a, b)?;
            }

            // Phase 2 — one sweep per distinct hub on the residual graph.
            let hubs = self.agenda.take_hubs();
            stats.agenda_hubs += hubs.len();
            for (h_rank, _) in hubs {
                let h = index.vertex(h_rank);
                stats.hubs_processed += 1;
                let mut topo = UndirectedTopo::new(g, index, &mut self.probe);
                self.engine.dec_pass(
                    &mut topo,
                    h,
                    crate::engine::MARK_A,
                    [self.agenda.receivers(), &[]],
                    &mut stats,
                );
            }

            self.engine.clear_marks();
        } else {
            self.delete_group_parallel(g, index, &group, threads, options.classify, &mut stats)?;
        }
        self.agenda.clear();
        total.absorb(&stats);
        Ok(total)
    }

    /// The wave-parallel twin of the sequential group body: classification
    /// fans out over the group's endpoint tasks (read-only on the
    /// pre-mutation graph and index), the whole set is deleted, and the
    /// deduplicated hub agenda runs as rank-independent waves of frozen
    /// sweeps on a persistent worker pool, with buffered label writes
    /// committed at each wave boundary.
    fn delete_group_parallel(
        &mut self,
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        group: &[(VertexId, VertexId)],
        threads: usize,
        classify: ClassifyMode,
        stats: &mut MaintenanceCounters,
    ) -> dspc_graph::Result<()> {
        use crate::engine::parallel::{
            agenda_components, frozen_dec_sweep, note_schedule, plan_waves, run_wave_pool,
            Buffered, Interference, LabelWriteLog, WorkerScratch,
        };
        use crate::engine::FrozenUndirected;

        let cap = g.capacity();

        // Phase 1 — parallel classification on the group-pre graph, merged
        // in task order so the agenda and counters end up exactly as the
        // sequential classification would have left them.
        match classify {
            ClassifyMode::PerEdge => {
                let outcomes = {
                    let (g_ref, index_ref): (&UndirectedGraph, &SpcIndex) = (g, index);
                    crate::parallel::fan_out(
                        group,
                        threads,
                        || {
                            (
                                UpdateEngine::<u32>::new(cap),
                                HubProbe::new(cap),
                                LabelWriteLog::<u32>::new(),
                            )
                        },
                        |(engine, probe, log), &(a, b)| {
                            let mut c = MaintenanceCounters::default();
                            let mut topo =
                                Buffered::new(FrozenUndirected::new(g_ref, index_ref, probe), log);
                            let (sr_a, r_a) = engine.srr_pass(&mut topo, a, b, 1, &mut c);
                            let (sr_b, r_b) = engine.srr_pass(&mut topo, b, a, 1, &mut c);
                            debug_assert!(log.is_empty(), "classification never writes");
                            (sr_a, r_a, sr_b, r_b, c)
                        },
                    )
                };
                for (sr_a, r_a, sr_b, r_b, c) in &outcomes {
                    stats.absorb(c);
                    self.agenda
                        .note_side(sr_a, r_a, REPAIR_PRIMARY, |v| index.rank(v));
                    self.agenda
                        .note_side(sr_b, r_b, REPAIR_PRIMARY, |v| index.rank(v));
                }
            }
            ClassifyMode::MultiFar => {
                let tasks = build_endpoint_tasks(
                    group.iter().flat_map(|&(a, b)| [(a, b, 1u32), (b, a, 1)]),
                );
                let outcomes = {
                    let (g_ref, index_ref): (&UndirectedGraph, &SpcIndex) = (g, index);
                    crate::parallel::fan_out(
                        &tasks,
                        threads,
                        || (UpdateEngine::<u32>::new(cap), Vec::<HubProbe>::new()),
                        |(engine, probes), task| {
                            while probes.len() < task.fars.len() {
                                probes.push(HubProbe::new(cap));
                            }
                            let mut c = MaintenanceCounters::default();
                            let mut views: Vec<FrozenUndirected> = probes[..task.fars.len()]
                                .iter_mut()
                                .map(|p| FrozenUndirected::new(g_ref, index_ref, p))
                                .collect();
                            let cols =
                                engine.multi_far_pass(&mut views, task.near, &task.fars, &mut c);
                            (cols, c)
                        },
                    )
                };
                let mut columns: Vec<FarColumn> = Vec::new();
                for (cols, c) in outcomes {
                    stats.absorb(&c);
                    columns.extend(cols);
                }
                aggregate_far_columns(
                    &mut self.agg,
                    &columns,
                    &mut self.agenda,
                    REPAIR_PRIMARY,
                    |v| index.rank(v),
                );
            }
        }

        // Phase boundary — G_{i+1} ← G_i ⊖ group (the whole set at once).
        for &(a, b) in group {
            g.delete_edge(a, b)?;
        }

        // Phase 2 — wave-scheduled repair on the residual graph. The
        // interference model is only worth building when the agenda could
        // actually share a wave; its component labeling is a bounded BFS
        // seeded at the agenda's hubs and receivers, so untouched residual
        // components cost nothing.
        let hubs = self.agenda.take_hubs();
        stats.agenda_hubs += hubs.len();
        let receivers = self.agenda.receivers();
        let schedule = if hubs.len() < 2 {
            plan_waves(hubs.len(), |_, _| false)
        } else {
            let (comp, probes) = agenda_components(
                cap,
                hubs.iter()
                    .map(|&(r, _)| index.vertex(r))
                    .chain(receivers.iter().copied()),
                |v, f| {
                    for &w in g.neighbors(VertexId(v)) {
                        f(w);
                    }
                },
            );
            stats.interference_probes += probes;
            let inter = Interference::build(
                &comp,
                &hubs,
                receivers,
                |r| index.vertex(r),
                |v, f| {
                    for e in index.label_set(v).entries() {
                        f(e.hub);
                    }
                },
            );
            plan_waves(hubs.len(), |i, j| inter.conflicts(i, j))
        };
        note_schedule(stats, &schedule);
        let items: Vec<Rank> = hubs.iter().map(|&(r, _)| r).collect();
        let waves: Vec<&[usize]> = schedule.iter().collect();
        let g_ref: &UndirectedGraph = g;
        let index_lock = std::sync::RwLock::new(&mut *index);
        let steals = run_wave_pool(
            threads,
            &items,
            &waves,
            || WorkerScratch::for_group(cap, receivers, HubProbe::new(cap)),
            |scratch, &h_rank| {
                // A shared read lock per sweep: writes only ever happen in
                // the commit closure below, between waves, when every
                // worker is parked at the pool barrier.
                let guard = index_lock.read().unwrap();
                let index: &SpcIndex = &guard;
                frozen_dec_sweep(
                    &mut scratch.engine,
                    FrozenUndirected::new(g_ref, index, &mut scratch.probe),
                    index.vertex(h_rank),
                    receivers,
                )
            },
            |results| {
                // Commit in rank order. Distinct hubs write distinct label
                // rows, so the order only matters for matching the
                // sequential counter accumulation.
                let mut guard = index_lock.write().unwrap();
                for (mut log, c) in results {
                    stats.absorb(&c);
                    for (v, hub, op) in log.drain() {
                        match op {
                            Some((d, cnt)) => {
                                guard.upsert_entry(v, crate::label::LabelEntry::new(hub, d, cnt));
                            }
                            None => {
                                guard.remove_entry(v, hub);
                            }
                        }
                    }
                }
            },
        );
        stats.steal_events += steals;
        Ok(())
    }

    /// Algorithm 5 — computes `SR_a, R_a` (BFS from `a`, classifying against
    /// queries to `b`) and symmetrically `SR_b, R_b`, on the pre-deletion
    /// graph. (Callers wanting the sets alongside a real deletion use
    /// [`crate::DynamicSpc::delete_edge_with_sets`]; this standalone entry
    /// backs the paper-example tests. `index` is taken mutably only because
    /// the engine's topology view unifies read and repair passes.)
    #[cfg(test)]
    fn srr_search(
        &mut self,
        g: &UndirectedGraph,
        index: &mut SpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> SrrOutcome {
        self.engine.ensure_capacity(g.capacity());
        let mut stats = MaintenanceCounters::default();
        let mut topo = UndirectedTopo::new(g, index, &mut self.probe);
        let (sr_a, r_a) = self.engine.srr_pass(&mut topo, a, b, 1, &mut stats);
        let (sr_b, r_b) = self.engine.srr_pass(&mut topo, b, a, 1, &mut stats);
        SrrOutcome {
            sr_a,
            sr_b,
            r_a,
            r_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use crate::query::spc_query;
    use crate::verify::verify_all_pairs;
    use dspc_graph::generators::paper::{figure2_g, figure4_toy, figure5_chain};
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn delete_and_verify(
        g: &mut UndirectedGraph,
        index: &mut SpcIndex,
        engine: &mut DecSpc,
        a: u32,
        b: u32,
    ) -> (MaintenanceCounters, SrrOutcome) {
        let out = engine
            .delete_edge(g, index, VertexId(a), VertexId(b))
            .unwrap();
        verify_all_pairs(g, index).unwrap();
        index.check_invariants().unwrap();
        out
    }

    #[test]
    fn paper_example_3_13_sr_and_r_sets() {
        // Deleting (v1, v2) from Figure 2's G: SR_v1 = {v1, v6, v10},
        // SR_v2 = {v2}, R_v2 = {v3, v7}, R_v1 = ∅.
        let g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let mut engine = DecSpc::new(g.capacity());
        let srr = engine.srr_search(&g, &mut index, VertexId(1), VertexId(2));
        let as_set = |v: &[VertexId]| {
            let mut s: Vec<u32> = v.iter().map(|x| x.0).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(as_set(&srr.sr_a), vec![1, 6, 10]);
        assert_eq!(as_set(&srr.r_a), Vec::<u32>::new());
        assert_eq!(as_set(&srr.sr_b), vec![2]);
        assert_eq!(as_set(&srr.r_b), vec![3, 7]);
    }

    #[test]
    fn paper_example_3_15_delete_v1_v2() {
        let mut g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let mut engine = DecSpc::new(g.capacity());
        let (stats, _) = delete_and_verify(&mut g, &mut index, &mut engine, 1, 2);

        // Figure 6(d): (v1,1,1) ∈ L(v2) renewed to (v1,2,1).
        let e = *index.label_of(VertexId(2), VertexId(1)).unwrap();
        assert_eq!((e.dist, e.count), (2, 1));
        // (v1,2,1) ∈ L(v3) deleted in the removal pass.
        assert!(index.label_of(VertexId(3), VertexId(1)).is_none());
        // (v1,3,2) ∈ L(v7) renewed to (v1,3,1).
        let e = *index.label_of(VertexId(7), VertexId(1)).unwrap();
        assert_eq!((e.dist, e.count), (3, 1));
        // New label (v2,4,1) inserted into L(v10).
        let e = *index.label_of(VertexId(10), VertexId(2)).unwrap();
        assert_eq!((e.dist, e.count), (4, 1));
        assert!(stats.removed >= 1);
        assert!(stats.inserted >= 1);
    }

    #[test]
    fn figure4_condition_b_emergence() {
        // Deleting (a, b) = (2, 3): label (h,3,1) ∈ L(u) must become
        // (h,6,1) and (w,5,1) must appear although w labeled neither
        // endpoint (condition B hub).
        let mut g = figure4_toy();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        assert!(index.label_of(VertexId(2), VertexId(1)).is_none()); // w ∉ L(a)
        let mut engine = DecSpc::new(g.capacity());
        delete_and_verify(&mut g, &mut index, &mut engine, 2, 3);
        let e = *index.label_of(VertexId(4), VertexId(0)).unwrap();
        assert_eq!((e.dist, e.count), (6, 1));
        let e = *index.label_of(VertexId(4), VertexId(1)).unwrap();
        assert_eq!((e.dist, e.count), (5, 1));
    }

    #[test]
    fn figure5_condition_a_renewals() {
        let mut g = figure5_chain();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let mut engine = DecSpc::new(g.capacity());
        delete_and_verify(&mut g, &mut index, &mut engine, 3, 4);
        // (v1, 3, 1) → (v1, 5, 1) and (v2, 3, 2) → (v2, 3, 1) in L(u).
        let e = *index.label_of(VertexId(5), VertexId(0)).unwrap();
        assert_eq!((e.dist, e.count), (5, 1));
        let e = *index.label_of(VertexId(5), VertexId(1)).unwrap();
        assert_eq!((e.dist, e.count), (3, 1));
    }

    #[test]
    fn disconnecting_bridge_removes_labels() {
        let mut g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)]);
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let mut engine = DecSpc::new(g.capacity());
        let (stats, _) = delete_and_verify(&mut g, &mut index, &mut engine, 2, 3);
        assert!(!spc_query(&index, VertexId(0), VertexId(5)).is_connected());
        assert!(stats.removed > 0 || stats.isolated_fast_path);
    }

    #[test]
    fn isolated_vertex_fast_path() {
        // Pendant vertex hanging off a triangle: the pendant has degree 1
        // and the lowest degree, hence the lowest rank under degree order.
        let mut g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let mut engine = DecSpc::new(g.capacity());
        let (stats, srr) = delete_and_verify(&mut g, &mut index, &mut engine, 2, 3);
        assert!(stats.isolated_fast_path);
        assert!(stats.removed >= 1);
        assert!(srr.sr_a.is_empty() && srr.sr_b.is_empty());
        assert_eq!(index.label_set(VertexId(3)).len(), 1);
    }

    #[test]
    fn fast_path_skipped_when_pendant_ranks_higher() {
        // Force the pendant to rank *highest* via identity order on ids
        // chosen so the pendant is vertex 0: the general path must run and
        // remove hub-0 labels from the rest of the graph.
        let mut g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 1)]);
        let mut index = build_index(&g, OrderingStrategy::Identity);
        assert!(index.label_of(VertexId(3), VertexId(0)).is_some());
        let mut engine = DecSpc::new(g.capacity());
        let (stats, _) = delete_and_verify(&mut g, &mut index, &mut engine, 0, 1);
        assert!(!stats.isolated_fast_path);
        assert!(index.label_of(VertexId(3), VertexId(0)).is_none());
        assert!(stats.removed >= 1);
    }

    #[test]
    fn delete_missing_edge_errors() {
        let mut g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let mut engine = DecSpc::new(g.capacity());
        assert!(engine
            .delete_edge(&mut g, &mut index, VertexId(0), VertexId(9))
            .is_err());
    }

    #[test]
    fn random_deletion_streams_stay_correct() {
        let mut rng = StdRng::seed_from_u64(555);
        for trial in 0..6 {
            let n = 25 + trial * 5;
            let mut g = erdos_renyi_gnm(n, 3 * n, &mut rng);
            let mut index = build_index(&g, OrderingStrategy::Degree);
            let mut engine = DecSpc::new(g.capacity());
            for _ in 0..10 {
                let m = g.num_edges();
                if m == 0 {
                    break;
                }
                let (a, b) = g.nth_edge(rng.gen_range(0..m)).unwrap();
                engine.delete_edge(&mut g, &mut index, a, b).unwrap();
                verify_all_pairs(&g, &index).unwrap();
                index.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn every_edge_of_figure2_deletes_cleanly() {
        let base = figure2_g();
        let edges: Vec<_> = base.edges().collect();
        for &(a, b) in &edges {
            let mut g = figure2_g();
            let mut index = build_index(&g, OrderingStrategy::Identity);
            let mut engine = DecSpc::new(g.capacity());
            delete_and_verify(&mut g, &mut index, &mut engine, a.0, b.0);
        }
    }

    #[test]
    fn fast_path_is_a_pure_optimization() {
        // Delete pendant edges both with and without the §3.2.3 fast path;
        // the resulting indexes must answer identically everywhere.
        let mut rng = StdRng::seed_from_u64(909);
        for _ in 0..5 {
            let mut g0 = erdos_renyi_gnm(25, 50, &mut rng);
            // Attach a pendant chain so pendant deletions exist.
            let p = g0.add_vertex();
            g0.insert_edge(VertexId(0), p).unwrap();
            let targets: Vec<(VertexId, VertexId)> = g0
                .edges()
                .filter(|&(u, v)| g0.degree(u) == 1 || g0.degree(v) == 1)
                .collect();
            for &(a, b) in &targets {
                let mut fast_g = g0.clone();
                let mut fast_idx = build_index(&fast_g, OrderingStrategy::Degree);
                let mut slow_g = g0.clone();
                let mut slow_idx = build_index(&slow_g, OrderingStrategy::Degree);
                let mut engine = DecSpc::new(g0.capacity());
                engine
                    .delete_edge_with_mode(&mut fast_g, &mut fast_idx, a, b, DecMode::SrOnly)
                    .unwrap();
                engine
                    .delete_edge_with_mode(
                        &mut slow_g,
                        &mut slow_idx,
                        a,
                        b,
                        DecMode::SrOnlyNoFastPath,
                    )
                    .unwrap();
                for s in fast_g.vertices() {
                    for t in fast_g.vertices() {
                        assert_eq!(
                            spc_query(&fast_idx, s, t),
                            spc_query(&slow_idx, s, t),
                            "edge ({a:?},{b:?}), pair ({s:?},{t:?})"
                        );
                    }
                }
                verify_all_pairs(&fast_g, &fast_idx).unwrap();
            }
        }
    }

    #[test]
    fn naive_mode_stays_correct_and_does_more_work() {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut total_sr = 0usize;
        let mut total_naive = 0usize;
        for _ in 0..5 {
            let g0 = erdos_renyi_gnm(30, 90, &mut rng);
            let m = g0.num_edges();
            let (a, b) = g0.nth_edge(rng.gen_range(0..m)).unwrap();
            for mode in [DecMode::SrOnly, DecMode::NaiveAffected] {
                let mut g = g0.clone();
                let mut index = build_index(&g, OrderingStrategy::Degree);
                let mut engine = DecSpc::new(g.capacity());
                let (stats, _) = engine
                    .delete_edge_with_mode(&mut g, &mut index, a, b, mode)
                    .unwrap();
                verify_all_pairs(&g, &index).unwrap();
                match mode {
                    DecMode::SrOnly => total_sr += stats.hubs_processed,
                    DecMode::NaiveAffected => total_naive += stats.hubs_processed,
                    DecMode::SrOnlyNoFastPath => unreachable!("not exercised here"),
                }
            }
        }
        assert!(
            total_naive >= total_sr,
            "naive must process at least as many hubs: {total_naive} vs {total_sr}"
        );
    }

    #[test]
    fn delete_then_full_drain() {
        // Deleting every edge one by one must end at the all-isolated
        // index with only self labels.
        let mut g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let mut engine = DecSpc::new(g.capacity());
        while g.num_edges() > 0 {
            let (a, b) = g.nth_edge(0).unwrap();
            engine.delete_edge(&mut g, &mut index, a, b).unwrap();
        }
        verify_all_pairs(&g, &index).unwrap();
        assert_eq!(index.num_entries(), 12);
    }
}
