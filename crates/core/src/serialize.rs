//! Binary serialization of the SPC-Index.
//!
//! Two formats share the `DSPC` magic:
//!
//! **v1** mirrors the paper's storage layout (§4.1): one 64-bit word per
//! label entry — 25-bit hub, 10-bit distance, 29-bit count — when every
//! entry fits those fields, with a transparent fallback to a wide 16-byte
//! encoding for graphs whose counts or distances overflow the packed
//! widths. This remains the most compact interchange form and the default
//! of [`encode_index`].
//!
//! ```text
//! magic  "DSPC"            4 bytes
//! version u32              1
//! flags   u32              bit 0: 1 = packed entries, 0 = wide
//! n       u64              vertex/id-space size
//! vertex_at[n] u32         rank → vertex id (the total order)
//! for each vertex 0..n:
//!   len   u32
//!   len × entry            8 bytes packed | 16 bytes wide (hub, dist, count)
//! ```
//!
//! **v2** ([`encode_flat`] / [`encode_index_v2`]) writes a
//! [`FlatIndex`]'s CSR columns directly — each column section is
//! length-prefixed (element count as `u64`) and starts 8-byte aligned, so
//! a loader reconstructs either representation with four bulk column
//! reads and zero per-entry decoding: [`decode_flat`] rebuilds the flat
//! snapshot as-is, and [`decode_index`] thaws it into a live index by
//! appending each already-sorted row ([`LabelSet::push_descending`]).
//!
//! ```text
//! magic  "DSPC"            4 bytes
//! version u32              2
//! flags   u32              0
//! n       u64              vertex/id-space size
//! vertex_at[n] u32         rank → vertex id (the total order)
//! pad to 8-byte boundary
//! len u64, offsets[n + 1] u32, pad to 8
//! len u64, hubs[e]  u32,       pad to 8
//! len u64, dists[e] u32,       pad to 8
//! len u64, counts[e] u64
//! crc64[5] u64             per-section checksums (header, offsets, hubs,
//!                          dists, counts)
//! magic  "DSPCXSUM"        8 bytes, footer marker
//! ```
//!
//! The checksum footer is verified before any decoded value is used; a
//! mismatch fails with [`CodecError::Corrupt`] naming the damaged section.
//! Footer-less v2 files (written before the footer existed) still decode —
//! the footer is detected by its trailing marker.
//!
//! [`load_index`] and [`decode_index`] accept both versions.

use crate::flat::FlatIndex;
use crate::index::SpcIndex;
use crate::label::{packed, Count, LabelEntry, LabelSet, Rank};
use crate::order::{OrderingStrategy, RankMap};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dspc_graph::VertexId;

const MAGIC: &[u8; 4] = b"DSPC";
const VERSION: u32 = 1;
const VERSION_FLAT: u32 = 2;
const FLAG_PACKED: u32 = 1;

/// Trailing marker of the v2 checksum footer.
const FOOTER_MAGIC: &[u8; 8] = b"DSPCXSUM";
/// Names of the five checksummed v2 sections, in file order.
const SECTION_NAMES: [&str; 5] = ["header", "offsets", "hubs", "dists", "counts"];
/// Footer size: five section checksums plus the trailing marker.
const FOOTER_LEN: usize = 5 * 8 + FOOTER_MAGIC.len();

/// CRC-64 (reflected ECMA-182 polynomial — the XZ variant), table built at
/// compile time. Used for the v2 checksum footer and by the serving
/// layer's write-ahead journal; any single-bit corruption is detected.
pub fn crc64(data: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    const TABLE: [u64; 256] = {
        let mut table = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = u64::MAX;
    for &byte in data {
        crc = TABLE[((crc ^ byte as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Serialization/deserialization failures.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input does not start with the `DSPC` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended prematurely or lengths are inconsistent.
    Truncated,
    /// The rank permutation is invalid.
    BadRankMap,
    /// The v2 column sections are inconsistent (offsets not monotone, or
    /// column lengths disagreeing with each other or the header).
    BadColumns,
    /// A checksum mismatch in the named section — the bytes were damaged
    /// after writing (bit rot, torn write, hostile edit). The payload names
    /// the damaged section so operators know *where* the file broke.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a DSPC index (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported DSPC index version {v}"),
            CodecError::Truncated => write!(f, "truncated DSPC index"),
            CodecError::BadRankMap => write!(f, "corrupt rank permutation"),
            CodecError::BadColumns => write!(f, "inconsistent DSPC flat columns"),
            CodecError::Corrupt(section) => {
                write!(f, "corrupt DSPC '{section}' section (checksum mismatch)")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes `index` to bytes. Any hub/distance/count exceeding the packed
/// field widths forces the wide encoding so that no information is lost.
pub fn encode_index(index: &SpcIndex) -> Bytes {
    let n = index.num_vertices();
    let packed_ok = (0..n).all(|v| {
        index
            .label_set(VertexId(v as u32))
            .entries()
            .iter()
            .all(|e| {
                e.hub.0 <= packed::MAX_HUB
                    && e.dist <= packed::MAX_DIST
                    && e.count <= packed::MAX_COUNT
            })
    });
    let mut buf = BytesMut::with_capacity(20 + n * 8 + index.num_entries() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(if packed_ok { FLAG_PACKED } else { 0 });
    buf.put_u64_le(n as u64);
    for r in 0..n {
        buf.put_u32_le(index.vertex(Rank(r as u32)).0);
    }
    for v in 0..n {
        let ls = index.label_set(VertexId(v as u32));
        buf.put_u32_le(ls.len() as u32);
        for e in ls.entries() {
            if packed_ok {
                buf.put_u64_le(packed::pack(*e).expect("checked packable").0);
            } else {
                buf.put_u32_le(e.hub.0);
                buf.put_u32_le(e.dist);
                buf.put_u64_le(e.count);
            }
        }
    }
    buf.freeze()
}

/// Reads the common header prefix (magic + version), returning the
/// version without consuming anything.
fn peek_version(data: &[u8]) -> Result<u32, CodecError> {
    if data.len() < 8 {
        return Err(CodecError::Truncated);
    }
    if &data[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    Ok(u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")))
}

/// Deserializes an index previously produced by [`encode_index`] (v1) or
/// [`encode_flat`]/[`encode_index_v2`] (v2). The explicit rank permutation
/// stored in the file is restored exactly. A v2 input reconstructs the
/// live representation without per-entry decoding: four bulk column reads,
/// then one ordered append pass per vertex.
pub fn decode_index(data: &[u8]) -> Result<SpcIndex, CodecError> {
    match peek_version(data)? {
        VERSION => decode_index_v1(data),
        VERSION_FLAT => Ok(decode_flat_v2(data)?.thaw()),
        v => Err(CodecError::BadVersion(v)),
    }
}

fn decode_index_v1(mut data: &[u8]) -> Result<SpcIndex, CodecError> {
    if data.remaining() < 20 {
        return Err(CodecError::Truncated);
    }
    data.advance(8); // magic + version, validated by the caller
    let flags = data.get_u32_le();
    let is_packed = flags & FLAG_PACKED != 0;
    let n = data.get_u64_le() as usize;
    if data.remaining() < n * 4 {
        return Err(CodecError::Truncated);
    }
    let mut vertex_at = Vec::with_capacity(n);
    for _ in 0..n {
        vertex_at.push(data.get_u32_le());
    }
    {
        let mut seen = vec![false; n];
        for &v in &vertex_at {
            if v as usize >= n || seen[v as usize] {
                return Err(CodecError::BadRankMap);
            }
            seen[v as usize] = true;
        }
    }
    let ranks = RankMap::from_rank_order(&vertex_at, OrderingStrategy::Identity);
    let mut index = SpcIndex::self_labeled(ranks);
    for v in 0..n {
        if data.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let len = data.get_u32_le() as usize;
        let entry_size = if is_packed { 8 } else { 16 };
        if data.remaining() < len * entry_size {
            return Err(CodecError::Truncated);
        }
        let mut restored = LabelSet::new();
        for _ in 0..len {
            let e = if is_packed {
                packed::unpack(packed::PackedLabel(data.get_u64_le()))
            } else {
                let hub = Rank(data.get_u32_le());
                let dist = data.get_u32_le();
                let count = data.get_u64_le();
                LabelEntry { hub, dist, count }
            };
            restored.upsert(e);
        }
        *index.label_set_mut(VertexId(v as u32)) = restored;
    }
    Ok(index)
}

fn pad_to_8(buf: &mut BytesMut) {
    while !buf.len().is_multiple_of(8) {
        buf.put_u8(0);
    }
}

/// Serializes a flat snapshot in the v2 columnar layout: header, rank
/// permutation, then the four length-prefixed, 8-byte-aligned column
/// sections, written with bulk copies, closed by the per-section checksum
/// footer.
pub fn encode_flat(flat: &FlatIndex) -> Bytes {
    let cols = flat.columns();
    let n = flat.num_vertices();
    let e = flat.num_entries();
    let mut buf = BytesMut::with_capacity(64 + n * 8 + e * 16 + FOOTER_LEN);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_FLAT);
    buf.put_u32_le(0); // flags
    buf.put_u64_le(n as u64);
    for r in 0..n {
        buf.put_u32_le(flat.ranks().vertex(Rank(r as u32)).0);
    }
    pad_to_8(&mut buf);
    let mut ends = [0usize; 5];
    ends[0] = buf.len();
    let put_u32s = |buf: &mut BytesMut, xs: &[u32]| {
        buf.put_u64_le(xs.len() as u64);
        for &x in xs {
            buf.put_u32_le(x);
        }
        pad_to_8(buf);
    };
    put_u32s(&mut buf, cols.offsets());
    ends[1] = buf.len();
    put_u32s(&mut buf, cols.hubs());
    ends[2] = buf.len();
    put_u32s(&mut buf, cols.dists());
    ends[3] = buf.len();
    buf.put_u64_le(cols.counts().len() as u64);
    for &c in cols.counts() {
        buf.put_u64_le(c);
    }
    ends[4] = buf.len();
    // Checksum footer: one crc64 per section, then the trailing marker the
    // decoder detects the footer by.
    let mut crcs = [0u64; 5];
    let mut start = 0usize;
    for (i, &end) in ends.iter().enumerate() {
        crcs[i] = crc64(&buf.as_ref()[start..end]);
        start = end;
    }
    for c in crcs {
        buf.put_u64_le(c);
    }
    buf.put_slice(FOOTER_MAGIC);
    buf.freeze()
}

/// Serializes a live index in the v2 columnar layout (freeze + encode).
pub fn encode_index_v2(index: &SpcIndex) -> Bytes {
    encode_flat(&FlatIndex::freeze(index))
}

/// Deserializes a flat snapshot from either format: a v2 input is four
/// bulk column reads; a v1 input decodes the live representation and
/// freezes it.
pub fn decode_flat(data: &[u8]) -> Result<FlatIndex, CodecError> {
    match peek_version(data)? {
        VERSION => Ok(FlatIndex::freeze(&decode_index_v1(data)?)),
        VERSION_FLAT => decode_flat_v2(data),
        v => Err(CodecError::BadVersion(v)),
    }
}

/// Splits a v2 input into its body and (when present) the five per-section
/// checksums of the trailing footer. Footer-less files pass through whole.
fn split_footer(data: &[u8]) -> (&[u8], Option<[u64; 5]>) {
    if data.len() < FOOTER_LEN || !data.ends_with(FOOTER_MAGIC) {
        return (data, None);
    }
    let body_len = data.len() - FOOTER_LEN;
    let mut crcs = [0u64; 5];
    for (i, crc) in crcs.iter_mut().enumerate() {
        let at = body_len + i * 8;
        *crc = u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
    }
    (&data[..body_len], Some(crcs))
}

fn decode_flat_v2(data: &[u8]) -> Result<FlatIndex, CodecError> {
    let (body, footer) = split_footer(data);
    let mut pos = 8usize; // magic + version, validated by the caller
    let read_u32 = |pos: &mut usize| -> Result<u32, CodecError> {
        let end = pos.checked_add(4).ok_or(CodecError::Truncated)?;
        let bytes = body.get(*pos..end).ok_or(CodecError::Truncated)?;
        *pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    };
    let read_u64 = |pos: &mut usize| -> Result<u64, CodecError> {
        let end = pos.checked_add(8).ok_or(CodecError::Truncated)?;
        let bytes = body.get(*pos..end).ok_or(CodecError::Truncated)?;
        *pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    };
    let align8 = |pos: &mut usize| -> Result<(), CodecError> {
        let aligned = pos.checked_add(7).ok_or(CodecError::Truncated)? & !7;
        if aligned > body.len() {
            return Err(CodecError::Truncated);
        }
        *pos = aligned;
        Ok(())
    };
    let _flags = read_u32(&mut pos)?;
    let n = read_u64(&mut pos)? as usize;
    if body.len().saturating_sub(pos) < n * 4 {
        return Err(CodecError::Truncated);
    }
    let mut vertex_at = Vec::with_capacity(n);
    for _ in 0..n {
        vertex_at.push(read_u32(&mut pos)?);
    }
    align8(&mut pos)?;
    let mut ends = [0usize; 5];
    ends[0] = pos;
    let read_u32_col = |pos: &mut usize| -> Result<Vec<u32>, CodecError> {
        let len = read_u64(pos)? as usize;
        if body.len().saturating_sub(*pos) < len * 4 {
            return Err(CodecError::Truncated);
        }
        let mut col = Vec::with_capacity(len);
        for _ in 0..len {
            col.push(read_u32(pos)?);
        }
        align8(pos)?;
        Ok(col)
    };
    let offsets = read_u32_col(&mut pos)?;
    ends[1] = pos;
    let hubs = read_u32_col(&mut pos)?;
    ends[2] = pos;
    let dists = read_u32_col(&mut pos)?;
    ends[3] = pos;
    let counts_len = read_u64(&mut pos)? as usize;
    if body.len().saturating_sub(pos) < counts_len * 8 {
        return Err(CodecError::Truncated);
    }
    let mut counts: Vec<Count> = Vec::with_capacity(counts_len);
    for _ in 0..counts_len {
        counts.push(read_u64(&mut pos)?);
    }
    ends[4] = pos;
    // Bytes past the counts section must be a valid footer (split off
    // above). Anything else means the file was damaged near its end.
    if pos != body.len() {
        return Err(CodecError::Corrupt("footer"));
    }
    // Verify every section checksum before trusting any decoded value.
    if let Some(crcs) = footer {
        let mut start = 0usize;
        for (i, &end) in ends.iter().enumerate() {
            if crc64(&body[start..end]) != crcs[i] {
                return Err(CodecError::Corrupt(SECTION_NAMES[i]));
            }
            start = end;
        }
    }
    {
        let mut seen = vec![false; n];
        for &v in &vertex_at {
            if v as usize >= n || seen[v as usize] {
                return Err(CodecError::BadRankMap);
            }
            seen[v as usize] = true;
        }
    }
    if offsets.len() != n + 1 {
        return Err(CodecError::BadColumns);
    }
    let cols = crate::flat::FlatColumns::from_raw(offsets, hubs, dists, counts)
        .map_err(|_| CodecError::BadColumns)?;
    let ranks = RankMap::from_rank_order(&vertex_at, OrderingStrategy::Identity);
    Ok(FlatIndex::from_parts(cols, ranks))
}

/// Writes an index to a file (v1, the compact interchange form).
pub fn save_index<P: AsRef<std::path::Path>>(index: &SpcIndex, path: P) -> std::io::Result<()> {
    std::fs::write(path, encode_index(index))
}

/// Loads an index from a file; accepts v1 and v2 inputs.
pub fn load_index<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<SpcIndex> {
    let data = std::fs::read(path)?;
    decode_index(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes a flat snapshot to a file in the v2 columnar layout.
pub fn save_flat<P: AsRef<std::path::Path>>(flat: &FlatIndex, path: P) -> std::io::Result<()> {
    std::fs::write(path, encode_flat(flat))
}

/// Loads a flat snapshot from a file; accepts v1 and v2 inputs.
pub fn load_flat<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<FlatIndex> {
    let data = std::fs::read(path)?;
    decode_flat(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::query::spc_query;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_packed() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index(&index);
        let back = decode_index(&bytes).unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(spc_query(&index, s, t), spc_query(&back, s, t));
            }
        }
        back.check_invariants().unwrap();
        // Packed mode: 8 bytes per entry.
        let expected = 20 + 12 * 4 + 12 * 4 + index.num_entries() * 8;
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn round_trip_wide_fallback() {
        let g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let big = LabelEntry::new(index.rank(VertexId(0)), 1, u64::MAX / 3);
        index.label_set_mut(VertexId(11)).upsert(big);
        let bytes = encode_index(&index);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(
            back.label_of(VertexId(11), VertexId(0)).unwrap().count,
            u64::MAX / 3
        );
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert_eq!(decode_index(b"nope"), Err(CodecError::Truncated));
        let mut bad = b"XXXX".to_vec();
        bad.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_index(&bad), Err(CodecError::BadMagic));
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index(&index);
        assert_eq!(
            decode_index(&bytes[..bytes.len() - 3]),
            Err(CodecError::Truncated)
        );
        let mut bad_version = bytes.to_vec();
        bad_version[4] = 99;
        assert_eq!(decode_index(&bad_version), Err(CodecError::BadVersion(99)));
        // Corrupt permutation: duplicate rank entry.
        let mut bad_perm = bytes.to_vec();
        let dup: [u8; 4] = bad_perm[24..28].try_into().unwrap();
        bad_perm[20..24].copy_from_slice(&dup);
        assert_eq!(decode_index(&bad_perm), Err(CodecError::BadRankMap));
    }

    #[test]
    fn empty_index_round_trip() {
        let g = dspc_graph::UndirectedGraph::new();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index(&index);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back.num_vertices(), 0);
        assert_eq!(back.num_entries(), 0);
    }

    #[test]
    fn single_vertex_round_trip() {
        let g = dspc_graph::UndirectedGraph::with_vertices(1);
        let index = build_index(&g, OrderingStrategy::Degree);
        let back = decode_index(&encode_index(&index)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(
            spc_query(&back, VertexId(0), VertexId(0)).as_option(),
            Some((0, 1))
        );
    }

    /// Equality up to the `OrderingStrategy` provenance tag, which the
    /// file format does not carry (the explicit permutation does): same
    /// columns, same rank order.
    fn assert_flat_equiv(a: &FlatIndex, b: &FlatIndex) {
        assert_eq!(a.columns(), b.columns());
        assert_eq!(a.num_vertices(), b.num_vertices());
        for r in 0..a.num_vertices() as u32 {
            assert_eq!(a.ranks().vertex(Rank(r)), b.ranks().vertex(Rank(r)));
        }
    }

    /// Live-index counterpart of [`assert_flat_equiv`]: identical label
    /// sets and rank order, provenance tag ignored.
    fn assert_index_equiv(a: &SpcIndex, b: &SpcIndex) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        for v in 0..a.num_vertices() as u32 {
            let v = VertexId(v);
            assert_eq!(a.label_set(v), b.label_set(v));
            assert_eq!(a.rank(v), b.rank(v));
        }
    }

    #[test]
    fn v2_round_trips_both_representations() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi_gnm(70, 180, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&index);

        let bytes = encode_flat(&flat);
        // Flat → flat: exact columns + rank order.
        assert_flat_equiv(&decode_flat(&bytes).unwrap(), &flat);
        // Flat → live: identical labels to the original index.
        let live = decode_index(&bytes).unwrap();
        assert_index_equiv(&live, &index);
        live.check_invariants().unwrap();
        // encode_index_v2 is freeze + encode.
        assert_eq!(encode_index_v2(&index), bytes);
        // v1 input also decodes into a flat snapshot.
        assert_flat_equiv(&decode_flat(&encode_index(&index)).unwrap(), &flat);
    }

    #[test]
    fn v2_sections_are_aligned() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index_v2(&index);
        assert_eq!(bytes.len() % 8, 0);
        // Header: 4 magic + 4 version + 4 flags + 8 n + 12 × 4 perm = 68,
        // padded to 72; every section start is then 8-aligned by layout.
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
        let off_len = u64::from_le_bytes(bytes[72..80].try_into().unwrap());
        assert_eq!(off_len, 13); // n + 1 offsets
    }

    #[test]
    fn v2_corruption_rejected() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index_v2(&index);
        // Cutting into the footer marker leaves trailing bytes that are not
        // a valid footer.
        assert_eq!(
            decode_flat(&bytes[..bytes.len() - 5]),
            Err(CodecError::Corrupt("footer"))
        );
        // Damaged offsets column: the section checksum trips before the
        // (now nonsensical) values are ever interpreted.
        let mut bad = bytes.to_vec();
        bad[80..84].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_flat(&bad), Err(CodecError::Corrupt("offsets")));
        // Duplicate rank permutation entry: caught by the header checksum.
        let mut bad_perm = bytes.to_vec();
        let dup: [u8; 4] = bad_perm[24..28].try_into().unwrap();
        bad_perm[20..24].copy_from_slice(&dup);
        assert_eq!(decode_flat(&bad_perm), Err(CodecError::Corrupt("header")));
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value for the standard "123456789" input.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn footer_less_v2_still_decodes() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&index);
        let bytes = encode_flat(&flat);
        // A pre-footer v2 file is exactly today's encoding minus the footer.
        let legacy = &bytes[..bytes.len() - FOOTER_LEN];
        assert_flat_equiv(&decode_flat(legacy).unwrap(), &flat);
        // Without a footer, logical validation still runs: a duplicate
        // permutation entry is caught the old way.
        let mut bad_perm = legacy.to_vec();
        let dup: [u8; 4] = bad_perm[24..28].try_into().unwrap();
        bad_perm[20..24].copy_from_slice(&dup);
        assert_eq!(decode_flat(&bad_perm), Err(CodecError::BadRankMap));
    }

    #[test]
    fn flat_file_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnm(50, 120, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&index);
        let dir = std::env::temp_dir().join("dspc_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.dspc2");
        save_flat(&flat, &path).unwrap();
        assert_flat_equiv(&load_flat(&path).unwrap(), &flat);
        // load_index accepts the v2 file too.
        assert_index_equiv(&load_index(&path).unwrap(), &index);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(60, 150, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let dir = std::env::temp_dir().join("dspc_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.dspc");
        save_index(&index, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(index.num_entries(), back.num_entries());
        for s in g.vertices().take(20) {
            for t in g.vertices().take(20) {
                assert_eq!(spc_query(&index, s, t), spc_query(&back, s, t));
            }
        }
        std::fs::remove_file(path).ok();
    }
}
