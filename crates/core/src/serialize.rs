//! Binary serialization of the SPC-Index.
//!
//! The on-disk format mirrors the paper's storage layout (§4.1): one 64-bit
//! word per label entry — 25-bit hub, 10-bit distance, 29-bit count — when
//! every entry fits those fields, with a transparent fallback to a wide
//! 16-byte encoding for graphs whose counts or distances overflow the
//! packed widths.
//!
//! Layout (little endian):
//!
//! ```text
//! magic  "DSPC"            4 bytes
//! version u32              currently 1
//! flags   u32              bit 0: 1 = packed entries, 0 = wide
//! n       u64              vertex/id-space size
//! vertex_at[n] u32         rank → vertex id (the total order)
//! for each vertex 0..n:
//!   len   u32
//!   len × entry            8 bytes packed | 16 bytes wide (hub, dist, count)
//! ```

use crate::index::SpcIndex;
use crate::label::{packed, LabelEntry, LabelSet, Rank};
use crate::order::{OrderingStrategy, RankMap};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dspc_graph::VertexId;

const MAGIC: &[u8; 4] = b"DSPC";
const VERSION: u32 = 1;
const FLAG_PACKED: u32 = 1;

/// Serialization/deserialization failures.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input does not start with the `DSPC` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended prematurely or lengths are inconsistent.
    Truncated,
    /// The rank permutation is invalid.
    BadRankMap,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a DSPC index (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported DSPC index version {v}"),
            CodecError::Truncated => write!(f, "truncated DSPC index"),
            CodecError::BadRankMap => write!(f, "corrupt rank permutation"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes `index` to bytes. Any hub/distance/count exceeding the packed
/// field widths forces the wide encoding so that no information is lost.
pub fn encode_index(index: &SpcIndex) -> Bytes {
    let n = index.num_vertices();
    let packed_ok = (0..n).all(|v| {
        index
            .label_set(VertexId(v as u32))
            .entries()
            .iter()
            .all(|e| {
                e.hub.0 <= packed::MAX_HUB
                    && e.dist <= packed::MAX_DIST
                    && e.count <= packed::MAX_COUNT
            })
    });
    let mut buf = BytesMut::with_capacity(20 + n * 8 + index.num_entries() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(if packed_ok { FLAG_PACKED } else { 0 });
    buf.put_u64_le(n as u64);
    for r in 0..n {
        buf.put_u32_le(index.vertex(Rank(r as u32)).0);
    }
    for v in 0..n {
        let ls = index.label_set(VertexId(v as u32));
        buf.put_u32_le(ls.len() as u32);
        for e in ls.entries() {
            if packed_ok {
                buf.put_u64_le(packed::pack(*e).expect("checked packable").0);
            } else {
                buf.put_u32_le(e.hub.0);
                buf.put_u32_le(e.dist);
                buf.put_u64_le(e.count);
            }
        }
    }
    buf.freeze()
}

/// Deserializes an index previously produced by [`encode_index`]. The
/// explicit rank permutation stored in the file is restored exactly.
pub fn decode_index(mut data: &[u8]) -> Result<SpcIndex, CodecError> {
    if data.remaining() < 20 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let flags = data.get_u32_le();
    let is_packed = flags & FLAG_PACKED != 0;
    let n = data.get_u64_le() as usize;
    if data.remaining() < n * 4 {
        return Err(CodecError::Truncated);
    }
    let mut vertex_at = Vec::with_capacity(n);
    for _ in 0..n {
        vertex_at.push(data.get_u32_le());
    }
    {
        let mut seen = vec![false; n];
        for &v in &vertex_at {
            if v as usize >= n || seen[v as usize] {
                return Err(CodecError::BadRankMap);
            }
            seen[v as usize] = true;
        }
    }
    let ranks = RankMap::from_rank_order(&vertex_at, OrderingStrategy::Identity);
    let mut index = SpcIndex::self_labeled(ranks);
    for v in 0..n {
        if data.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let len = data.get_u32_le() as usize;
        let entry_size = if is_packed { 8 } else { 16 };
        if data.remaining() < len * entry_size {
            return Err(CodecError::Truncated);
        }
        let mut restored = LabelSet::new();
        for _ in 0..len {
            let e = if is_packed {
                packed::unpack(packed::PackedLabel(data.get_u64_le()))
            } else {
                let hub = Rank(data.get_u32_le());
                let dist = data.get_u32_le();
                let count = data.get_u64_le();
                LabelEntry { hub, dist, count }
            };
            restored.upsert(e);
        }
        *index.label_set_mut(VertexId(v as u32)) = restored;
    }
    Ok(index)
}

/// Writes an index to a file.
pub fn save_index<P: AsRef<std::path::Path>>(index: &SpcIndex, path: P) -> std::io::Result<()> {
    std::fs::write(path, encode_index(index))
}

/// Loads an index from a file.
pub fn load_index<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<SpcIndex> {
    let data = std::fs::read(path)?;
    decode_index(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::query::spc_query;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_packed() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index(&index);
        let back = decode_index(&bytes).unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(spc_query(&index, s, t), spc_query(&back, s, t));
            }
        }
        back.check_invariants().unwrap();
        // Packed mode: 8 bytes per entry.
        let expected = 20 + 12 * 4 + 12 * 4 + index.num_entries() * 8;
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn round_trip_wide_fallback() {
        let g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Degree);
        let big = LabelEntry::new(index.rank(VertexId(0)), 1, u64::MAX / 3);
        index.label_set_mut(VertexId(11)).upsert(big);
        let bytes = encode_index(&index);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(
            back.label_of(VertexId(11), VertexId(0)).unwrap().count,
            u64::MAX / 3
        );
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert_eq!(decode_index(b"nope"), Err(CodecError::Truncated));
        let mut bad = b"XXXX".to_vec();
        bad.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_index(&bad), Err(CodecError::BadMagic));
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index(&index);
        assert_eq!(
            decode_index(&bytes[..bytes.len() - 3]),
            Err(CodecError::Truncated)
        );
        let mut bad_version = bytes.to_vec();
        bad_version[4] = 99;
        assert_eq!(decode_index(&bad_version), Err(CodecError::BadVersion(99)));
        // Corrupt permutation: duplicate rank entry.
        let mut bad_perm = bytes.to_vec();
        let dup: [u8; 4] = bad_perm[24..28].try_into().unwrap();
        bad_perm[20..24].copy_from_slice(&dup);
        assert_eq!(decode_index(&bad_perm), Err(CodecError::BadRankMap));
    }

    #[test]
    fn empty_index_round_trip() {
        let g = dspc_graph::UndirectedGraph::new();
        let index = build_index(&g, OrderingStrategy::Degree);
        let bytes = encode_index(&index);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back.num_vertices(), 0);
        assert_eq!(back.num_entries(), 0);
    }

    #[test]
    fn single_vertex_round_trip() {
        let g = dspc_graph::UndirectedGraph::with_vertices(1);
        let index = build_index(&g, OrderingStrategy::Degree);
        let back = decode_index(&encode_index(&index)).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(
            spc_query(&back, VertexId(0), VertexId(0)).as_option(),
            Some((0, 1))
        );
    }

    #[test]
    fn file_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(60, 150, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let dir = std::env::temp_dir().join("dspc_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.dspc");
        save_index(&index, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(index.num_entries(), back.num_entries());
        for s in g.vertices().take(20) {
            for t in g.vertices().take(20) {
                assert_eq!(spc_query(&index, s, t), spc_query(&back, s, t));
            }
        }
        std::fs::remove_file(path).ok();
    }
}
