//! HP-SPC — hub-pushing construction of the SPC-Index (§2.2, following
//! Zhang & Yu \[30\]).
//!
//! Vertices are processed in descending rank order. Each hub `h` runs a
//! counting BFS inside `G_h` — the subgraph induced by vertices ranked no
//! higher than `h` — and a label `(h, D[w], C[w])` is pushed into `L(w)` for
//! every vertex `w` the BFS reaches *unless* the partial index already
//! certifies a strictly shorter `h`–`w` distance.
//!
//! The pruning is **strict** (`query(h, w) < D[w]`), unlike distance-PLL's
//! `<=`: when the existing index ties the BFS distance, the tying paths run
//! through higher-ranked hubs while the BFS paths live entirely inside
//! `G_h` and have `h` as their highest-ranked vertex — those paths are
//! counted nowhere else, so the label must still be emitted (it becomes one
//! of the paper's *non-canonical* labels, e.g. `(v2, 2, 1) ∈ L(v8)` in
//! Table 2).

use crate::index::SpcIndex;
use crate::label::{Count, LabelEntry, Rank, INF_DIST};
use crate::order::{OrderingStrategy, RankMap};
use crate::query::HubProbe;
use dspc_graph::{UndirectedGraph, VertexId};

/// Reusable HP-SPC construction engine.
///
/// Keeping the engine around lets the reconstruction baseline amortize its
/// workspace allocations across repeated rebuilds, which is only fair to
/// the baseline the dynamic algorithms are compared against.
#[derive(Debug)]
pub struct HpSpcBuilder {
    dist: Vec<u32>,
    count: Vec<Count>,
    queue: Vec<u32>,
    touched: Vec<u32>,
    probe: HubProbe,
}

impl HpSpcBuilder {
    /// Creates a builder for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        HpSpcBuilder {
            dist: vec![INF_DIST; capacity],
            count: vec![0; capacity],
            queue: Vec::new(),
            touched: Vec::new(),
            probe: HubProbe::new(capacity),
        }
    }

    fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, INF_DIST);
            self.count.resize(capacity, 0);
        }
        self.probe.ensure_capacity(capacity);
    }

    fn reset_workspace(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF_DIST;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Builds the SPC-Index of `g` under a freshly computed ordering.
    pub fn build(&mut self, g: &UndirectedGraph, strategy: OrderingStrategy) -> SpcIndex {
        let ranks = RankMap::build(g, strategy);
        self.build_with_ranks(g, ranks)
    }

    /// Builds the SPC-Index of `g` under a given ordering — the
    /// reconstruction baseline reuses the maintained index's ordering so
    /// that query-equivalence comparisons are label-for-label meaningful.
    pub fn build_with_ranks(&mut self, g: &UndirectedGraph, ranks: RankMap) -> SpcIndex {
        let cap = g.capacity();
        assert_eq!(ranks.len(), cap, "rank map must cover the graph id space");
        self.ensure_capacity(cap);
        let mut index = SpcIndex::self_labeled(ranks);
        // Strip the pre-seeded self labels: HP-SPC emits every label —
        // including self labels — in descending hub-rank order so the O(1)
        // append fast path applies.
        for v in 0..cap {
            index.label_set_mut(VertexId(v as u32)).clear_all();
        }
        for r in 0..cap as u32 {
            let h = index.vertex(Rank(r));
            if h.index() >= cap || !g.contains_vertex(h) {
                continue;
            }
            self.push_hub(g, &mut index, h);
        }
        // Deleted vertices never ran a BFS; give them a bare self label so
        // the structural invariants hold uniformly.
        for v in 0..cap {
            let vid = VertexId(v as u32);
            if index.label_set(vid).is_empty() {
                let rank = index.rank(vid);
                index
                    .label_set_mut(vid)
                    .push_descending(LabelEntry::new(rank, 0, 1));
            }
        }
        index
    }

    /// Runs the pruned counting BFS rooted at hub `h` (one iteration of
    /// HP-SPC's outer loop), pushing labels into `index`.
    fn push_hub(&mut self, g: &UndirectedGraph, index: &mut SpcIndex, h: VertexId) {
        let hr = index.rank(h);
        self.reset_workspace();
        self.probe.load(index, h);
        self.dist[h.index()] = 0;
        self.count[h.index()] = 1;
        self.touched.push(h.0);
        self.queue.push(h.0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let dv = self.dist[v as usize];
            // Prune: the partial index (hubs ranked above h) certifies a
            // strictly shorter path, so no shortest h–v path stays within
            // G_h; neither v nor anything behind it needs an h-label.
            let q = self.probe.query(index.label_set(VertexId(v)));
            if q.dist < dv {
                continue;
            }
            index
                .label_set_mut(VertexId(v))
                .push_descending(LabelEntry::new(hr, dv, self.count[v as usize]));
            let cv = self.count[v as usize];
            for &w in g.neighbors(VertexId(v)) {
                // Rank pruning: stay inside G_h (strictly lower-ranked
                // vertices; h itself is already settled).
                if index.rank(VertexId(w)) <= hr {
                    continue;
                }
                let dw = self.dist[w as usize];
                if dw == INF_DIST {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push(w);
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
    }
}

/// One-shot convenience wrapper: builds the SPC-Index of `g`.
pub fn build_index(g: &UndirectedGraph, strategy: OrderingStrategy) -> SpcIndex {
    HpSpcBuilder::new(g.capacity()).build(g, strategy)
}

/// One-shot build under an existing ordering (the reconstruction baseline).
pub fn rebuild_index(g: &UndirectedGraph, ranks: RankMap) -> SpcIndex {
    HpSpcBuilder::new(g.capacity()).build_with_ranks(g, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::spc_query;
    use dspc_graph::generators::classic::*;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::*;
    use dspc_graph::traversal::bfs::BfsCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_bfs(g: &UndirectedGraph, index: &SpcIndex) {
        let mut bfs = BfsCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                let expect = bfs.count(g, s, t);
                let got = spc_query(index, s, t).as_option();
                assert_eq!(got, expect, "pair ({s:?}, {t:?})");
            }
        }
    }

    #[test]
    fn figure2_reproduces_table2_exactly() {
        // Under the paper's identity ordering the built index must equal
        // Table 2 label for label.
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Identity);
        index.check_invariants().unwrap();
        let expected = crate::query::tests::table2_index();
        for v in 0..12u32 {
            assert_eq!(
                index.label_set(VertexId(v)).entries(),
                expected.label_set(VertexId(v)).entries(),
                "L(v{v})"
            );
        }
    }

    #[test]
    fn classics_match_bfs() {
        for g in [
            path_graph(12),
            cycle_graph(9),
            star_graph(8),
            complete_graph(6),
            grid_graph(4, 5),
            two_cliques_bridge(4),
        ] {
            for strategy in [
                OrderingStrategy::Degree,
                OrderingStrategy::Identity,
                OrderingStrategy::Random(3),
            ] {
                let index = build_index(&g, strategy);
                index.check_invariants().unwrap();
                assert_matches_bfs(&g, &index);
            }
        }
    }

    #[test]
    fn random_graphs_match_bfs() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..10 {
            let n = rng.gen_range(10..60);
            let m = rng.gen_range(n..4 * n);
            let g = erdos_renyi_gnm(n, m.min(n * (n - 1) / 2), &mut rng);
            let index = build_index(&g, OrderingStrategy::Degree);
            index.check_invariants().unwrap();
            assert_matches_bfs(&g, &index);
        }
    }

    #[test]
    fn disconnected_graph_supported() {
        let mut g = path_graph(6);
        g.delete_edge(VertexId(2), VertexId(3)).unwrap();
        let index = build_index(&g, OrderingStrategy::Degree);
        assert_matches_bfs(&g, &index);
        assert!(!spc_query(&index, VertexId(0), VertexId(5)).is_connected());
    }

    #[test]
    fn deleted_vertices_get_self_labels() {
        let mut g = path_graph(5);
        g.delete_vertex(VertexId(2)).unwrap();
        let index = build_index(&g, OrderingStrategy::Degree);
        index.check_invariants().unwrap();
        assert_matches_bfs(&g, &index);
        assert_eq!(index.label_set(VertexId(2)).len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let g = UndirectedGraph::new();
        let index = build_index(&g, OrderingStrategy::Degree);
        assert_eq!(index.num_entries(), 0);
        let g1 = UndirectedGraph::with_vertices(1);
        let i1 = build_index(&g1, OrderingStrategy::Degree);
        assert_eq!(
            spc_query(&i1, VertexId(0), VertexId(0)).as_option(),
            Some((0, 1))
        );
    }

    #[test]
    fn degree_order_index_not_larger_than_random() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(200, 3, &mut rng);
        let by_degree = build_index(&g, OrderingStrategy::Degree).num_entries();
        let by_random = build_index(&g, OrderingStrategy::Random(1)).num_entries();
        assert!(
            by_degree <= by_random,
            "degree ordering should prune at least as well: {by_degree} vs {by_random}"
        );
    }

    #[test]
    fn builder_reuse_is_clean() {
        let mut b = HpSpcBuilder::new(0);
        let g1 = cycle_graph(7);
        let i1 = b.build(&g1, OrderingStrategy::Degree);
        let g2 = grid_graph(3, 3);
        let i2 = b.build(&g2, OrderingStrategy::Degree);
        assert_matches_bfs(&g1, &i1);
        assert_matches_bfs(&g2, &i2);
    }

    #[test]
    fn rebuild_with_existing_ranks_is_deterministic() {
        let g = figure2_g();
        let ranks = RankMap::build(&g, OrderingStrategy::Degree);
        let a = rebuild_index(&g, ranks.clone());
        let b = rebuild_index(&g, ranks);
        assert_eq!(a, b);
    }
}
