//! Query evaluation: `SpcQUERY` (Algorithm 1), `PreQUERY` (§3.2.2), and the
//! hub-probe fast path used inside the update algorithms.
//!
//! `SpcQUERY(s, t)` merges `L(s)` and `L(t)` by hub rank; among common hubs
//! it keeps the minimum `sd(h,s) + sd(h,t)` and accumulates
//! `Σ σ(h,s)·σ(h,t)` over hubs attaining it (Equations (1)–(2)).
//!
//! `PreQUERY(s, t)` is identical but stops at the first hub not strictly
//! higher-ranked than `s` — it upper-bounds `sd(s, t)` using only hubs the
//! decremental update has already repaired (processing is in descending
//! rank order, so those labels are trustworthy).

use crate::flat::KernelCounters;
use crate::index::SpcIndex;
use crate::label::{Count, LabelEntry, LabelSet, Rank, INF_DIST};
use dspc_graph::VertexId;

/// Result of a shortest-path-counting query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// Shortest distance, [`INF_DIST`] when disconnected.
    pub dist: u32,
    /// Number of shortest paths (0 when disconnected).
    pub count: Count,
}

impl QueryResult {
    /// The "no path" result.
    pub const DISCONNECTED: QueryResult = QueryResult {
        dist: INF_DIST,
        count: 0,
    };

    /// Whether a path exists.
    #[inline]
    pub fn is_connected(&self) -> bool {
        self.dist != INF_DIST
    }

    /// `(dist, count)` as an `Option`, `None` when disconnected.
    #[inline]
    pub fn as_option(&self) -> Option<(u32, Count)> {
        self.is_connected().then_some((self.dist, self.count))
    }
}

/// Core label-merge kernel shared by `SpcQUERY` and `PreQUERY`,
/// monomorphized over whether a rank limit applies. The common no-limit
/// case (`LIMITED = false`) compiles with the limit comparison removed
/// entirely — no per-iteration `Option` test in the hot loop.
#[inline]
fn merge_kernel<const LIMITED: bool>(
    a: &[LabelEntry],
    b: &[LabelEntry],
    limit: Rank,
) -> QueryResult {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = INF_DIST;
    let mut count: Count = 0;
    while i < a.len() && j < b.len() {
        let ha = a[i].hub;
        let hb = b[j].hub;
        if LIMITED && (ha >= limit || hb >= limit) {
            // Sorted ascending: once either side's head reaches the limit,
            // no common hub strictly above the limit remains.
            break;
        }
        if ha == hb {
            let d = a[i].dist.saturating_add(b[j].dist);
            if d < best {
                best = d;
                count = a[i].count.saturating_mul(b[j].count);
            } else if d == best && d != INF_DIST {
                count = count.saturating_add(a[i].count.saturating_mul(b[j].count));
            }
            i += 1;
            j += 1;
        } else if ha < hb {
            i += 1;
        } else {
            j += 1;
        }
    }
    QueryResult { dist: best, count }
}

/// `SpcQUERY(s, t)` — Algorithm 1. Returns the shortest distance and the
/// exact number of shortest paths, or [`QueryResult::DISCONNECTED`].
pub fn spc_query(index: &SpcIndex, s: VertexId, t: VertexId) -> QueryResult {
    merge_kernel::<false>(
        index.label_set(s).entries(),
        index.label_set(t).entries(),
        Rank(0),
    )
}

/// [`spc_query`] with the kernel's deterministic work units tallied into
/// `counters` — same result, plus `merge_steps` (loop iterations) and
/// `common_hubs` (equal-hub hits). The `bench_smoke` query phase compares
/// these against the flat-snapshot kernel's counters.
pub fn spc_query_counted(
    index: &SpcIndex,
    counters: &mut KernelCounters,
    s: VertexId,
    t: VertexId,
) -> QueryResult {
    let a = index.label_set(s).entries();
    let b = index.label_set(t).entries();
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = INF_DIST;
    let mut count: Count = 0;
    let mut steps = 0u64;
    let mut common = 0u64;
    while i < a.len() && j < b.len() {
        let ha = a[i].hub;
        let hb = b[j].hub;
        steps += 1;
        if ha == hb {
            common += 1;
            let d = a[i].dist.saturating_add(b[j].dist);
            if d < best {
                best = d;
                count = a[i].count.saturating_mul(b[j].count);
            } else if d == best && d != INF_DIST {
                count = count.saturating_add(a[i].count.saturating_mul(b[j].count));
            }
            i += 1;
            j += 1;
        } else if ha < hb {
            i += 1;
        } else {
            j += 1;
        }
    }
    counters.queries += 1;
    counters.merge_steps += steps;
    counters.common_hubs += common;
    QueryResult { dist: best, count }
}

/// `PreQUERY(s, t)` — `SpcQUERY` restricted to hubs strictly higher-ranked
/// than `s` (§3.2.2: "the addition of the line *if h = s then break*").
///
/// ```
/// use dspc::{build_index, pre_query, spc_query, OrderingStrategy};
/// use dspc_graph::{UndirectedGraph, VertexId};
///
/// // Path a — b — c; b has the highest degree, hence the highest rank.
/// let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// let idx = build_index(&g, OrderingStrategy::Degree);
/// assert_eq!(spc_query(&idx, VertexId(0), VertexId(2)).as_option(), Some((2, 1)));
///
/// // PreQUERY(s, t) only consults hubs ranked *strictly above* s, so it
/// // upper-bounds sd(s, t). From a it may use hub b: the bound is exact.
/// assert_eq!(pre_query(&idx, VertexId(0), VertexId(1)).as_option(), Some((1, 1)));
/// // From b itself no hub ranks strictly higher — the bound degenerates
/// // to "disconnected" even though b — c are adjacent.
/// assert!(!pre_query(&idx, VertexId(1), VertexId(2)).is_connected());
/// ```
pub fn pre_query(index: &SpcIndex, s: VertexId, t: VertexId) -> QueryResult {
    merge_kernel::<true>(
        index.label_set(s).entries(),
        index.label_set(t).entries(),
        index.rank(s),
    )
}

/// Distance-only convenience wrapper over [`spc_query`].
pub fn dist_query(index: &SpcIndex, s: VertexId, t: VertexId) -> Option<u32> {
    let r = spc_query(index, s, t);
    r.is_connected().then_some(r.dist)
}

/// Fast repeated queries against one pinned hub-side label set.
///
/// Loading `L(h)` scatters its entries into rank-indexed arrays; each
/// subsequent query then scans only `L(v)` — `O(|L(v)|)` instead of
/// `O(|L(h)| + |L(v)|)`. Every BFS step in IncSPC/DecSPC issues such a
/// query, so this is the reproduction's hottest path.
///
/// Loading is sound for the duration of one rooted update BFS: the BFS for
/// hub `h` only rewrites `(h, ·, ·)` entries in *other* vertices' label
/// sets, never the pinned `L(h)` itself (see module tests).
#[derive(Clone, Debug)]
pub struct HubProbe {
    dist: Vec<u32>,
    count: Vec<Count>,
    loaded: Vec<Rank>,
}

impl HubProbe {
    /// Creates a probe for rank spaces up to `capacity`.
    pub fn new(capacity: usize) -> Self {
        HubProbe {
            dist: vec![INF_DIST; capacity],
            count: vec![0; capacity],
            loaded: Vec::new(),
        }
    }

    /// Grows the probe if the rank space expanded.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, INF_DIST);
            self.count.resize(capacity, 0);
        }
    }

    /// Unloads the previous pin.
    pub fn clear(&mut self) {
        for &r in &self.loaded {
            self.dist[r.index()] = INF_DIST;
            self.count[r.index()] = 0;
        }
        self.loaded.clear();
    }

    /// Pins `L(h)`.
    pub fn load(&mut self, index: &SpcIndex, h: VertexId) {
        self.load_labels(index.label_set(h), index.ranks().len());
    }

    /// Pins an arbitrary label set (used by the directed extension, whose
    /// queries pin `L_out(h)` or `L_in(h)` depending on sweep direction).
    pub fn load_labels(&mut self, labels: &LabelSet, rank_capacity: usize) {
        self.ensure_capacity(rank_capacity);
        self.clear();
        for e in labels.entries() {
            self.dist[e.hub.index()] = e.dist;
            self.count[e.hub.index()] = e.count;
            self.loaded.push(e.hub);
        }
    }

    /// `SpcQUERY(h, v)` against the pinned `L(h)`.
    #[inline]
    pub fn query(&self, lv: &LabelSet) -> QueryResult {
        self.query_limited(lv, None)
    }

    /// `PreQUERY(h, v)` against the pinned `L(h)`: only hubs with rank
    /// strictly above `limit` participate.
    #[inline]
    pub fn pre_query(&self, lv: &LabelSet, limit: Rank) -> QueryResult {
        self.query_limited(lv, Some(limit))
    }

    #[inline]
    fn query_limited(&self, lv: &LabelSet, limit: Option<Rank>) -> QueryResult {
        let mut best = INF_DIST;
        let mut count: Count = 0;
        for e in lv.entries() {
            if let Some(lim) = limit {
                if e.hub >= lim {
                    break; // sorted ascending — nothing below can qualify
                }
            }
            let hd = self.dist[e.hub.index()];
            if hd == INF_DIST {
                continue;
            }
            let d = hd.saturating_add(e.dist);
            if d < best {
                best = d;
                count = self.count[e.hub.index()].saturating_mul(e.count);
            } else if d == best && d != INF_DIST {
                count = count.saturating_add(self.count[e.hub.index()].saturating_mul(e.count));
            }
        }
        QueryResult { dist: best, count }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::index::SpcIndex;
    use crate::label::LabelEntry;
    use crate::order::{OrderingStrategy, RankMap};
    use dspc_graph::generators::paper::figure2_g;

    /// Builds the paper's Table 2 index by hand (identity ordering matches
    /// the paper's `v0 ≤ v1 ≤ … ≤ v11`).
    pub(crate) fn table2_index() -> SpcIndex {
        let g = figure2_g();
        let ranks = RankMap::build(&g, OrderingStrategy::Identity);
        let mut idx = SpcIndex::self_labeled(ranks);
        type Row = (u32, &'static [(u32, u32, u64)]);
        let table: &[Row] = &[
            (1, &[(0, 1, 1)]),
            (2, &[(0, 1, 1), (1, 1, 1)]),
            (3, &[(0, 1, 1), (1, 2, 1), (2, 1, 1)]),
            (4, &[(0, 3, 3), (1, 2, 1), (2, 2, 1), (3, 2, 1)]),
            (5, &[(0, 2, 2), (1, 1, 1), (2, 1, 1), (4, 1, 1)]),
            (6, &[(0, 2, 1), (1, 1, 1), (4, 3, 1)]),
            (7, &[(0, 2, 1), (1, 3, 2), (2, 2, 1), (3, 1, 1), (4, 1, 1)]),
            (8, &[(0, 1, 1), (2, 2, 1), (3, 1, 1)]),
            (
                9,
                &[
                    (0, 4, 4),
                    (1, 3, 2),
                    (2, 3, 1),
                    (3, 3, 1),
                    (4, 1, 1),
                    (6, 2, 1),
                ],
            ),
            (
                10,
                &[
                    (0, 3, 1),
                    (1, 2, 1),
                    (3, 4, 1),
                    (4, 2, 1),
                    (6, 1, 1),
                    (9, 1, 1),
                ],
            ),
            (11, &[(0, 1, 1)]),
        ];
        for &(v, entries) in table {
            for &(h, d, c) in entries {
                idx.label_set_mut(VertexId(v))
                    .upsert(LabelEntry::new(Rank(h), d, c));
            }
        }
        idx.check_invariants().unwrap();
        idx
    }

    #[test]
    fn example_2_1_query() {
        // SPC(v4, v6): common hubs {v0, v1, v4}; H = {v1, v4}; spc = 2.
        let idx = table2_index();
        let r = spc_query(&idx, VertexId(4), VertexId(6));
        assert_eq!(r, QueryResult { dist: 3, count: 2 });
    }

    #[test]
    fn all_pairs_match_bfs_on_table2() {
        use dspc_graph::traversal::bfs::BfsCounter;
        let g = figure2_g();
        let idx = table2_index();
        let mut bfs = BfsCounter::new(g.capacity());
        for s in 0..12u32 {
            for t in 0..12u32 {
                let expect = bfs.count(&g, VertexId(s), VertexId(t));
                let got = spc_query(&idx, VertexId(s), VertexId(t)).as_option();
                assert_eq!(got, expect, "pair (v{s}, v{t})");
            }
        }
    }

    #[test]
    fn self_query_is_zero_one() {
        let idx = table2_index();
        for v in 0..12u32 {
            assert_eq!(
                spc_query(&idx, VertexId(v), VertexId(v)),
                QueryResult { dist: 0, count: 1 }
            );
        }
    }

    #[test]
    fn disconnected_query() {
        let g = dspc_graph::UndirectedGraph::with_vertices(3);
        let idx = SpcIndex::self_labeled(RankMap::build(&g, OrderingStrategy::Identity));
        assert_eq!(
            spc_query(&idx, VertexId(0), VertexId(2)),
            QueryResult::DISCONNECTED
        );
        assert_eq!(dist_query(&idx, VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn pre_query_excludes_own_hub() {
        let idx = table2_index();
        // PreQUERY(v4, v9): hub v4 itself (which gives d=1) is excluded;
        // best via strictly higher hubs: v0: 3+4=7, v1: 2+3=5, v2: 2+3=5,
        // v3: 2+3=5 → d̄ = 5.
        let r = pre_query(&idx, VertexId(4), VertexId(9));
        assert_eq!(r.dist, 5);
        // Full query sees hub v4: d = 1.
        assert_eq!(spc_query(&idx, VertexId(4), VertexId(9)).dist, 1);
    }

    #[test]
    fn pre_query_of_highest_ranked_vertex_is_disconnected() {
        let idx = table2_index();
        // v0 has the highest rank: no hub ranks strictly above it.
        assert_eq!(
            pre_query(&idx, VertexId(0), VertexId(5)),
            QueryResult::DISCONNECTED
        );
    }

    #[test]
    fn probe_matches_merge_query() {
        let idx = table2_index();
        let mut probe = HubProbe::new(idx.ranks().len());
        for h in 0..12u32 {
            probe.load(&idx, VertexId(h));
            for v in 0..12u32 {
                assert_eq!(
                    probe.query(idx.label_set(VertexId(v))),
                    spc_query(&idx, VertexId(h), VertexId(v)),
                    "h=v{h}, v=v{v}"
                );
                assert_eq!(
                    probe.pre_query(idx.label_set(VertexId(v)), idx.rank(VertexId(h))),
                    pre_query(&idx, VertexId(h), VertexId(v)),
                    "pre h=v{h}, v=v{v}"
                );
            }
        }
    }

    #[test]
    fn probe_reload_clears_previous_hub() {
        let idx = table2_index();
        let mut probe = HubProbe::new(idx.ranks().len());
        probe.load(&idx, VertexId(0));
        let with_v0 = probe.query(idx.label_set(VertexId(9)));
        probe.load(&idx, VertexId(11));
        let with_v11 = probe.query(idx.label_set(VertexId(9)));
        assert_ne!(with_v0, with_v11);
        assert_eq!(with_v11.dist, 1 + 4); // via common hub v0 only
    }
}
