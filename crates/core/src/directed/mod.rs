//! Directed SPC-Index — the Appendix C.1 extension.
//!
//! Each vertex carries two label sets: `L_in(v)` covers shortest paths
//! *into* `v` (an entry `(h, d, c)` certifies `c` shortest `h → v` paths of
//! length `d` on which `h` is the highest-ranked vertex) and `L_out(v)`
//! covers shortest paths *out of* `v`. A query `SPC(s → t)` merges
//! `L_out(s)` with `L_in(t)`.
//!
//! Construction runs two rank-pruned BFSs per hub — forward (emitting
//! `L_in` labels of reached vertices) and backward (emitting `L_out`) — and
//! the update algorithms mirror the undirected ones with directions
//! attached (see [`update`]).

pub mod build;
pub mod update;

pub use build::{build_directed_index, DirectedBuilder};
pub use update::{DirectedDecSpc, DirectedIncSpc};

use crate::dynamic::{UpdateKind, UpdateStats};
use crate::engine::EdgeCoalescer;
use crate::label::{Count, LabelEntry, LabelSet, Rank, INF_DIST};
use crate::order::OrderingStrategy;
use crate::parallel::{AgendaScope, MaintenanceOptions, MaintenanceThreads};
use crate::query::QueryResult;
use dspc_graph::{DirectedGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Which label family a sweep writes into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// `L_in` — labels describing paths hub → vertex.
    In,
    /// `L_out` — labels describing paths vertex → hub.
    Out,
}

impl Side {
    /// The other family (`L_in` ↔ `L_out`).
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::In => Side::Out,
            Side::Out => Side::In,
        }
    }
}

/// Bijection between vertex ids and ranks for directed graphs (degree =
/// in + out, descending; ties by id).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectedRankMap {
    rank_of: Vec<u32>,
    vertex_at: Vec<u32>,
}

impl DirectedRankMap {
    /// Computes the order of `g`'s id space.
    pub fn build(g: &DirectedGraph, strategy: OrderingStrategy) -> Self {
        let n = g.capacity();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        match strategy {
            OrderingStrategy::Degree => ids.sort_by_key(|&v| {
                let vid = VertexId(v);
                (std::cmp::Reverse(g.out_degree(vid) + g.in_degree(vid)), v)
            }),
            OrderingStrategy::Identity => {}
            OrderingStrategy::Random(seed) => {
                let key = |v: u32| -> u64 {
                    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15).wrapping_add(v as u64);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    z ^ (z >> 31)
                };
                ids.sort_by_key(|&v| (key(v), v));
            }
        }
        let mut rank_of = vec![0u32; n];
        for (r, &v) in ids.iter().enumerate() {
            rank_of[v as usize] = r as u32;
        }
        DirectedRankMap {
            rank_of,
            vertex_at: ids,
        }
    }

    /// Rank of `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        Rank(self.rank_of[v.index()])
    }

    /// Vertex at rank `r`.
    #[inline]
    pub fn vertex(&self, r: Rank) -> VertexId {
        VertexId(self.vertex_at[r.index()])
    }

    /// Rank-space size.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertex_at.len()
    }

    /// Builds a map from an explicit rank order (`order[r]` = vertex id at
    /// rank `r`); must be a permutation of `0..order.len()`.
    pub fn from_rank_order(order: &[u32]) -> Self {
        let n = order.len();
        let mut rank_of = vec![u32::MAX; n];
        for (r, &v) in order.iter().enumerate() {
            assert!(
                (v as usize) < n && rank_of[v as usize] == u32::MAX,
                "not a permutation"
            );
            rank_of[v as usize] = r as u32;
        }
        DirectedRankMap {
            rank_of,
            vertex_at: order.to_vec(),
        }
    }

    /// Swaps the vertices at ranks `r` and `r + 1` (see
    /// [`crate::order::RankMap::swap_adjacent`]).
    pub fn swap_adjacent(&mut self, r: Rank) {
        let hi = r.index();
        let lo = hi + 1;
        assert!(lo < self.vertex_at.len(), "swap_adjacent out of range");
        self.vertex_at.swap(hi, lo);
        self.rank_of[self.vertex_at[hi] as usize] = hi as u32;
        self.rank_of[self.vertex_at[lo] as usize] = lo as u32;
    }

    /// Appends a fresh vertex at the lowest rank; `v` must be the next
    /// dense id.
    pub fn append_vertex(&mut self, v: VertexId) -> Rank {
        assert_eq!(v.index(), self.rank_of.len(), "non-dense vertex id");
        let r = Rank(self.vertex_at.len() as u32);
        self.rank_of.push(r.0);
        self.vertex_at.push(v.0);
        r
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertex_at.is_empty()
    }
}

/// The directed SPC-Index: `L_in` and `L_out` per vertex.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DirectedSpcIndex {
    labels_in: Vec<LabelSet>,
    labels_out: Vec<LabelSet>,
    ranks: DirectedRankMap,
}

impl DirectedSpcIndex {
    /// Index with only self labels on both sides.
    pub fn self_labeled(ranks: DirectedRankMap) -> Self {
        let n = ranks.len();
        let mk = |_| {
            (0..n)
                .map(|v| LabelSet::self_only(ranks.rank(VertexId(v as u32))))
                .collect::<Vec<_>>()
        };
        DirectedSpcIndex {
            labels_in: mk(()),
            labels_out: mk(()),
            ranks,
        }
    }

    /// The vertex total order.
    pub fn ranks(&self) -> &DirectedRankMap {
        &self.ranks
    }

    /// Rank of `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.ranks.rank(v)
    }

    /// Vertex at rank `r`.
    #[inline]
    pub fn vertex(&self, r: Rank) -> VertexId {
        self.ranks.vertex(r)
    }

    /// `L_in(v)`.
    #[inline]
    pub fn label_in(&self, v: VertexId) -> &LabelSet {
        &self.labels_in[v.index()]
    }

    /// `L_out(v)`.
    #[inline]
    pub fn label_out(&self, v: VertexId) -> &LabelSet {
        &self.labels_out[v.index()]
    }

    /// Label set for `side` of `v`.
    #[inline]
    pub fn label(&self, side: Side, v: VertexId) -> &LabelSet {
        match side {
            Side::In => &self.labels_in[v.index()],
            Side::Out => &self.labels_out[v.index()],
        }
    }

    /// Mutable label set for `side` of `v`.
    #[inline]
    pub fn label_mut(&mut self, side: Side, v: VertexId) -> &mut LabelSet {
        match side {
            Side::In => &mut self.labels_in[v.index()],
            Side::Out => &mut self.labels_out[v.index()],
        }
    }

    /// Swaps the vertices at ranks `r` and `r + 1` without touching either
    /// label family — the directed twin of
    /// [`crate::index::SpcIndex::swap_adjacent_ranks`]; the caller
    /// ([`crate::reorder`]) purges both ranks' entries around the remap.
    pub fn swap_adjacent_ranks(&mut self, r: Rank) {
        self.ranks.swap_adjacent(r);
    }

    /// Registers a freshly added isolated vertex at the lowest rank with
    /// self labels on both sides; returns its rank.
    pub fn append_vertex(&mut self, v: VertexId) -> Rank {
        let r = self.ranks.append_vertex(v);
        self.labels_in.push(LabelSet::self_only(r));
        self.labels_out.push(LabelSet::self_only(r));
        r
    }

    /// Total entries across both sides.
    pub fn num_entries(&self) -> usize {
        self.labels_in.iter().map(LabelSet::len).sum::<usize>()
            + self.labels_out.iter().map(LabelSet::len).sum::<usize>()
    }

    /// Structural invariants on both sides.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (name, family) in [("L_in", &self.labels_in), ("L_out", &self.labels_out)] {
            for (vi, ls) in family.iter().enumerate() {
                let v = VertexId(vi as u32);
                if !ls.is_sorted_strict() {
                    return Err(format!("{name}({v}) not strictly sorted"));
                }
                let self_rank = self.ranks.rank(v);
                match ls.get(self_rank) {
                    Some(e) if e.dist == 0 && e.count == 1 => {}
                    _ => return Err(format!("{name}({v}) self label missing or malformed")),
                }
                for e in ls.entries() {
                    if e.hub > self_rank {
                        return Err(format!("{name}({v}) hub ranked below owner"));
                    }
                    if e.count == 0 {
                        return Err(format!("{name}({v}) zero-count label"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// `SPC(s → t)`: merge `L_out(s)` with `L_in(t)`.
pub fn directed_spc_query(index: &DirectedSpcIndex, s: VertexId, t: VertexId) -> QueryResult {
    merge_directed(index.label_out(s), index.label_in(t), None)
}

/// `PreQUERY(s → t)`: [`directed_spc_query`] restricted to hubs ranked
/// strictly above `s` — the directed analogue of
/// [`crate::query::pre_query`].
pub fn directed_pre_query(index: &DirectedSpcIndex, s: VertexId, t: VertexId) -> QueryResult {
    merge_directed(index.label_out(s), index.label_in(t), Some(index.rank(s)))
}

fn merge_directed(ls: &LabelSet, lt: &LabelSet, limit: Option<Rank>) -> QueryResult {
    let a = ls.entries();
    let b = lt.entries();
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = INF_DIST;
    let mut count: Count = 0;
    while i < a.len() && j < b.len() {
        let (ha, hb) = (a[i].hub, b[j].hub);
        if let Some(lim) = limit {
            if ha >= lim || hb >= lim {
                break;
            }
        }
        if ha == hb {
            let d = a[i].dist.saturating_add(b[j].dist);
            if d < best {
                best = d;
                count = a[i].count.saturating_mul(b[j].count);
            } else if d == best && d != INF_DIST {
                count = count.saturating_add(a[i].count.saturating_mul(b[j].count));
            }
            i += 1;
            j += 1;
        } else if ha < hb {
            i += 1;
        } else {
            j += 1;
        }
    }
    QueryResult { dist: best, count }
}

/// A directed topological update, for batch application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArcUpdate {
    /// Insert arc `a → b`.
    InsertArc(VertexId, VertexId),
    /// Delete arc `a → b`.
    DeleteArc(VertexId, VertexId),
}

/// Directed facade: a [`DirectedGraph`] and its index kept in lockstep.
#[derive(Debug)]
pub struct DynamicDirectedSpc {
    graph: DirectedGraph,
    index: DirectedSpcIndex,
    inc: DirectedIncSpc,
    dec: DirectedDecSpc,
    maintenance_threads: MaintenanceThreads,
    /// Flat snapshot of the current epoch; dropped on any mutation.
    flat: Option<crate::flat::DirectedFlatIndex>,
}

impl DynamicDirectedSpc {
    /// Builds the index and wraps both.
    pub fn build(graph: DirectedGraph, strategy: OrderingStrategy) -> Self {
        let index = build_directed_index(&graph, strategy);
        let cap = graph.capacity();
        DynamicDirectedSpc {
            graph,
            index,
            inc: DirectedIncSpc::new(cap),
            dec: DirectedDecSpc::new(cap),
            maintenance_threads: MaintenanceThreads::default(),
            flat: None,
        }
    }

    /// The read-optimized flat snapshot of the current epoch (frozen on
    /// first use, reused until the next mutation drops it — same contract
    /// as [`crate::dynamic::DynamicSpc::frozen_queries`]).
    pub fn frozen_queries(&mut self) -> &crate::flat::DirectedFlatIndex {
        self.flat
            .get_or_insert_with(|| crate::flat::DirectedFlatIndex::freeze(&self.index))
    }

    /// Whether a flat snapshot is currently cached.
    pub fn has_frozen_snapshot(&self) -> bool {
        self.flat.is_some()
    }

    /// Sets the worker-thread budget for intra-batch repair
    /// ([`DynamicDirectedSpc::delete_arcs_with`] and the deletion segments
    /// of [`DynamicDirectedSpc::apply_batch`]). Every thread count produces
    /// the same index, queries, and counters.
    pub fn set_maintenance_threads(&mut self, threads: MaintenanceThreads) {
        self.maintenance_threads = threads;
    }

    /// The configured maintenance thread budget.
    pub fn maintenance_threads(&self) -> MaintenanceThreads {
        self.maintenance_threads
    }

    /// The default [`MaintenanceOptions`] this facade applies batches
    /// with; pass a modified copy to
    /// [`DynamicDirectedSpc::apply_batch_with`] /
    /// [`DynamicDirectedSpc::delete_arcs_with`] to override per call.
    pub fn maintenance_options(&self) -> MaintenanceOptions {
        MaintenanceOptions::with_threads(self.maintenance_threads)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DirectedGraph {
        &self.graph
    }

    /// The maintained index.
    pub fn index(&self) -> &DirectedSpcIndex {
        &self.index
    }

    /// `SPC(s → t)` as `Some((sd, spc))`, `None` when unreachable.
    pub fn query(&self, s: VertexId, t: VertexId) -> Option<(u32, Count)> {
        directed_spc_query(&self.index, s, t).as_option()
    }

    /// Inserts arc `a → b` and repairs the index.
    pub fn insert_arc(&mut self, a: VertexId, b: VertexId) -> dspc_graph::Result<UpdateStats> {
        self.graph.insert_arc(a, b)?;
        self.flat = None;
        let c = self.inc.insert_arc(&self.graph, &mut self.index, a, b);
        Ok(UpdateStats::from_counters(UpdateKind::InsertEdge, c))
    }

    /// Deletes arc `a → b` and repairs the index.
    pub fn delete_arc(&mut self, a: VertexId, b: VertexId) -> dspc_graph::Result<UpdateStats> {
        let c = self
            .dec
            .delete_arc(&mut self.graph, &mut self.index, a, b)?;
        self.flat = None;
        Ok(UpdateStats::from_counters(UpdateKind::DeleteEdge, c))
    }

    /// Deletes a *set* of arcs as one epoch. Equivalent to
    /// [`DynamicDirectedSpc::delete_arcs_with`] under this facade's
    /// [`DynamicDirectedSpc::maintenance_options`].
    #[deprecated(note = "use `delete_arcs_with` (same behavior under `maintenance_options()`)")]
    pub fn delete_arcs(
        &mut self,
        arcs: &[(VertexId, VertexId)],
    ) -> dspc_graph::Result<UpdateStats> {
        self.delete_arcs_with(arcs, &self.maintenance_options())
    }

    /// Deletes a *set* of arcs as one epoch through the multi-arc
    /// `SrrSEARCH` repair path ([`DirectedDecSpc::delete_arcs_with`]): one
    /// repair sweep per distinct affected hub per label family, against the
    /// residual graph with the whole set already absent. All arcs are
    /// validated present before the first mutation.
    pub fn delete_arcs_with(
        &mut self,
        arcs: &[(VertexId, VertexId)],
        options: &MaintenanceOptions,
    ) -> dspc_graph::Result<UpdateStats> {
        let c = self
            .dec
            .delete_arcs_with(&mut self.graph, &mut self.index, arcs, options)?;
        self.flat = None;
        Ok(UpdateStats::from_counters(UpdateKind::Batch, c))
    }

    /// Applies `updates` as one epoch: arc operations are deduplicated and
    /// coalesced (insert + delete of the same arc cancels, delete +
    /// re-insert is a topological no-op), the surviving net operations run
    /// through the engine in rank-friendly order (deletions before
    /// insertions, each ordered by the higher-ranked endpoint), and the
    /// aggregated counters come back as one [`UpdateStats`]. Validation
    /// mirrors applying the arcs one by one.
    ///
    /// Equivalent to [`DynamicDirectedSpc::apply_batch_with`] under this
    /// facade's [`DynamicDirectedSpc::maintenance_options`].
    pub fn apply_batch(&mut self, updates: &[ArcUpdate]) -> dspc_graph::Result<UpdateStats> {
        self.apply_batch_with(updates, &self.maintenance_options())
    }

    /// [`DynamicDirectedSpc::apply_batch`] with explicit
    /// [`MaintenanceOptions`]. Under [`AgendaScope::Global`] (the default)
    /// the whole net-deletion set is repaired through ONE agenda; under
    /// [`AgendaScope::PerGroup`] it is split by higher-ranked endpoint
    /// with one agenda per group.
    pub fn apply_batch_with(
        &mut self,
        updates: &[ArcUpdate],
        options: &MaintenanceOptions,
    ) -> dspc_graph::Result<UpdateStats> {
        let mut co: EdgeCoalescer<()> = EdgeCoalescer::new();
        for &u in updates {
            match u {
                ArcUpdate::InsertArc(a, b) => {
                    let graph = &self.graph;
                    crate::engine::check_endpoints(a, b, |v| graph.contains_vertex(v))?;
                    co.fold_insert((a.0, b.0), (), || graph.has_arc(a, b).then_some(()))?;
                }
                ArcUpdate::DeleteArc(a, b) => {
                    let graph = &self.graph;
                    crate::engine::check_endpoints(a, b, |v| graph.contains_vertex(v))?;
                    co.fold_remove((a.0, b.0), || graph.has_arc(a, b).then_some(()))?;
                }
            }
        }
        let index = &self.index;
        let plan = crate::engine::NetPlan::build(co.drain(), |v| index.rank(VertexId(v)));
        let mut total = UpdateStats::empty(UpdateKind::Batch);
        match options.scope {
            AgendaScope::Global => {
                let deletions: Vec<(VertexId, VertexId)> = plan
                    .deletions
                    .iter()
                    .map(|&(a, b)| (VertexId(a), VertexId(b)))
                    .collect();
                if !deletions.is_empty() {
                    total.absorb(&self.delete_arcs_with(&deletions, options)?);
                }
            }
            AgendaScope::PerGroup => {
                for group in plan.deletion_vertex_groups() {
                    total.absorb(&self.delete_arcs_with(&group, options)?);
                }
            }
        }
        for op in plan.into_post_deletion_ops() {
            total.absorb(&match op {
                crate::engine::NetOp::Insert(a, b, ()) => self.insert_arc(a, b)?,
                crate::engine::NetOp::Rewrite(..) => {
                    unreachable!("unit payloads cannot rewrite")
                }
            });
        }
        Ok(total)
    }

    /// Adds an isolated vertex at the lowest rank (O(1) on the index, as in
    /// the undirected case §3).
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.flat = None;
        let r = self.index.append_vertex(v);
        debug_assert_eq!(self.index.vertex(r), v);
        v
    }

    /// Deletes vertex `v` — the incident arcs are removed as one epoch
    /// through the multi-arc repair path (one global agenda instead of a
    /// per-arc DecSPC cascade), then the id is retired.
    pub fn delete_vertex(&mut self, v: VertexId) -> dspc_graph::Result<()> {
        if !self.graph.contains_vertex(v) {
            return Err(dspc_graph::GraphError::UnknownVertex(v));
        }
        let mut arcs: Vec<(VertexId, VertexId)> = self
            .graph
            .out_neighbors(v)
            .iter()
            .map(|&w| (v, VertexId(w)))
            .collect();
        arcs.extend(self.graph.in_neighbors(v).iter().map(|&w| (VertexId(w), v)));
        self.delete_arcs_with(&arcs, &self.maintenance_options())?;
        self.graph.delete_vertex(v)?;
        self.flat = None;
        Ok(())
    }
}

/// Ensures the self label exists on both sides for isolated additions.
pub(crate) fn self_entry(rank: Rank) -> LabelEntry {
    LabelEntry::new(rank, 0, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_map_total_degree() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (2, 1), (1, 3)]);
        let rm = DirectedRankMap::build(&g, OrderingStrategy::Degree);
        // Vertex 1 has total degree 3 → highest rank.
        assert_eq!(rm.vertex(Rank(0)), VertexId(1));
    }

    #[test]
    fn self_labeled_queries() {
        let g = DirectedGraph::with_vertices(3);
        let idx =
            DirectedSpcIndex::self_labeled(DirectedRankMap::build(&g, OrderingStrategy::Identity));
        idx.check_invariants().unwrap();
        assert_eq!(
            directed_spc_query(&idx, VertexId(0), VertexId(0)).as_option(),
            Some((0, 1))
        );
        assert!(!directed_spc_query(&idx, VertexId(0), VertexId(1)).is_connected());
    }
}
