//! Directed IncSPC / DecSPC (Appendix C.1).
//!
//! The undirected algorithms with directions attached:
//!
//! * **Insertion of arc `a → b`.** Affected hubs come from
//!   `L_in(a) ∪ L_out(b)`. A hub `h ∈ L_in(a)` (it tops paths `h → … → a`)
//!   runs a *forward* pruned BFS from `b`, seeded across the new arc,
//!   repairing `L_in` labels downstream. A hub `h ∈ L_out(b)` runs the
//!   mirror-image *backward* BFS from `a`, repairing `L_out` labels
//!   upstream.
//! * **Deletion of arc `a → b`.** `SR_a/R_a` are found by a backward
//!   counting sweep from `a` (vertices with shortest paths `v → a → b`),
//!   classified per Definition 3.10 with in-side hub membership;
//!   `SR_b/R_b` symmetrically by a forward sweep from `b` with out-side
//!   membership. Then hubs in `SR_a` repair `L_in` labels of
//!   `SR_b ∪ R_b` by forward BFS, hubs in `SR_b` repair `L_out` labels of
//!   `SR_a ∪ R_a` by backward BFS, with the same `PreQUERY` pruning and
//!   removal pass as the undirected Algorithm 6.

use super::{DirectedSpcIndex, Side};
use crate::label::{Count, LabelEntry, Rank, INF_DIST};
use crate::query::HubProbe;
use dspc_graph::{DirectedGraph, VertexId};

const MARK_A: u8 = 1;
const MARK_B: u8 = 2;

/// Directed incremental engine.
#[derive(Debug)]
pub struct DirectedIncSpc {
    dist: Vec<u32>,
    count: Vec<Count>,
    queue: Vec<u32>,
    touched: Vec<u32>,
    probe: HubProbe,
}

impl DirectedIncSpc {
    /// Creates an engine for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        DirectedIncSpc {
            dist: vec![INF_DIST; capacity],
            count: vec![0; capacity],
            queue: Vec::new(),
            touched: Vec::new(),
            probe: HubProbe::new(capacity),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF_DIST;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Repairs `index` after arc `a → b` was inserted into `g`.
    pub fn insert_arc(
        &mut self,
        g: &DirectedGraph,
        index: &mut DirectedSpcIndex,
        a: VertexId,
        b: VertexId,
    ) {
        debug_assert!(g.has_arc(a, b));
        let cap = g.capacity();
        if self.dist.len() < cap {
            self.dist.resize(cap, INF_DIST);
            self.count.resize(cap, 0);
        }
        self.probe.ensure_capacity(cap);
        // Snapshot AFF with side flags, merged in descending rank order.
        let mut aff: Vec<(Rank, bool, bool)> = Vec::new();
        {
            let la = index.label_in(a).entries();
            let lb = index.label_out(b).entries();
            let (mut i, mut j) = (0usize, 0usize);
            while i < la.len() || j < lb.len() {
                match (la.get(i), lb.get(j)) {
                    (Some(x), Some(y)) if x.hub == y.hub => {
                        aff.push((x.hub, true, true));
                        i += 1;
                        j += 1;
                    }
                    (Some(x), Some(y)) if x.hub < y.hub => {
                        aff.push((x.hub, true, false));
                        i += 1;
                    }
                    (Some(_), Some(y)) => {
                        aff.push((y.hub, false, true));
                        j += 1;
                    }
                    (Some(x), None) => {
                        aff.push((x.hub, true, false));
                        i += 1;
                    }
                    (None, Some(y)) => {
                        aff.push((y.hub, false, true));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        let rank_a = index.rank(a);
        let rank_b = index.rank(b);
        for (h_rank, from_in_a, from_out_b) in aff {
            let h = index.vertex(h_rank);
            if from_in_a && h_rank <= rank_b {
                // New paths h → … → a → b → …: forward from b, L_in side.
                self.inc_update(g, index, h, a, b, Side::In);
            }
            if from_out_b && h_rank <= rank_a {
                // New paths … → a → b → … → h: backward from a, L_out side.
                self.inc_update(g, index, h, b, a, Side::Out);
            }
        }
    }

    /// One directed `IncUPDATE`: BFS from `vb` seeded from the hub's label
    /// at `va`, repairing `target`-side labels.
    fn inc_update(
        &mut self,
        g: &DirectedGraph,
        index: &mut DirectedSpcIndex,
        h: VertexId,
        va: VertexId,
        vb: VertexId,
        target: Side,
    ) {
        let h_rank = index.rank(h);
        // Seed label lives on the same family as the target side: L_in(a)
        // when repairing L_in, L_out(b) when repairing L_out.
        let Some(seed) = index.label(target, va).get(h_rank).copied() else {
            return;
        };
        let pinned = match target {
            Side::In => Side::Out,
            Side::Out => Side::In,
        };
        self.reset();
        self.probe
            .load_labels(index.label(pinned, h), index.ranks().len());
        self.dist[vb.index()] = seed.dist + 1;
        self.count[vb.index()] = seed.count;
        self.touched.push(vb.0);
        self.queue.push(vb.0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let dv = self.dist[v as usize];
            let q = self.probe.query(index.label(target, VertexId(v)));
            if q.dist < dv {
                continue;
            }
            let cv = self.count[v as usize];
            let ls = index.label_mut(target, VertexId(v));
            match ls.get(h_rank).copied() {
                Some(existing) if existing.dist == dv => {
                    ls.upsert(LabelEntry::new(
                        h_rank,
                        dv,
                        cv.saturating_add(existing.count),
                    ));
                }
                _ => {
                    ls.upsert(LabelEntry::new(h_rank, dv, cv));
                }
            }
            let neighbors = match target {
                Side::In => g.out_neighbors(VertexId(v)),
                Side::Out => g.in_neighbors(VertexId(v)),
            };
            for &w in neighbors {
                if h_rank > index.rank(VertexId(w)) {
                    continue;
                }
                let dw = self.dist[w as usize];
                if dw == INF_DIST {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push(w);
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
    }
}

/// Directed decremental engine.
#[derive(Debug)]
pub struct DirectedDecSpc {
    dist: Vec<u32>,
    count: Vec<Count>,
    queue: Vec<u32>,
    touched: Vec<u32>,
    probe: HubProbe,
    marks: Vec<u8>,
    marked: Vec<u32>,
    updated: Vec<bool>,
}

impl DirectedDecSpc {
    /// Creates an engine for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        DirectedDecSpc {
            dist: vec![INF_DIST; capacity],
            count: vec![0; capacity],
            queue: Vec::new(),
            touched: Vec::new(),
            probe: HubProbe::new(capacity),
            marks: vec![0; capacity],
            marked: Vec::new(),
            updated: vec![false; capacity],
        }
    }

    fn reset_bfs(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF_DIST;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Deletes arc `a → b` from `g` and repairs `index`.
    pub fn delete_arc(
        &mut self,
        g: &mut DirectedGraph,
        index: &mut DirectedSpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> dspc_graph::Result<()> {
        if !g.has_arc(a, b) {
            return Err(dspc_graph::GraphError::MissingEdge(a, b));
        }
        let cap = g.capacity();
        if self.dist.len() < cap {
            self.dist.resize(cap, INF_DIST);
            self.count.resize(cap, 0);
            self.marks.resize(cap, 0);
            self.updated.resize(cap, false);
        }
        self.probe.ensure_capacity(cap);

        // Phase 1 on G_i: senders upstream of a, receivers downstream of b.
        let (sr_a, r_a) = self.srr_side(g, index, a, b, Side::Out);
        let (sr_b, r_b) = self.srr_side(g, index, b, a, Side::In);
        for v in sr_a.iter().chain(&r_a) {
            if self.marks[v.index()] == 0 {
                self.marked.push(v.0);
            }
            self.marks[v.index()] |= MARK_A;
        }
        for v in sr_b.iter().chain(&r_b) {
            if self.marks[v.index()] == 0 {
                self.marked.push(v.0);
            }
            self.marks[v.index()] |= MARK_B;
        }

        g.delete_arc(a, b)?;

        let mut sr: Vec<(Rank, bool)> = sr_a
            .iter()
            .map(|&v| (index.rank(v), true))
            .chain(sr_b.iter().map(|&v| (index.rank(v), false)))
            .collect();
        sr.sort_unstable_by_key(|&(r, _)| r);

        for &(h_rank, upstream) in &sr {
            let h = index.vertex(h_rank);
            if upstream {
                // h tops paths h → … → a → b → …; repair L_in of the
                // downstream side.
                let h_ab = index.label_in(a).contains(h_rank)
                    && index.label_in(b).contains(h_rank);
                self.dec_update(
                    g,
                    index,
                    h,
                    Side::In,
                    MARK_B,
                    h_ab,
                    sr_b.iter().chain(&r_b).copied().collect::<Vec<_>>(),
                );
            } else {
                let h_ab = index.label_out(a).contains(h_rank)
                    && index.label_out(b).contains(h_rank);
                self.dec_update(
                    g,
                    index,
                    h,
                    Side::Out,
                    MARK_A,
                    h_ab,
                    sr_a.iter().chain(&r_a).copied().collect::<Vec<_>>(),
                );
            }
        }

        for &v in &self.marked {
            self.marks[v as usize] = 0;
        }
        self.marked.clear();
        Ok(())
    }

    /// One side of the directed `SrrSEARCH`. `membership_side` selects the
    /// hub-membership family for condition A: upstream senders must be
    /// common *in*-hubs… of which endpoints — see body.
    fn srr_side(
        &mut self,
        g: &DirectedGraph,
        index: &DirectedSpcIndex,
        near: VertexId,
        far: VertexId,
        sweep: Side,
    ) -> (Vec<VertexId>, Vec<VertexId>) {
        let mut sr = Vec::new();
        let mut r = Vec::new();
        self.reset_bfs();
        // sweep == Out: backward BFS from `near == a` over in-arcs, finding
        // v with sd(v, a); classify against query(v → far=b): pin L_in(b),
        // scan L_out(v). Condition A uses in-side membership (v ∈ L_in(a) ∧
        // v ∈ L_in(b)).
        // sweep == In: forward BFS from `near == b`, finding v with
        // sd(b, v); classify against query(far=a → v): pin L_out(a), scan
        // L_in(v); condition A uses out-side membership.
        let (bfs_dir_in_arcs, pin_side, scan_side, member_side) = match sweep {
            Side::Out => (true, Side::In, Side::Out, Side::In),
            Side::In => (false, Side::Out, Side::In, Side::Out),
        };
        self.probe
            .load_labels(index.label(pin_side, far), index.ranks().len());
        self.dist[near.index()] = 0;
        self.count[near.index()] = 1;
        self.touched.push(near.0);
        self.queue.push(near.0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let dv = self.dist[v as usize];
            let q = self.probe.query(index.label(scan_side, VertexId(v)));
            if q.dist == INF_DIST || dv + 1 != q.dist {
                continue;
            }
            let vr = index.rank(VertexId(v));
            let cond_a = index.label(member_side, near).contains(vr)
                && index.label(member_side, far).contains(vr);
            let cond_b = self.count[v as usize] == q.count;
            if cond_a || cond_b {
                sr.push(VertexId(v));
            } else {
                r.push(VertexId(v));
            }
            let cv = self.count[v as usize];
            let neighbors = if bfs_dir_in_arcs {
                g.in_neighbors(VertexId(v))
            } else {
                g.out_neighbors(VertexId(v))
            };
            for &w in neighbors {
                let dw = self.dist[w as usize];
                if dw == INF_DIST {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push(w);
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        (sr, r)
    }

    /// Directed `DecUPDATE` for hub `h`, repairing `target`-side labels of
    /// vertices carrying `opposite_mark`.
    #[allow(clippy::too_many_arguments)]
    fn dec_update(
        &mut self,
        g: &DirectedGraph,
        index: &mut DirectedSpcIndex,
        h: VertexId,
        target: Side,
        opposite_mark: u8,
        h_ab: bool,
        removal_candidates: Vec<VertexId>,
    ) {
        let h_rank = index.rank(h);
        let pinned = match target {
            Side::In => Side::Out,
            Side::Out => Side::In,
        };
        self.reset_bfs();
        self.probe
            .load_labels(index.label(pinned, h), index.ranks().len());
        self.dist[h.index()] = 0;
        self.count[h.index()] = 1;
        self.touched.push(h.0);
        self.queue.push(h.0);
        let mut visited_marked: Vec<u32> = Vec::new();
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let dv = self.dist[v as usize];
            let q = self
                .probe
                .pre_query(index.label(target, VertexId(v)), h_rank);
            if q.dist < dv {
                continue;
            }
            if self.marks[v as usize] & opposite_mark != 0 {
                let cv = self.count[v as usize];
                let ls = index.label_mut(target, VertexId(v));
                match ls.get(h_rank).copied() {
                    Some(existing) if existing.dist == dv && existing.count == cv => {}
                    _ => {
                        ls.upsert(LabelEntry::new(h_rank, dv, cv));
                    }
                }
                self.updated[v as usize] = true;
                visited_marked.push(v);
            }
            let cv = self.count[v as usize];
            let neighbors = match target {
                Side::In => g.out_neighbors(VertexId(v)),
                Side::Out => g.in_neighbors(VertexId(v)),
            };
            for &w in neighbors {
                if h_rank > index.rank(VertexId(w)) {
                    continue;
                }
                let dw = self.dist[w as usize];
                if dw == INF_DIST {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push(w);
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        if h_ab {
            for u in removal_candidates {
                if !self.updated[u.index()]
                    && index.label_mut(target, u).remove(h_rank).is_some()
                {}
            }
        }
        for v in visited_marked {
            self.updated[v as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directed::{directed_spc_query, DynamicDirectedSpc};
    use crate::order::OrderingStrategy;
    use dspc_graph::generators::random::{erdos_renyi_gnm, random_orientation};
    use dspc_graph::traversal::dbfs::DirectedBfsCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_oracle(g: &DirectedGraph, index: &DirectedSpcIndex) {
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    directed_spc_query(index, s, t).as_option(),
                    bfs.count(g, s, t),
                    "pair ({s:?} → {t:?})"
                );
            }
        }
    }

    #[test]
    fn insert_creates_reachability() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (2, 3)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), None);
        d.insert_arc(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn insert_parallel_path_updates_counts() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (1, 3), (0, 2)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        d.insert_arc(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 2)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn delete_reroutes_and_disconnects() {
        let g = DirectedGraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 1)));
        d.delete_arc(VertexId(4), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_arc(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), None);
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn reciprocal_arcs_are_independent() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        d.delete_arc(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), None);
        assert_eq!(d.query(VertexId(2), VertexId(0)), Some((2, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn random_hybrid_streams_match_oracle() {
        let mut rng = StdRng::seed_from_u64(777);
        for trial in 0..5 {
            let base = erdos_renyi_gnm(22 + trial, 50, &mut rng);
            let g = random_orientation(&base, 0.25, &mut rng);
            let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
            for step in 0..24 {
                if rng.gen_bool(0.6) || d.graph().num_arcs() == 0 {
                    loop {
                        let a = rng.gen_range(0..d.graph().capacity() as u32);
                        let b = rng.gen_range(0..d.graph().capacity() as u32);
                        if a != b && !d.graph().has_arc(VertexId(a), VertexId(b)) {
                            d.insert_arc(VertexId(a), VertexId(b)).unwrap();
                            break;
                        }
                    }
                } else {
                    let arcs: Vec<_> = d.graph().arcs().collect();
                    let (a, b) = arcs[rng.gen_range(0..arcs.len())];
                    d.delete_arc(a, b).unwrap();
                }
                if step % 6 == 5 {
                    assert_matches_oracle(d.graph(), d.index());
                    d.index().check_invariants().unwrap();
                }
            }
            assert_matches_oracle(d.graph(), d.index());
        }
    }

    #[test]
    fn delete_missing_arc_errors() {
        let g = DirectedGraph::from_arcs(2, &[(0, 1)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        assert!(d.delete_arc(VertexId(1), VertexId(0)).is_err());
    }

    #[test]
    fn vertex_lifecycle_directed() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        let v = d.add_vertex();
        assert_eq!(v, VertexId(3));
        d.insert_arc(VertexId(2), v).unwrap();
        d.insert_arc(v, VertexId(0)).unwrap();
        assert_eq!(d.query(VertexId(0), v), Some((3, 1)));
        assert_eq!(d.query(v, VertexId(1)), Some((2, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_vertex(v).unwrap();
        assert_matches_oracle(d.graph(), d.index());
        d.index().check_invariants().unwrap();
    }
}
