//! Directed IncSPC / DecSPC (Appendix C.1).
//!
//! The undirected algorithms with directions attached:
//!
//! * **Insertion of arc `a → b`.** Affected hubs come from
//!   `L_in(a) ∪ L_out(b)`. A hub `h ∈ L_in(a)` (it tops paths `h → … → a`)
//!   runs a *forward* pruned BFS from `b`, seeded across the new arc,
//!   repairing `L_in` labels downstream. A hub `h ∈ L_out(b)` runs the
//!   mirror-image *backward* BFS from `a`, repairing `L_out` labels
//!   upstream.
//! * **Deletion of arc `a → b`.** `SR_a/R_a` are found by a backward
//!   counting sweep from `a` (vertices with shortest paths `v → a → b`),
//!   classified per Definition 3.10 with in-side hub membership;
//!   `SR_b/R_b` symmetrically by a forward sweep from `b` with out-side
//!   membership. Then hubs in `SR_a` repair `L_in` labels of
//!   `SR_b ∪ R_b` by forward BFS, hubs in `SR_b` repair `L_out` labels of
//!   `SR_a ∪ R_a` by backward BFS, with the same `PreQUERY` pruning and
//!   removal pass as the undirected Algorithm 6.

use super::{DirectedSpcIndex, Side};
use crate::engine::{
    aggregate_far_columns, build_endpoint_tasks, merge_affected, DirectedTopo, FarAggregator,
    FarColumn, MaintenanceCounters, RepairAgenda, UpdateEngine, MARK_A, MARK_B, REPAIR_PRIMARY,
    REPAIR_SECONDARY,
};
use crate::label::Rank;
use crate::parallel::{ClassifyMode, MaintenanceOptions, MaintenanceThreads};
use crate::query::HubProbe;
use dspc_graph::{DirectedGraph, VertexId};

/// Directed incremental driver: the arc-insertion policy over the shared
/// [`UpdateEngine`], running the forward (`L_in`) and backward (`L_out`)
/// halves through [`DirectedTopo`] views.
#[derive(Debug)]
pub struct DirectedIncSpc {
    engine: UpdateEngine<u32>,
    probe: HubProbe,
}

impl DirectedIncSpc {
    /// Creates an engine for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        DirectedIncSpc {
            engine: UpdateEngine::new(capacity),
            probe: HubProbe::new(capacity),
        }
    }

    /// Repairs `index` after arc `a → b` was inserted into `g`. Returns the
    /// label-operation counters.
    pub fn insert_arc(
        &mut self,
        g: &DirectedGraph,
        index: &mut DirectedSpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> MaintenanceCounters {
        debug_assert!(g.has_arc(a, b));
        self.engine.ensure_capacity(g.capacity());
        let mut stats = MaintenanceCounters::default();
        // Snapshot AFF = hubs(L_in(a)) ∪ hubs(L_out(b)) with side flags,
        // merged in descending rank order.
        let aff = merge_affected(index.label_in(a).entries(), index.label_out(b).entries());
        let rank_a = index.rank(a);
        let rank_b = index.rank(b);
        for (h_rank, from_in_a, from_out_b) in aff {
            let h = index.vertex(h_rank);
            stats.hubs_processed += 1;
            // The seed label lives on the same family as the repaired side:
            // L_in(a) when repairing L_in, L_out(b) when repairing L_out.
            if from_in_a && h_rank <= rank_b {
                // New paths h → … → a → b → …: forward from b, L_in side.
                if let Some(seed) = index.label_in(a).get(h_rank).copied() {
                    let mut topo = DirectedTopo::new(g, index, &mut self.probe, Side::In);
                    self.engine
                        .inc_pass(&mut topo, h, b, seed.dist + 1, seed.count, &mut stats);
                }
            }
            if from_out_b && h_rank <= rank_a {
                // New paths … → a → b → … → h: backward from a, L_out side.
                if let Some(seed) = index.label_out(b).get(h_rank).copied() {
                    let mut topo = DirectedTopo::new(g, index, &mut self.probe, Side::Out);
                    self.engine
                        .inc_pass(&mut topo, h, a, seed.dist + 1, seed.count, &mut stats);
                }
            }
        }
        stats
    }
}

/// Directed decremental driver: the arc-deletion policy over the shared
/// [`UpdateEngine`].
#[derive(Debug)]
pub struct DirectedDecSpc {
    engine: UpdateEngine<u32>,
    probe: HubProbe,
    probes: Vec<HubProbe>,
    agenda: RepairAgenda,
    agg: FarAggregator,
}

impl DirectedDecSpc {
    /// Creates an engine for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        DirectedDecSpc {
            engine: UpdateEngine::new(capacity),
            probe: HubProbe::new(capacity),
            probes: Vec::new(),
            agenda: RepairAgenda::new(capacity),
            agg: FarAggregator::new(capacity),
        }
    }

    /// Deletes arc `a → b` from `g` and repairs `index`. Returns the
    /// label-operation counters.
    pub fn delete_arc(
        &mut self,
        g: &mut DirectedGraph,
        index: &mut DirectedSpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        if !g.has_arc(a, b) {
            return Err(dspc_graph::GraphError::MissingEdge(a, b));
        }
        self.engine.ensure_capacity(g.capacity());
        let mut stats = MaintenanceCounters::default();

        // Phase 1 on G_i: senders upstream of a (backward sweep from a over
        // in-arcs = the L_out view), receivers downstream of b (forward
        // sweep from b = the L_in view). The view's pin/scan/membership
        // sides line up with the sweep direction by construction — see
        // [`DirectedTopo`].
        let (sr_a, r_a) = {
            let mut topo = DirectedTopo::new(g, index, &mut self.probe, Side::Out);
            self.engine.srr_pass(&mut topo, a, b, 1, &mut stats)
        };
        let (sr_b, r_b) = {
            let mut topo = DirectedTopo::new(g, index, &mut self.probe, Side::In);
            self.engine.srr_pass(&mut topo, b, a, 1, &mut stats)
        };
        self.engine.set_marks([&sr_a, &r_a], [&sr_b, &r_b]);

        g.delete_arc(a, b)?;

        let mut sr: Vec<(Rank, bool)> = sr_a
            .iter()
            .map(|&v| (index.rank(v), true))
            .chain(sr_b.iter().map(|&v| (index.rank(v), false)))
            .collect();
        sr.sort_unstable_by_key(|&(r, _)| r);

        for &(h_rank, upstream) in &sr {
            let h = index.vertex(h_rank);
            stats.hubs_processed += 1;
            let (repair, opposite, removal) = if upstream {
                // h tops paths h → … → a → b → …; repair L_in downstream.
                (Side::In, MARK_B, [&sr_b[..], &r_b[..]])
            } else {
                (Side::Out, MARK_A, [&sr_a[..], &r_a[..]])
            };
            let mut topo = DirectedTopo::new(g, index, &mut self.probe, repair);
            self.engine
                .dec_pass(&mut topo, h, opposite, removal, &mut stats);
        }

        self.engine.clear_marks();
        Ok(stats)
    }

    /// Multi-arc `SrrSEARCH` repair, sequential. Equivalent to
    /// [`DirectedDecSpc::delete_arcs_with`] with
    /// [`MaintenanceOptions::sequential`].
    #[deprecated(note = "use `delete_arcs_with` with `MaintenanceOptions::sequential()`")]
    pub fn delete_arcs(
        &mut self,
        g: &mut DirectedGraph,
        index: &mut DirectedSpcIndex,
        arcs: &[(VertexId, VertexId)],
    ) -> dspc_graph::Result<MaintenanceCounters> {
        self.delete_arcs_with(g, index, arcs, &MaintenanceOptions::sequential())
    }

    /// Multi-arc deletion with an explicit thread budget. Equivalent to
    /// [`DirectedDecSpc::delete_arcs_with`] with
    /// [`MaintenanceOptions::with_threads`].
    #[deprecated(note = "use `delete_arcs_with` with `MaintenanceOptions::with_threads(..)`")]
    pub fn delete_arcs_with_threads(
        &mut self,
        g: &mut DirectedGraph,
        index: &mut DirectedSpcIndex,
        arcs: &[(VertexId, VertexId)],
        threads: usize,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        self.delete_arcs_with(
            g,
            index,
            arcs,
            &MaintenanceOptions::with_threads(MaintenanceThreads::Fixed(threads)),
        )
    }

    /// Multi-arc `SrrSEARCH` repair (the batch generalization of the
    /// directed deletion): deletes every arc of `arcs` from `g` and repairs
    /// `index` with at most one `DecUPDATE` sweep per distinct affected hub
    /// *per label family*, instead of one per arc per hub.
    ///
    /// Classification runs on the group-pre graph. Under the default
    /// [`ClassifyMode::MultiFar`] it costs one
    /// [`UpdateEngine::multi_far_pass`] per *distinct tail* (backward
    /// sweep, heads as fars) plus one per *distinct head* (forward sweep,
    /// tails as fars); the per-far count columns are summed per shared far
    /// endpoint, which fixes the mixed-frontier condition-**B** undercount
    /// when several doomed arcs share a head (or tail). Hubs found
    /// upstream are flagged to repair `L_in`, downstream hubs to repair
    /// `L_out`, and a hub affected from both directions across different
    /// arcs gets both flags merged into a single agenda entry. The repair
    /// sweeps then run against the residual graph with the union of all
    /// classified vertices as the shared receiver/removal frontier.
    ///
    /// A thread budget above 1 classifies endpoint tasks in parallel and
    /// runs the per-family repair sweeps as rank-independent waves over
    /// *weak* residual components (conservative for both sweep
    /// directions) on a persistent worker pool. Deterministic at every
    /// thread count.
    ///
    /// All arcs are validated present (and pairwise distinct) before the
    /// first mutation; on error nothing is applied.
    pub fn delete_arcs_with(
        &mut self,
        g: &mut DirectedGraph,
        index: &mut DirectedSpcIndex,
        arcs: &[(VertexId, VertexId)],
        options: &MaintenanceOptions,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        match arcs {
            [] => return Ok(MaintenanceCounters::default()),
            &[(a, b)] => return self.delete_arc(g, index, a, b),
            _ => {}
        }
        let mut keys: Vec<(u32, u32)> = Vec::with_capacity(arcs.len());
        for &(a, b) in arcs {
            if !g.has_arc(a, b) {
                return Err(dspc_graph::GraphError::MissingEdge(a, b));
            }
            keys.push((a.0, b.0));
        }
        if let Some((x, y)) = crate::engine::duplicate_edge_key(&mut keys) {
            return Err(dspc_graph::GraphError::MissingEdge(
                VertexId(x),
                VertexId(y),
            ));
        }
        self.engine.ensure_capacity(g.capacity());
        self.agenda.ensure_capacity(g.capacity());
        self.agg.ensure_capacity(g.capacity());
        let threads = options.threads.resolve();
        let mut stats = MaintenanceCounters::default();

        if threads <= 1 {
            match options.classify {
                ClassifyMode::PerEdge => {
                    for &(a, b) in arcs {
                        let (sr_a, r_a) = {
                            let mut topo = DirectedTopo::new(g, index, &mut self.probe, Side::Out);
                            self.engine.srr_pass(&mut topo, a, b, 1, &mut stats)
                        };
                        let (sr_b, r_b) = {
                            let mut topo = DirectedTopo::new(g, index, &mut self.probe, Side::In);
                            self.engine.srr_pass(&mut topo, b, a, 1, &mut stats)
                        };
                        // Upstream hubs top paths h → … → a → b and repair
                        // L_in; downstream hubs the mirror image.
                        self.agenda
                            .note_side(&sr_a, &r_a, REPAIR_PRIMARY, |v| index.rank(v));
                        self.agenda
                            .note_side(&sr_b, &r_b, REPAIR_SECONDARY, |v| index.rank(v));
                    }
                }
                ClassifyMode::MultiFar => {
                    use crate::engine::FrozenDirected;
                    // Tail tasks sweep backward (Side::Out views, heads as
                    // fars) and feed the L_in repair family; head tasks the
                    // mirror image.
                    for (side, family, tasks) in [
                        (
                            Side::Out,
                            REPAIR_PRIMARY,
                            build_endpoint_tasks(arcs.iter().map(|&(a, b)| (a, b, 1u32))),
                        ),
                        (
                            Side::In,
                            REPAIR_SECONDARY,
                            build_endpoint_tasks(arcs.iter().map(|&(a, b)| (b, a, 1u32))),
                        ),
                    ] {
                        let mut columns: Vec<FarColumn> = Vec::new();
                        {
                            let (g_ref, index_ref): (&DirectedGraph, &DirectedSpcIndex) =
                                (g, index);
                            let engine = &mut self.engine;
                            let probes = &mut self.probes;
                            for task in &tasks {
                                while probes.len() < task.fars.len() {
                                    probes.push(HubProbe::new(g_ref.capacity()));
                                }
                                let mut views: Vec<FrozenDirected> = probes[..task.fars.len()]
                                    .iter_mut()
                                    .map(|p| FrozenDirected::new(g_ref, index_ref, p, side))
                                    .collect();
                                columns.extend(
                                    engine.multi_far_pass(
                                        &mut views, task.near, &task.fars, &mut stats,
                                    ),
                                );
                            }
                        }
                        aggregate_far_columns(
                            &mut self.agg,
                            &columns,
                            &mut self.agenda,
                            family,
                            |v| index.rank(v),
                        );
                    }
                }
            }
            self.engine
                .set_marks([self.agenda.receivers(), &[]], [&[], &[]]);

            for &(a, b) in arcs {
                g.delete_arc(a, b)?;
            }

            let hubs = self.agenda.take_hubs();
            stats.agenda_hubs += hubs.len();
            for (h_rank, families) in hubs {
                let h = index.vertex(h_rank);
                for (flag, repair) in [(REPAIR_PRIMARY, Side::In), (REPAIR_SECONDARY, Side::Out)] {
                    if families & flag == 0 {
                        continue;
                    }
                    stats.hubs_processed += 1;
                    let mut topo = DirectedTopo::new(g, index, &mut self.probe, repair);
                    self.engine.dec_pass(
                        &mut topo,
                        h,
                        MARK_A,
                        [self.agenda.receivers(), &[]],
                        &mut stats,
                    );
                }
            }

            self.engine.clear_marks();
        } else {
            self.delete_group_parallel(g, index, arcs, threads, options.classify, &mut stats)?;
        }
        self.agenda.clear();
        Ok(stats)
    }

    /// Wave-parallel twin of the sequential multi-arc body: classification
    /// fans out over the group's endpoint tasks, the set is deleted, and
    /// each agenda hub's family sweeps run as frozen sweeps inside
    /// rank-independent waves on a persistent worker pool. Both sweeps of
    /// one hub (`L_in` then `L_out`) stay on one worker in the sequential
    /// order — they touch disjoint label families, so the frozen reads
    /// match the sequential interleaving exactly.
    fn delete_group_parallel(
        &mut self,
        g: &mut DirectedGraph,
        index: &mut DirectedSpcIndex,
        arcs: &[(VertexId, VertexId)],
        threads: usize,
        classify: ClassifyMode,
        stats: &mut MaintenanceCounters,
    ) -> dspc_graph::Result<()> {
        use crate::engine::parallel::{
            agenda_components, family_sweeps, frozen_dec_sweep, note_schedule, plan_waves,
            run_wave_pool, Buffered, Interference, LabelWriteLog, WorkerScratch,
        };
        use crate::engine::FrozenDirected;
        use crate::label::LabelEntry;

        let cap = g.capacity();

        match classify {
            ClassifyMode::PerEdge => {
                let outcomes = {
                    let (g_ref, index_ref): (&DirectedGraph, &DirectedSpcIndex) = (g, index);
                    crate::parallel::fan_out(
                        arcs,
                        threads,
                        || {
                            (
                                UpdateEngine::<u32>::new(cap),
                                HubProbe::new(cap),
                                LabelWriteLog::<u32>::new(),
                            )
                        },
                        |(engine, probe, log), &(a, b)| {
                            let mut c = MaintenanceCounters::default();
                            let (sr_a, r_a) = {
                                let base = FrozenDirected::new(g_ref, index_ref, probe, Side::Out);
                                let mut topo = Buffered::new(base, log);
                                engine.srr_pass(&mut topo, a, b, 1, &mut c)
                            };
                            let (sr_b, r_b) = {
                                let base = FrozenDirected::new(g_ref, index_ref, probe, Side::In);
                                let mut topo = Buffered::new(base, log);
                                engine.srr_pass(&mut topo, b, a, 1, &mut c)
                            };
                            debug_assert!(log.is_empty(), "classification never writes");
                            (sr_a, r_a, sr_b, r_b, c)
                        },
                    )
                };
                for (sr_a, r_a, sr_b, r_b, c) in &outcomes {
                    stats.absorb(c);
                    self.agenda
                        .note_side(sr_a, r_a, REPAIR_PRIMARY, |v| index.rank(v));
                    self.agenda
                        .note_side(sr_b, r_b, REPAIR_SECONDARY, |v| index.rank(v));
                }
            }
            ClassifyMode::MultiFar => {
                for (side, family, tasks) in [
                    (
                        Side::Out,
                        REPAIR_PRIMARY,
                        build_endpoint_tasks(arcs.iter().map(|&(a, b)| (a, b, 1u32))),
                    ),
                    (
                        Side::In,
                        REPAIR_SECONDARY,
                        build_endpoint_tasks(arcs.iter().map(|&(a, b)| (b, a, 1u32))),
                    ),
                ] {
                    let outcomes = {
                        let (g_ref, index_ref): (&DirectedGraph, &DirectedSpcIndex) = (g, index);
                        crate::parallel::fan_out(
                            &tasks,
                            threads,
                            || (UpdateEngine::<u32>::new(cap), Vec::<HubProbe>::new()),
                            |(engine, probes), task| {
                                while probes.len() < task.fars.len() {
                                    probes.push(HubProbe::new(cap));
                                }
                                let mut c = MaintenanceCounters::default();
                                let mut views: Vec<FrozenDirected> = probes[..task.fars.len()]
                                    .iter_mut()
                                    .map(|p| FrozenDirected::new(g_ref, index_ref, p, side))
                                    .collect();
                                let cols = engine
                                    .multi_far_pass(&mut views, task.near, &task.fars, &mut c);
                                (cols, c)
                            },
                        )
                    };
                    let mut columns: Vec<FarColumn> = Vec::new();
                    for (cols, c) in outcomes {
                        stats.absorb(&c);
                        columns.extend(cols);
                    }
                    aggregate_far_columns(&mut self.agg, &columns, &mut self.agenda, family, |v| {
                        index.rank(v)
                    });
                }
            }
        }

        for &(a, b) in arcs {
            g.delete_arc(a, b)?;
        }

        let hubs = self.agenda.take_hubs();
        stats.agenda_hubs += hubs.len();
        let receivers = self.agenda.receivers();
        let schedule = if hubs.len() < 2 {
            plan_waves(hubs.len(), |_, _| false)
        } else {
            // Weak components of the residual digraph, labeled only where
            // the agenda actually reaches.
            let (comp, probes) = agenda_components(
                cap,
                hubs.iter()
                    .map(|&(r, _)| index.vertex(r))
                    .chain(receivers.iter().copied()),
                |v, f| {
                    for &w in g.out_neighbors(VertexId(v)) {
                        f(w);
                    }
                    for &w in g.in_neighbors(VertexId(v)) {
                        f(w);
                    }
                },
            );
            stats.interference_probes += probes;
            let inter = Interference::build(
                &comp,
                &hubs,
                receivers,
                |r| index.vertex(r),
                |v, f| {
                    for e in index.label_in(v).entries() {
                        f(e.hub);
                    }
                    for e in index.label_out(v).entries() {
                        f(e.hub);
                    }
                },
            );
            plan_waves(hubs.len(), |i, j| inter.conflicts(i, j))
        };
        note_schedule(stats, &schedule);
        type SweepResult = (Side, LabelWriteLog<u32>, MaintenanceCounters);
        let items: Vec<(Rank, u8)> = hubs;
        let waves: Vec<&[usize]> = schedule.iter().collect();
        let g_ref: &DirectedGraph = g;
        let index_lock = std::sync::RwLock::new(&mut *index);
        let steals = run_wave_pool(
            threads,
            &items,
            &waves,
            || WorkerScratch::for_group(cap, receivers, HubProbe::new(cap)),
            |scratch, &(h_rank, families)| {
                let guard = index_lock.read().unwrap();
                let index: &DirectedSpcIndex = &guard;
                let h = index.vertex(h_rank);
                let sweeps: Vec<SweepResult> = family_sweeps(families)
                    .map(|flag| {
                        let repair = if flag == REPAIR_PRIMARY {
                            Side::In
                        } else {
                            Side::Out
                        };
                        let base = FrozenDirected::new(g_ref, index, &mut scratch.probe, repair);
                        let (log, c) = frozen_dec_sweep(&mut scratch.engine, base, h, receivers);
                        (repair, log, c)
                    })
                    .collect();
                sweeps
            },
            |results| {
                let mut guard = index_lock.write().unwrap();
                for sweeps in results {
                    for (repair, mut log, c) in sweeps {
                        stats.absorb(&c);
                        for (v, hub, op) in log.drain() {
                            match op {
                                Some((d, cnt)) => {
                                    guard
                                        .label_mut(repair, v)
                                        .upsert(LabelEntry::new(hub, d, cnt));
                                }
                                None => {
                                    guard.label_mut(repair, v).remove(hub);
                                }
                            }
                        }
                    }
                }
            },
        );
        stats.steal_events += steals;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directed::{directed_spc_query, DynamicDirectedSpc};
    use crate::order::OrderingStrategy;
    use dspc_graph::generators::random::{erdos_renyi_gnm, random_orientation};
    use dspc_graph::traversal::dbfs::DirectedBfsCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_oracle(g: &DirectedGraph, index: &DirectedSpcIndex) {
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    directed_spc_query(index, s, t).as_option(),
                    bfs.count(g, s, t),
                    "pair ({s:?} → {t:?})"
                );
            }
        }
    }

    #[test]
    fn insert_creates_reachability() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (2, 3)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), None);
        d.insert_arc(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn insert_parallel_path_updates_counts() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (1, 3), (0, 2)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        d.insert_arc(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 2)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn delete_reroutes_and_disconnects() {
        let g = DirectedGraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 1)));
        d.delete_arc(VertexId(4), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_arc(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), None);
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn reciprocal_arcs_are_independent() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        d.delete_arc(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), None);
        assert_eq!(d.query(VertexId(2), VertexId(0)), Some((2, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn random_hybrid_streams_match_oracle() {
        let mut rng = StdRng::seed_from_u64(777);
        for trial in 0..5 {
            let base = erdos_renyi_gnm(22 + trial, 50, &mut rng);
            let g = random_orientation(&base, 0.25, &mut rng);
            let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
            for step in 0..24 {
                if rng.gen_bool(0.6) || d.graph().num_arcs() == 0 {
                    loop {
                        let a = rng.gen_range(0..d.graph().capacity() as u32);
                        let b = rng.gen_range(0..d.graph().capacity() as u32);
                        if a != b && !d.graph().has_arc(VertexId(a), VertexId(b)) {
                            d.insert_arc(VertexId(a), VertexId(b)).unwrap();
                            break;
                        }
                    }
                } else {
                    let arcs: Vec<_> = d.graph().arcs().collect();
                    let (a, b) = arcs[rng.gen_range(0..arcs.len())];
                    d.delete_arc(a, b).unwrap();
                }
                if step % 6 == 5 {
                    assert_matches_oracle(d.graph(), d.index());
                    d.index().check_invariants().unwrap();
                }
            }
            assert_matches_oracle(d.graph(), d.index());
        }
    }

    #[test]
    fn delete_missing_arc_errors() {
        let g = DirectedGraph::from_arcs(2, &[(0, 1)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        assert!(d.delete_arc(VertexId(1), VertexId(0)).is_err());
    }

    #[test]
    fn vertex_lifecycle_directed() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        let v = d.add_vertex();
        assert_eq!(v, VertexId(3));
        d.insert_arc(VertexId(2), v).unwrap();
        d.insert_arc(v, VertexId(0)).unwrap();
        assert_eq!(d.query(VertexId(0), v), Some((3, 1)));
        assert_eq!(d.query(v, VertexId(1)), Some((2, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_vertex(v).unwrap();
        assert_matches_oracle(d.graph(), d.index());
        d.index().check_invariants().unwrap();
    }
}
