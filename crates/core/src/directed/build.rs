//! Directed HP-SPC: two rank-pruned counting BFSs per hub.
//!
//! For hub `h` (descending rank): a **forward** sweep over out-arcs inside
//! `G_h` emits `(h, D[w], C[w])` into `L_in(w)`; a **backward** sweep over
//! in-arcs emits into `L_out(w)`. Pruning compares against the partial
//! index in the matching direction (`L_out(h) ⋈ L_in(w)` forward,
//! `L_out(w) ⋈ L_in(h)` backward), strictly, as in the undirected build.

use super::{DirectedRankMap, DirectedSpcIndex, Side};
use crate::label::{Count, LabelEntry, Rank, INF_DIST};
use crate::order::OrderingStrategy;
use crate::query::HubProbe;
use dspc_graph::{DirectedGraph, VertexId};

/// Reusable directed construction engine.
#[derive(Debug)]
pub struct DirectedBuilder {
    dist: Vec<u32>,
    count: Vec<Count>,
    queue: Vec<u32>,
    touched: Vec<u32>,
    probe: HubProbe,
}

impl DirectedBuilder {
    /// Creates a builder for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        DirectedBuilder {
            dist: vec![INF_DIST; capacity],
            count: vec![0; capacity],
            queue: Vec::new(),
            touched: Vec::new(),
            probe: HubProbe::new(capacity),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF_DIST;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Builds the directed SPC-Index of `g`.
    pub fn build(&mut self, g: &DirectedGraph, strategy: OrderingStrategy) -> DirectedSpcIndex {
        self.build_with_ranks(g, DirectedRankMap::build(g, strategy))
    }

    /// Builds the directed SPC-Index of `g` over an explicit rank map —
    /// the comparison target for [`crate::reorder`]'s directed swap repair.
    pub fn build_with_ranks(
        &mut self,
        g: &DirectedGraph,
        ranks: DirectedRankMap,
    ) -> DirectedSpcIndex {
        let cap = g.capacity();
        assert_eq!(ranks.len(), cap, "rank map does not cover the graph");
        if self.dist.len() < cap {
            self.dist.resize(cap, INF_DIST);
            self.count.resize(cap, 0);
        }
        self.probe.ensure_capacity(cap);
        let mut index = DirectedSpcIndex::self_labeled(ranks);
        for v in 0..cap {
            index.label_mut(Side::In, VertexId(v as u32)).clear_all();
            index.label_mut(Side::Out, VertexId(v as u32)).clear_all();
        }
        for r in 0..cap as u32 {
            let h = index.vertex(Rank(r));
            if !g.contains_vertex(h) {
                continue;
            }
            // Forward: emits L_in labels; prune against L_out(h) ⋈ L_in(w).
            self.push_hub(g, &mut index, h, Side::In);
            // Backward: emits L_out labels; prune against L_in(h) ⋈ L_out(w).
            self.push_hub(g, &mut index, h, Side::Out);
        }
        for v in 0..cap {
            let vid = VertexId(v as u32);
            let rank = index.rank(vid);
            for side in [Side::In, Side::Out] {
                if index.label(side, vid).is_empty() {
                    index
                        .label_mut(side, vid)
                        .push_descending(super::self_entry(rank));
                }
            }
        }
        index
    }

    /// One sweep of hub `h` writing into `target` labels of reached
    /// vertices. `target == Side::In` sweeps forward, `Side::Out` backward.
    fn push_hub(
        &mut self,
        g: &DirectedGraph,
        index: &mut DirectedSpcIndex,
        h: VertexId,
        target: Side,
    ) {
        let hr = index.rank(h);
        self.reset();
        // Pinned side of the prune query: the hub's *opposite* family —
        // forward prune is L_out(h) ⋈ L_in(w), so pin L_out(h).
        let pinned = target.opposite();
        self.probe
            .load_labels(index.label(pinned, h), index.ranks().len());
        self.dist[h.index()] = 0;
        self.count[h.index()] = 1;
        self.touched.push(h.0);
        self.queue.push(h.0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let dv = self.dist[v as usize];
            let q = self.probe.query(index.label(target, VertexId(v)));
            if q.dist < dv {
                continue;
            }
            index
                .label_mut(target, VertexId(v))
                .push_descending(LabelEntry::new(hr, dv, self.count[v as usize]));
            let cv = self.count[v as usize];
            let neighbors = match target {
                Side::In => g.out_neighbors(VertexId(v)),
                Side::Out => g.in_neighbors(VertexId(v)),
            };
            for &w in neighbors {
                if index.rank(VertexId(w)) <= hr {
                    continue;
                }
                let dw = self.dist[w as usize];
                if dw == INF_DIST {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push(w);
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
    }
}

/// One-shot directed build.
pub fn build_directed_index(g: &DirectedGraph, strategy: OrderingStrategy) -> DirectedSpcIndex {
    DirectedBuilder::new(g.capacity()).build(g, strategy)
}

/// One-shot directed build over an explicit rank map.
pub fn rebuild_directed_index(g: &DirectedGraph, ranks: DirectedRankMap) -> DirectedSpcIndex {
    DirectedBuilder::new(g.capacity()).build_with_ranks(g, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directed::directed_spc_query;
    use dspc_graph::generators::random::{erdos_renyi_gnm, random_orientation};
    use dspc_graph::traversal::dbfs::DirectedBfsCounter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn assert_matches_dbfs(g: &DirectedGraph, index: &DirectedSpcIndex) {
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                let expect = bfs.count(g, s, t);
                let got = directed_spc_query(index, s, t).as_option();
                assert_eq!(got, expect, "pair ({s:?} → {t:?})");
            }
        }
    }

    #[test]
    fn diamond_and_cycle() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let idx = build_directed_index(&g, OrderingStrategy::Degree);
        idx.check_invariants().unwrap();
        assert_matches_dbfs(&g, &idx);
        assert_eq!(
            directed_spc_query(&idx, VertexId(0), VertexId(3)).as_option(),
            Some((2, 2))
        );

        let c = DirectedGraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let idx = build_directed_index(&c, OrderingStrategy::Degree);
        assert_matches_dbfs(&c, &idx);
    }

    #[test]
    fn random_digraphs_match_oracle() {
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..8 {
            let base = erdos_renyi_gnm(30, 70, &mut rng);
            let g = random_orientation(&base, 0.3, &mut rng);
            for strategy in [
                OrderingStrategy::Degree,
                OrderingStrategy::Identity,
                OrderingStrategy::Random(5),
            ] {
                let idx = build_directed_index(&g, strategy);
                idx.check_invariants().unwrap();
                assert_matches_dbfs(&g, &idx);
            }
        }
    }

    #[test]
    fn asymmetric_reachability() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let idx = build_directed_index(&g, OrderingStrategy::Degree);
        assert_eq!(
            directed_spc_query(&idx, VertexId(0), VertexId(2)).as_option(),
            Some((2, 1))
        );
        assert!(!directed_spc_query(&idx, VertexId(2), VertexId(0)).is_connected());
    }
}
