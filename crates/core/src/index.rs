//! The SPC-Index: per-vertex label sets plus the vertex total order.
//!
//! The structure follows §2.2 exactly: each vertex `v` owns `L(v)`, a set of
//! `(hub, dist, count)` triples obeying the **Exact Shortest Paths Covering**
//! (ESPC) constraint — `spc(s, t)` is computable for every pair from
//! `L(s)` and `L(t)` alone via Equations (1)–(2).

use crate::label::{LabelEntry, LabelSet, Rank};
use crate::order::RankMap;
use dspc_graph::VertexId;
use serde::{Deserialize, Serialize};

/// The SPC-Index of a graph (the paper's `L`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpcIndex {
    /// `labels[v]` = `L(v)`, indexed by vertex id.
    labels: Vec<LabelSet>,
    /// The vertex total order.
    ranks: RankMap,
    /// `hub_counts[r]` = number of label entries across the whole index
    /// whose hub has rank `r` (self labels included). Maintained exactly by
    /// the tracked mutators ([`SpcIndex::upsert_entry`] /
    /// [`SpcIndex::remove_entry`] / [`SpcIndex::reset_vertex_to_self`]);
    /// raw access through [`SpcIndex::label_set_mut`] invalidates the
    /// counts, which are then recomputed on the next
    /// [`SpcIndex::hub_entry_count`] call. The decremental isolated-vertex
    /// fast path (§3.2.3) keys off these counts: emptying `L(x)` is a
    /// complete repair exactly when no other vertex carries an
    /// `(x, ·, ·)` label.
    hub_counts: Vec<u32>,
    /// Whether `hub_counts` is currently exact.
    hub_counts_valid: bool,
}

impl PartialEq for SpcIndex {
    fn eq(&self, other: &Self) -> bool {
        // Hub-count bookkeeping is derived state; equality is label content
        // plus the total order.
        self.labels == other.labels && self.ranks == other.ranks
    }
}

/// Size and shape statistics of an index (Table 4's "L Size" column).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Total label entries across all vertices.
    pub entries: usize,
    /// Bytes under the paper's packed 64-bit-per-entry encoding.
    pub packed_bytes: usize,
    /// Actual in-memory footprint of the live wide representation: the
    /// `Vec<LabelSet>` spine plus, per vertex, the `LabelSet` header and
    /// its heap block at *capacity* (not length) — what resident memory
    /// really pays, unlike the old entries-only figure.
    pub wide_bytes: usize,
    /// Bytes a [`crate::flat::FlatIndex`] snapshot of this index occupies:
    /// 16 per entry across the three columns plus one `u32` offset per
    /// vertex (and one terminator).
    pub flat_bytes: usize,
    /// Largest single label set.
    pub max_label_len: usize,
    /// Mean label set size (the paper's `l`).
    pub avg_label_len: f64,
}

impl SpcIndex {
    /// Creates an index whose every vertex has only its self label.
    ///
    /// This is the correct index for an edgeless graph; [`crate::build`]
    /// populates the rest.
    pub fn self_labeled(ranks: RankMap) -> Self {
        let labels: Vec<LabelSet> = (0..ranks.len())
            .map(|v| LabelSet::self_only(ranks.rank(VertexId(v as u32))))
            .collect();
        let n = labels.len();
        SpcIndex {
            labels,
            ranks,
            hub_counts: vec![1; n],
            hub_counts_valid: true,
        }
    }

    /// Number of vertices covered (id-space size).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// The vertex total order.
    #[inline]
    pub fn ranks(&self) -> &RankMap {
        &self.ranks
    }

    /// `L(v)`.
    #[inline]
    pub fn label_set(&self, v: VertexId) -> &LabelSet {
        &self.labels[v.index()]
    }

    /// Raw mutable `L(v)` — wholesale construction/replacement (the
    /// builder, the codec, tests). Invalidates the hub-entry counts; the
    /// update engine uses the tracked mutators below instead.
    #[inline]
    pub fn label_set_mut(&mut self, v: VertexId) -> &mut LabelSet {
        self.hub_counts_valid = false;
        &mut self.labels[v.index()]
    }

    /// Inserts or replaces `(e.hub, ·, ·) ∈ L(v)`, keeping hub-entry
    /// counts exact. Returns the previous entry.
    pub fn upsert_entry(&mut self, v: VertexId, e: LabelEntry) -> Option<LabelEntry> {
        let old = self.labels[v.index()].upsert(e);
        if self.hub_counts_valid && old.is_none() {
            self.hub_counts[e.hub.index()] += 1;
        }
        old
    }

    /// Removes `(hub, ·, ·)` from `L(v)`, keeping hub-entry counts exact.
    pub fn remove_entry(&mut self, v: VertexId, hub: Rank) -> Option<LabelEntry> {
        let old = self.labels[v.index()].remove(hub);
        if self.hub_counts_valid && old.is_some() {
            self.hub_counts[hub.index()] -= 1;
        }
        old
    }

    /// Clears `L(v)` down to a fresh self label (the §3.2.3 isolated-vertex
    /// repair), keeping hub-entry counts exact. Returns how many non-self
    /// entries were dropped.
    pub fn reset_vertex_to_self(&mut self, v: VertexId) -> usize {
        let self_rank = self.ranks.rank(v);
        if self.hub_counts_valid {
            let mut had_self = false;
            for e in self.labels[v.index()].entries() {
                if e.hub == self_rank {
                    had_self = true;
                } else {
                    self.hub_counts[e.hub.index()] -= 1;
                }
            }
            if !had_self {
                self.hub_counts[self_rank.index()] += 1;
            }
        }
        self.labels[v.index()].reset_to_self(self_rank)
    }

    /// Number of label entries anywhere in the index whose hub has rank
    /// `r` (including the hub vertex's own self label). Recomputes the
    /// counts first if raw mutation invalidated them.
    pub fn hub_entry_count(&mut self, r: Rank) -> u32 {
        if !self.hub_counts_valid {
            self.hub_counts.clear();
            self.hub_counts.resize(self.ranks.len(), 0);
            for ls in &self.labels {
                for e in ls.entries() {
                    self.hub_counts[e.hub.index()] += 1;
                }
            }
            self.hub_counts_valid = true;
        }
        self.hub_counts[r.index()]
    }

    /// Rank of `v` (convenience).
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.ranks.rank(v)
    }

    /// Vertex at `r` (convenience).
    #[inline]
    pub fn vertex(&self, r: Rank) -> VertexId {
        self.ranks.vertex(r)
    }

    /// Swaps the vertices at ranks `r` and `r + 1` **without touching any
    /// label storage**: the rank map's two positions trade occupants. Both
    /// label entries and hub-entry counts are keyed by *rank*, so neither
    /// moves — but every entry at the two ranks now attributes its paths
    /// to the wrong hub vertex, which is why the caller
    /// ([`crate::reorder`]) purges both ranks' entries before the swap and
    /// re-pushes both hubs after it. This method only performs the O(1)
    /// order remap.
    pub fn swap_adjacent_ranks(&mut self, r: Rank) {
        self.ranks.swap_adjacent(r);
    }

    /// Registers a freshly added isolated vertex: appends it at the lowest
    /// rank with a self label. This is the paper's entire incremental
    /// handling of vertex insertion (§3): an isolated vertex affects no
    /// other label.
    pub fn add_isolated_vertex(&mut self, v: VertexId) {
        let r = self.ranks.append_vertex(v);
        self.labels.push(LabelSet::self_only(r));
        self.hub_counts.push(1);
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IndexStats {
        let entries: usize = self.labels.iter().map(LabelSet::len).sum();
        let max = self.labels.iter().map(LabelSet::len).max().unwrap_or(0);
        let n = self.labels.len();
        IndexStats {
            entries,
            packed_bytes: entries * 8,
            wide_bytes: std::mem::size_of::<Vec<LabelSet>>()
                + self
                    .labels
                    .iter()
                    .map(LabelSet::memory_byte_size)
                    .sum::<usize>(),
            flat_bytes: entries * 16 + (n + 1) * 4,
            max_label_len: max,
            avg_label_len: if n == 0 {
                0.0
            } else {
                entries as f64 / n as f64
            },
        }
    }

    /// Structural invariants: every label set strictly sorted, every vertex
    /// carries its self label, every entry's hub ranks at least as high as
    /// the owner (labels only point "up" the order), counts positive.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.ranks.validate() {
            return Err("rank map is not a bijection".into());
        }
        for (vi, ls) in self.labels.iter().enumerate() {
            let v = VertexId(vi as u32);
            if !ls.is_sorted_strict() {
                return Err(format!("L({v}) not strictly sorted by hub rank"));
            }
            let self_rank = self.ranks.rank(v);
            match ls.get(self_rank) {
                Some(e) if e.dist == 0 && e.count == 1 => {}
                Some(e) => {
                    return Err(format!(
                        "self label of {v} malformed: dist={} count={}",
                        e.dist, e.count
                    ))
                }
                None => return Err(format!("missing self label of {v}")),
            }
            for e in ls.entries() {
                if e.hub > self_rank {
                    return Err(format!(
                        "L({v}) contains hub ranked lower than the owner: {:?}",
                        e.hub
                    ));
                }
                if e.count == 0 {
                    return Err(format!("zero-count label in L({v}): hub {:?}", e.hub));
                }
                if e.hub == self_rank && e.dist != 0 {
                    return Err(format!("nonzero self distance at {v}"));
                }
            }
        }
        Ok(())
    }

    /// Total entries (shorthand used in experiments).
    pub fn num_entries(&self) -> usize {
        self.labels.iter().map(LabelSet::len).sum()
    }

    /// Convenience accessor: the entry `(h, d, c) ∈ L(v)` for hub vertex
    /// `h`, if present.
    pub fn label_of(&self, v: VertexId, hub_vertex: VertexId) -> Option<&LabelEntry> {
        self.labels[v.index()].get(self.ranks.rank(hub_vertex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderingStrategy;
    use dspc_graph::generators::classic::star_graph;

    fn fresh() -> SpcIndex {
        let g = star_graph(4);
        SpcIndex::self_labeled(RankMap::build(&g, OrderingStrategy::Degree))
    }

    #[test]
    fn self_labeled_invariants() {
        let idx = fresh();
        idx.check_invariants().unwrap();
        assert_eq!(idx.num_entries(), 4);
        for v in 0..4u32 {
            assert_eq!(idx.label_set(VertexId(v)).len(), 1);
        }
    }

    #[test]
    fn stats_shape() {
        let idx = fresh();
        let s = idx.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.packed_bytes, 32);
        assert_eq!(s.max_label_len, 1);
        assert!((s.avg_label_len - 1.0).abs() < 1e-12);
        // Flat snapshot: 16 bytes per entry + (n + 1) u32 offsets.
        assert_eq!(s.flat_bytes, 4 * 16 + 5 * 4);
        // Real footprint: Vec spine + 4 LabelSet headers + ≥ 4 entries of
        // heap — at least the header overhead above the raw entry bytes.
        let floor = std::mem::size_of::<Vec<LabelSet>>()
            + 4 * std::mem::size_of::<LabelSet>()
            + 4 * std::mem::size_of::<LabelEntry>();
        assert!(s.wide_bytes >= floor, "{} < {floor}", s.wide_bytes);
    }

    #[test]
    fn wide_bytes_tracks_capacity_not_length() {
        let mut idx = fresh();
        let before = idx.stats().wide_bytes;
        // Grow then shrink a label set: length returns to 1 but the Vec
        // keeps its grown capacity, and wide_bytes must report it.
        for h in 0..3u32 {
            idx.label_set_mut(VertexId(0))
                .upsert(LabelEntry::new(Rank(h), 1, 1));
        }
        let rank0 = idx.rank(VertexId(0));
        for h in 0..3u32 {
            if Rank(h) != rank0 {
                idx.label_set_mut(VertexId(0)).remove(Rank(h));
            }
        }
        assert_eq!(idx.label_set(VertexId(0)).len(), 1);
        assert!(idx.stats().wide_bytes > before);
    }

    #[test]
    fn add_isolated_vertex_extends_order() {
        let mut idx = fresh();
        idx.add_isolated_vertex(VertexId(4));
        assert_eq!(idx.num_vertices(), 5);
        assert_eq!(idx.rank(VertexId(4)), Rank(4));
        idx.check_invariants().unwrap();
    }

    #[test]
    fn invariant_checker_catches_missing_self_label() {
        let mut idx = fresh();
        let r = idx.rank(VertexId(2));
        idx.label_set_mut(VertexId(2)).remove(r);
        assert!(idx.check_invariants().is_err());
    }

    #[test]
    fn invariant_checker_catches_downward_hub() {
        let mut idx = fresh();
        // Hub ranked *lower* than the owner is illegal.
        let low_rank = Rank(3);
        let owner = idx.vertex(Rank(0));
        idx.label_set_mut(owner)
            .upsert(LabelEntry::new(low_rank, 1, 1));
        assert!(idx.check_invariants().is_err());
    }

    #[test]
    fn label_of_uses_vertex_identity() {
        let idx = fresh();
        assert!(idx.label_of(VertexId(1), VertexId(1)).is_some());
        assert!(idx.label_of(VertexId(1), VertexId(0)).is_none());
    }
}
