//! Bounded local re-ranking: swap adjacent ranks and repair only the two
//! affected hubs' label state — the incremental answer to ordering
//! staleness that §6 of the paper leaves open (its suggested mitigation is
//! a full lazy rebuild; [`crate::policy`] now escalates through re-ranks
//! first).
//!
//! ## Why a swap repair is local
//!
//! HP-SPC writes the `(h, ·, ·)` entries of hub `h` only during `h`'s own
//! sweep, and every prune decision of a later hub consults the *set* of
//! hubs ranked above it — a set that is unchanged when two adjacent ranks
//! `r`, `r + 1` trade occupants. So swapping the pair invalidates exactly
//! the entries at the two ranks: purge them everywhere (the index's
//! hub-entry counts bound the scan), remap the two rank positions in O(1)
//! ([`crate::index::SpcIndex::swap_adjacent_ranks`]), and re-run the two
//! hubs' pruned counting BFS sweeps in the new order. The result is
//! **bit-identical** to [`crate::build::rebuild_index`] at the swapped
//! order (pinned by `tests/reorder_equivalence.rs`).
//!
//! ## Batched swaps
//!
//! A *sorted, non-overlapping* run of swaps (no two positions within 2 of
//! each other — what [`crate::order::plan_adjacent_swaps`] emits) repairs
//! under one agenda: every pair's two sweeps read a frozen snapshot of the
//! pre-repair labels (own-pair entries masked, the promoted hub's fresh
//! entries carried in a task-local overlay) and only the commit mutates
//! the index, in ascending rank order. Tasks are scheduled on the PR 9
//! wave pool ([`crate::engine::parallel::run_wave_pool`]), so the repair
//! parallelizes across pairs while the committed result stays the same at
//! every thread count.

use crate::directed::{DirectedSpcIndex, Side};
use crate::engine::parallel::{note_schedule, plan_waves, run_wave_pool};
use crate::engine::MaintenanceCounters;
use crate::index::SpcIndex;
use crate::label::{Count, LabelEntry, Rank, INF_DIST};
use crate::query::HubProbe;
use crate::weighted::{WHubProbe, WLabelEntry, WeightedSpcIndex};
use dspc_graph::weighted::{WeightedGraph, WDIST_INF};
use dspc_graph::{DirectedGraph, UndirectedGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Checks that `swaps` is strictly ascending with no two positions closer
/// than 2 (so every pair owns its two ranks exclusively) and in range.
fn validate_swaps(swaps: &[Rank], rank_space: usize) {
    for (i, &r) in swaps.iter().enumerate() {
        assert!(
            r.index() + 1 < rank_space,
            "swap position {r:?} out of range"
        );
        if i > 0 {
            assert!(
                swaps[i - 1].0 + 2 <= r.0,
                "swap positions must be ascending and non-overlapping"
            );
        }
    }
}

/// One pair's repair assignment: the post-swap occupants of `r`/`r + 1`.
struct SwapTask {
    r: Rank,
    promoted: VertexId,
    demoted: VertexId,
}

/// What one pair's two sweeps want committed: fresh entries for ranks
/// `r` and `r + 1`, in emission order, plus the sweep's visit tally.
struct TaskResult {
    ops: Vec<(u32, LabelEntry)>,
    visited: usize,
}

/// Per-worker workspace for swap-repair sweeps: the counting-BFS arrays,
/// a rank-pinned probe (the pushing hub's label set with the swapped pair
/// masked), and the vertex-indexed overlay holding the promoted hub's
/// fresh entries so the demoted hub's sweep can prune against them before
/// anything is committed.
struct ReorderScratch {
    dist: Vec<u32>,
    count: Vec<Count>,
    queue: Vec<u32>,
    touched: Vec<u32>,
    pdist: Vec<u32>,
    pcount: Vec<Count>,
    pinned: Vec<u32>,
    odist: Vec<u32>,
    ocount: Vec<Count>,
    otouched: Vec<u32>,
}

impl ReorderScratch {
    fn new(n: usize) -> Self {
        ReorderScratch {
            dist: vec![INF_DIST; n],
            count: vec![0; n],
            queue: Vec::new(),
            touched: Vec::new(),
            pdist: vec![INF_DIST; n],
            pcount: vec![0; n],
            pinned: Vec::new(),
            odist: vec![INF_DIST; n],
            ocount: vec![0; n],
            otouched: Vec::new(),
        }
    }

    fn reset_bfs(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF_DIST;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    fn unpin(&mut self) {
        for &r in &self.pinned {
            self.pdist[r as usize] = INF_DIST;
            self.pcount[r as usize] = 0;
        }
        self.pinned.clear();
    }

    fn clear_overlay(&mut self) {
        for &v in &self.otouched {
            self.odist[v as usize] = INF_DIST;
            self.ocount[v as usize] = 0;
        }
        self.otouched.clear();
    }

    /// Pins `L(h)` with the swapped pair's ranks masked; for the demoted
    /// sweep, the promoted hub's fresh entry at `h` (if any) is pinned
    /// from the overlay instead of the stale frozen row.
    fn pin(&mut self, index: &SpcIndex, h: VertexId, task: &SwapTask, use_overlay: bool) {
        self.unpin();
        let (ra, rb) = (task.r.0, task.r.0 + 1);
        for e in index.label_set(h).entries() {
            if e.hub.0 == ra || e.hub.0 == rb {
                continue;
            }
            self.pdist[e.hub.index()] = e.dist;
            self.pcount[e.hub.index()] = e.count;
            self.pinned.push(e.hub.0);
        }
        if use_overlay && self.odist[h.index()] != INF_DIST {
            self.pdist[ra as usize] = self.odist[h.index()];
            self.pcount[ra as usize] = self.ocount[h.index()];
            self.pinned.push(ra);
        }
    }

    /// `SpcQUERY(h, v)` against the pinned label set, reading `L(v)` from
    /// the frozen index with the swapped pair masked and (for the demoted
    /// sweep) the promoted hub's fresh entry merged in from the overlay.
    fn query(
        &self,
        index: &SpcIndex,
        v: VertexId,
        task: &SwapTask,
        use_overlay: bool,
    ) -> (u32, Count) {
        let (ra, rb) = (task.r.0, task.r.0 + 1);
        let mut best = INF_DIST;
        let mut count: Count = 0;
        let mut fold = |hd: u32, hc: Count, d: u32, c: Count| {
            if hd == INF_DIST || d == INF_DIST {
                return;
            }
            let total = hd.saturating_add(d);
            if total < best {
                best = total;
                count = hc.saturating_mul(c);
            } else if total == best && total != INF_DIST {
                count = count.saturating_add(hc.saturating_mul(c));
            }
        };
        for e in index.label_set(v).entries() {
            if e.hub.0 == ra || e.hub.0 == rb {
                continue;
            }
            fold(
                self.pdist[e.hub.index()],
                self.pcount[e.hub.index()],
                e.dist,
                e.count,
            );
        }
        if use_overlay && self.odist[v.index()] != INF_DIST {
            fold(
                self.pdist[ra as usize],
                self.pcount[ra as usize],
                self.odist[v.index()],
                self.ocount[v.index()],
            );
        }
        (best, count)
    }
}

/// One pruned counting BFS from `h` at (new) rank `hr`, identical to the
/// HP-SPC builder's sweep except that reads go through the frozen index +
/// overlay and emissions land in `out` instead of the label rows.
#[allow(clippy::too_many_arguments)]
fn push_hub_frozen(
    g: &UndirectedGraph,
    index: &SpcIndex,
    scratch: &mut ReorderScratch,
    task: &SwapTask,
    h: VertexId,
    hr: Rank,
    record_overlay: bool,
    out: &mut Vec<(u32, LabelEntry)>,
) -> usize {
    if h.index() >= g.capacity() || !g.contains_vertex(h) {
        // Deleted vertices keep a bare self label, exactly as the builder
        // leaves them.
        out.push((h.0, LabelEntry::new(hr, 0, 1)));
        return 0;
    }
    let use_overlay = !record_overlay;
    scratch.reset_bfs();
    scratch.pin(index, h, task, use_overlay);
    scratch.dist[h.index()] = 0;
    scratch.count[h.index()] = 1;
    scratch.touched.push(h.0);
    scratch.queue.push(h.0);
    let mut head = 0usize;
    let mut visited = 0usize;
    while head < scratch.queue.len() {
        let v = scratch.queue[head];
        head += 1;
        visited += 1;
        let dv = scratch.dist[v as usize];
        let (qd, _) = scratch.query(index, VertexId(v), task, use_overlay);
        if qd < dv {
            continue;
        }
        let cv = scratch.count[v as usize];
        out.push((v, LabelEntry::new(hr, dv, cv)));
        if record_overlay {
            scratch.odist[v as usize] = dv;
            scratch.ocount[v as usize] = cv;
            scratch.otouched.push(v);
        }
        for &w in g.neighbors(VertexId(v)) {
            if index.rank(VertexId(w)) <= hr {
                continue;
            }
            let dw = scratch.dist[w as usize];
            if dw == INF_DIST {
                scratch.dist[w as usize] = dv + 1;
                scratch.count[w as usize] = cv;
                scratch.touched.push(w);
                scratch.queue.push(w);
            } else if dw == dv + 1 {
                scratch.count[w as usize] = scratch.count[w as usize].saturating_add(cv);
            }
        }
    }
    visited
}

/// Runs one pair's repair: promoted hub first (recording the overlay),
/// demoted hub second (pruning against it).
fn run_task(
    g: &UndirectedGraph,
    index: &SpcIndex,
    scratch: &mut ReorderScratch,
    task: &SwapTask,
) -> TaskResult {
    scratch.clear_overlay();
    let mut ops = Vec::new();
    let mut visited = push_hub_frozen(
        g,
        index,
        scratch,
        task,
        task.promoted,
        task.r,
        true,
        &mut ops,
    );
    visited += push_hub_frozen(
        g,
        index,
        scratch,
        task,
        task.demoted,
        Rank(task.r.0 + 1),
        false,
        &mut ops,
    );
    scratch.clear_overlay();
    TaskResult { ops, visited }
}

/// Applies a sorted, non-overlapping run of adjacent swaps to `index` and
/// repairs it so the result is bit-identical to a fresh
/// [`crate::build::rebuild_index`] at the swapped order.
///
/// `threads` ≤ 1 runs the pair sweeps inline; larger values fan them out
/// over the persistent wave pool. The committed index is identical at
/// every thread count: sweeps read only the frozen pre-repair snapshot,
/// and the commit applies results in ascending pair order.
pub fn rerank_adjacent(
    g: &UndirectedGraph,
    index: &mut SpcIndex,
    swaps: &[Rank],
    threads: usize,
) -> MaintenanceCounters {
    let mut counters = MaintenanceCounters::default();
    if swaps.is_empty() {
        return counters;
    }
    validate_swaps(swaps, index.ranks().len());

    // Remap the rank positions first: every sweep's rank comparisons must
    // see the post-swap order, and positions outside the swapped pairs
    // compare identically either way.
    for &r in swaps {
        index.swap_adjacent_ranks(r);
    }
    let tasks: Vec<SwapTask> = swaps
        .iter()
        .map(|&r| SwapTask {
            r,
            promoted: index.vertex(r),
            demoted: index.vertex(Rank(r.0 + 1)),
        })
        .collect();

    // Budget the purge scan before any mutation: once this many doomed
    // entries are gone, no vertex further down can carry one.
    let mut purge_budget: u64 = 0;
    for t in &tasks {
        purge_budget += index.hub_entry_count(t.r) as u64;
        purge_budget += index.hub_entry_count(Rank(t.r.0 + 1)) as u64;
    }

    // Non-overlapping pairs share no rank rows, so every task can run in
    // one wave; the schedule is still planned through the PR 9 machinery
    // so its counters stay comparable with batch deletion's.
    let schedule = plan_waves(tasks.len(), |_, _| false);
    let waves: Vec<&[usize]> = schedule.iter().collect();
    if threads > 1 && tasks.len() > 1 {
        note_schedule(&mut counters, &schedule);
    }
    let n = index.ranks().len();
    let mut results: Vec<TaskResult> = Vec::with_capacity(tasks.len());
    let frozen: &SpcIndex = index;
    counters.steal_events += run_wave_pool(
        threads,
        &tasks,
        &waves,
        || ReorderScratch::new(n),
        |scratch, task| run_task(g, frozen, scratch, task),
        |wave_results| results.extend(wave_results),
    );

    // Commit: purge every doomed rank's stale entries in one early-exiting
    // scan, then upsert the fresh entries in ascending pair order.
    let mut doomed = vec![false; n];
    for t in &tasks {
        doomed[t.r.index()] = true;
        doomed[t.r.index() + 1] = true;
    }
    let mut hits: Vec<Rank> = Vec::new();
    for v in 0..n {
        if purge_budget == 0 {
            break;
        }
        let vid = VertexId(v as u32);
        hits.clear();
        hits.extend(
            index
                .label_set(vid)
                .entries()
                .iter()
                .filter(|e| doomed[e.hub.index()])
                .map(|e| e.hub),
        );
        for &hub in &hits {
            index.remove_entry(vid, hub);
            counters.removed += 1;
            purge_budget -= 1;
        }
    }
    for tr in &results {
        counters.vertices_visited += tr.visited;
        for &(v, e) in &tr.ops {
            index.upsert_entry(VertexId(v), e);
            counters.inserted += 1;
        }
    }
    counters.rerank_swaps += tasks.len();
    counters.rerank_sweeps += 2 * tasks.len();
    counters
}

/// Convenience single-swap repair: swap ranks `r` and `r + 1` and restore
/// rebuild-identity, sequentially.
pub fn swap_and_repair(g: &UndirectedGraph, index: &mut SpcIndex, r: Rank) -> MaintenanceCounters {
    rerank_adjacent(g, index, &[r], 1)
}

/// Directed swap repair: applies a sorted, non-overlapping run of adjacent
/// swaps and restores bit-identity with
/// [`crate::directed::build::rebuild_directed_index`] at the swapped order.
///
/// Sequential by construction: after a pair's purge no stale entry of
/// either rank survives in either label family, so the four committed
/// sweeps (promoted forward/backward, demoted forward/backward — the fresh
/// build's per-hub order) each read exactly the state a fresh build would
/// see, and no frozen-snapshot machinery is needed.
pub fn rerank_adjacent_directed(
    g: &DirectedGraph,
    index: &mut DirectedSpcIndex,
    swaps: &[Rank],
) -> MaintenanceCounters {
    let mut counters = MaintenanceCounters::default();
    if swaps.is_empty() {
        return counters;
    }
    let n = index.ranks().len();
    validate_swaps(swaps, n);
    let mut scratch = ReorderScratch::new(n);
    let mut probe = HubProbe::new(n);
    for &r in swaps {
        let rb = Rank(r.0 + 1);
        // Purge both ranks from both families; the directed index keeps no
        // hub-entry counts, so the scan covers every row.
        for v in 0..n {
            let vid = VertexId(v as u32);
            for side in [Side::In, Side::Out] {
                for hub in [r, rb] {
                    if index.label_mut(side, vid).remove(hub).is_some() {
                        counters.removed += 1;
                    }
                }
            }
        }
        index.swap_adjacent_ranks(r);
        let promoted = index.vertex(r);
        let demoted = index.vertex(rb);
        for (h, hr) in [(promoted, r), (demoted, rb)] {
            if h.index() >= g.capacity() || !g.contains_vertex(h) {
                for side in [Side::In, Side::Out] {
                    if index
                        .label_mut(side, h)
                        .upsert(crate::directed::self_entry(hr))
                        .is_none()
                    {
                        counters.inserted += 1;
                    }
                }
                continue;
            }
            for target in [Side::In, Side::Out] {
                counters.vertices_visited += push_hub_directed(
                    g,
                    index,
                    &mut scratch,
                    &mut probe,
                    h,
                    hr,
                    target,
                    &mut counters,
                );
            }
        }
        counters.rerank_swaps += 1;
        counters.rerank_sweeps += 4;
    }
    counters
}

/// One committed directed sweep of hub `h` at (new) rank `hr`, identical
/// to [`crate::directed::build::DirectedBuilder`]'s sweep except that
/// emissions upsert into already-populated label rows (lower-priority
/// hubs' entries are still in place after the purge).
#[allow(clippy::too_many_arguments)]
fn push_hub_directed(
    g: &DirectedGraph,
    index: &mut DirectedSpcIndex,
    scratch: &mut ReorderScratch,
    probe: &mut HubProbe,
    h: VertexId,
    hr: Rank,
    target: Side,
    counters: &mut MaintenanceCounters,
) -> usize {
    scratch.reset_bfs();
    probe.load_labels(index.label(target.opposite(), h), index.ranks().len());
    scratch.dist[h.index()] = 0;
    scratch.count[h.index()] = 1;
    scratch.touched.push(h.0);
    scratch.queue.push(h.0);
    let mut head = 0usize;
    let mut visited = 0usize;
    while head < scratch.queue.len() {
        let v = scratch.queue[head];
        head += 1;
        visited += 1;
        let dv = scratch.dist[v as usize];
        let q = probe.query(index.label(target, VertexId(v)));
        if q.dist < dv {
            continue;
        }
        let cv = scratch.count[v as usize];
        if index
            .label_mut(target, VertexId(v))
            .upsert(LabelEntry::new(hr, dv, cv))
            .is_none()
        {
            counters.inserted += 1;
        }
        let neighbors = match target {
            Side::In => g.out_neighbors(VertexId(v)),
            Side::Out => g.in_neighbors(VertexId(v)),
        };
        for &w in neighbors {
            if index.rank(VertexId(w)) <= hr {
                continue;
            }
            let dw = scratch.dist[w as usize];
            if dw == INF_DIST {
                scratch.dist[w as usize] = dv + 1;
                scratch.count[w as usize] = cv;
                scratch.touched.push(w);
                scratch.queue.push(w);
            } else if dw == dv + 1 {
                scratch.count[w as usize] = scratch.count[w as usize].saturating_add(cv);
            }
        }
    }
    visited
}

/// Weighted swap repair: applies a sorted, non-overlapping run of adjacent
/// swaps and restores bit-identity with
/// [`crate::weighted::build::rebuild_weighted_index`] at the swapped order.
///
/// Sequential committed repair, like the directed variant: purge both
/// ranks everywhere, remap, then re-run the two hubs' Dijkstra sweeps in
/// the new order (two sweeps per swap).
pub fn rerank_adjacent_weighted(
    g: &WeightedGraph,
    index: &mut WeightedSpcIndex,
    swaps: &[Rank],
) -> MaintenanceCounters {
    let mut counters = MaintenanceCounters::default();
    if swaps.is_empty() {
        return counters;
    }
    let n = index.ranks().len();
    validate_swaps(swaps, n);
    let mut scratch = WeightedReorderScratch::new(n);
    for &r in swaps {
        let rb = Rank(r.0 + 1);
        for v in 0..n {
            let vid = VertexId(v as u32);
            for hub in [r, rb] {
                if index.label_set_mut(vid).remove(hub).is_some() {
                    counters.removed += 1;
                }
            }
        }
        index.swap_adjacent_ranks(r);
        let promoted = index.vertex(r);
        let demoted = index.vertex(rb);
        for (h, hr) in [(promoted, r), (demoted, rb)] {
            if h.index() >= g.capacity() || !g.contains_vertex(h) {
                if index
                    .label_set_mut(h)
                    .upsert(WLabelEntry::new(hr, 0, 1))
                    .is_none()
                {
                    counters.inserted += 1;
                }
                continue;
            }
            counters.vertices_visited += scratch.push_hub(g, index, h, hr, &mut counters.inserted);
        }
        counters.rerank_swaps += 1;
        counters.rerank_sweeps += 2;
    }
    counters
}

/// Dijkstra workspace for weighted swap repair — the committed twin of
/// [`crate::weighted::build::WeightedBuilder`]'s sweep, emitting via
/// upsert.
struct WeightedReorderScratch {
    dist: Vec<dspc_graph::weighted::WDist>,
    count: Vec<Count>,
    settled: Vec<bool>,
    heap: BinaryHeap<Reverse<(dspc_graph::weighted::WDist, u32)>>,
    touched: Vec<u32>,
    probe: WHubProbe,
}

impl WeightedReorderScratch {
    fn new(capacity: usize) -> Self {
        WeightedReorderScratch {
            dist: vec![WDIST_INF; capacity],
            count: vec![0; capacity],
            settled: vec![false; capacity],
            heap: BinaryHeap::new(),
            touched: Vec::new(),
            probe: WHubProbe::new(capacity),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = WDIST_INF;
            self.count[v as usize] = 0;
            self.settled[v as usize] = false;
        }
        self.touched.clear();
        self.heap.clear();
    }

    fn push_hub(
        &mut self,
        g: &WeightedGraph,
        index: &mut WeightedSpcIndex,
        h: VertexId,
        hr: Rank,
        inserted: &mut usize,
    ) -> usize {
        self.reset();
        self.probe.load(index, h);
        self.dist[h.index()] = 0;
        self.count[h.index()] = 1;
        self.touched.push(h.0);
        self.heap.push(Reverse((0, h.0)));
        let mut visited = 0usize;
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if self.settled[v as usize] {
                continue;
            }
            self.settled[v as usize] = true;
            visited += 1;
            let q = self.probe.query_limited(index.label_set(VertexId(v)), None);
            if q.dist < d {
                continue;
            }
            let cv = self.count[v as usize];
            if index
                .label_set_mut(VertexId(v))
                .upsert(WLabelEntry::new(hr, d, cv))
                .is_none()
            {
                *inserted += 1;
            }
            for &(w, wt) in g.neighbors(VertexId(v)) {
                if index.rank(VertexId(w)) <= hr {
                    continue;
                }
                let nd = d + wt as dspc_graph::weighted::WDist;
                let dw = self.dist[w as usize];
                if nd < dw {
                    if dw == WDIST_INF {
                        self.touched.push(w);
                    }
                    self.dist[w as usize] = nd;
                    self.count[w as usize] = cv;
                    self.heap.push(Reverse((nd, w)));
                } else if nd == dw {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::rebuild_index;
    use crate::order::{plan_adjacent_swaps, OrderingStrategy, RankMap};
    use dspc_graph::generators::classic::{grid_graph, star_graph};
    use dspc_graph::generators::random::{barabasi_albert, erdos_renyi_gnm};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn swapped_order(ranks: &RankMap, swaps: &[Rank]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..ranks.len() as u32)
            .map(|r| ranks.vertex(Rank(r)).0)
            .collect();
        for &r in swaps {
            order.swap(r.index(), r.index() + 1);
        }
        order
    }

    fn assert_rebuild_identical(
        g: &UndirectedGraph,
        index: &SpcIndex,
        base: &RankMap,
        swaps: &[Rank],
    ) {
        let order = swapped_order(base, swaps);
        let fresh = rebuild_index(g, RankMap::from_rank_order(&order, base.strategy()));
        assert_eq!(index, &fresh, "re-ranked index differs from rebuild");
    }

    #[test]
    fn single_swap_matches_rebuild_on_classics() {
        for g in [star_graph(8), grid_graph(4, 4)] {
            let base = RankMap::build(&g, OrderingStrategy::Identity);
            for r in 0..g.capacity() - 1 {
                let mut index = rebuild_index(&g, base.clone());
                let c = swap_and_repair(&g, &mut index, Rank(r as u32));
                assert_eq!(c.rerank_swaps, 1);
                assert_eq!(c.rerank_sweeps, 2);
                index.check_invariants().unwrap();
                assert_rebuild_identical(&g, &index, &base, &[Rank(r as u32)]);
            }
        }
    }

    #[test]
    fn random_graph_swaps_match_rebuild() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..8 {
            let n = rng.gen_range(12..40);
            let m = rng.gen_range(n..3 * n);
            let g = erdos_renyi_gnm(n, m.min(n * (n - 1) / 2), &mut rng);
            let base = RankMap::build(&g, OrderingStrategy::Degree);
            let mut index = rebuild_index(&g, base.clone());
            let r = Rank(rng.gen_range(0..n as u32 - 1));
            swap_and_repair(&g, &mut index, r);
            index.check_invariants().unwrap();
            assert_rebuild_identical(&g, &index, &base, &[r]);
        }
    }

    #[test]
    fn batched_swaps_match_rebuild_at_every_thread_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(60, 3, &mut rng);
        let base = RankMap::build(&g, OrderingStrategy::Random(5));
        let swaps = plan_adjacent_swaps(&g, &base, 8);
        assert!(swaps.len() > 1, "expected multiple inversions to plan");
        let mut reference: Option<SpcIndex> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut index = rebuild_index(&g, base.clone());
            let c = rerank_adjacent(&g, &mut index, &swaps, threads);
            assert_eq!(c.rerank_swaps, swaps.len());
            index.check_invariants().unwrap();
            assert_rebuild_identical(&g, &index, &base, &swaps);
            match &reference {
                None => reference = Some(index),
                Some(prev) => assert_eq!(prev, &index, "thread count changed the result"),
            }
        }
    }

    #[test]
    fn swap_with_deleted_vertex_keeps_bare_self_label() {
        let mut g = star_graph(6);
        g.delete_vertex(VertexId(3)).unwrap();
        let base = RankMap::build(&g, OrderingStrategy::Identity);
        for r in 0..5u32 {
            let mut index = rebuild_index(&g, base.clone());
            swap_and_repair(&g, &mut index, Rank(r));
            index.check_invariants().unwrap();
            assert_rebuild_identical(&g, &index, &base, &[Rank(r)]);
        }
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn overlapping_swaps_rejected() {
        let g = star_graph(5);
        let base = RankMap::build(&g, OrderingStrategy::Degree);
        let mut index = rebuild_index(&g, base);
        rerank_adjacent(&g, &mut index, &[Rank(1), Rank(2)], 1);
    }

    #[test]
    fn directed_swaps_match_rebuild() {
        use crate::directed::build::rebuild_directed_index;
        use crate::directed::DirectedRankMap;
        use dspc_graph::generators::random::random_orientation;

        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..6 {
            let base_g = erdos_renyi_gnm(25, 60, &mut rng);
            let g = random_orientation(&base_g, 0.3, &mut rng);
            let n = g.capacity() as u32;
            let base: Vec<u32> = {
                let r = DirectedRankMap::build(&g, OrderingStrategy::Degree);
                (0..n).map(|i| r.vertex(Rank(i)).0).collect()
            };
            let mut index = rebuild_directed_index(&g, DirectedRankMap::from_rank_order(&base));
            let swaps = [Rank(rng.gen_range(0..n / 2)), Rank(n / 2 + 1)];
            let c = rerank_adjacent_directed(&g, &mut index, &swaps);
            assert_eq!(c.rerank_swaps, 2);
            assert_eq!(c.rerank_sweeps, 8);
            index.check_invariants().unwrap();
            let mut order = base.clone();
            for &r in &swaps {
                order.swap(r.index(), r.index() + 1);
            }
            let fresh = rebuild_directed_index(&g, DirectedRankMap::from_rank_order(&order));
            assert_eq!(index, fresh, "directed re-rank differs from rebuild");
        }
    }

    #[test]
    fn weighted_swaps_match_rebuild() {
        use crate::weighted::build::rebuild_weighted_index;
        use dspc_graph::generators::random::random_weights;

        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..6 {
            let base_g = erdos_renyi_gnm(25, 60, &mut rng);
            let g = random_weights(&base_g, 6, &mut rng);
            let n = g.capacity() as u32;
            let base = crate::weighted::build::build_weighted_index(&g, OrderingStrategy::Degree)
                .ranks()
                .clone();
            let mut index = rebuild_weighted_index(&g, base.clone());
            let swaps = [Rank(rng.gen_range(0..n / 2)), Rank(n / 2 + 1)];
            let c = rerank_adjacent_weighted(&g, &mut index, &swaps);
            assert_eq!(c.rerank_swaps, 2);
            assert_eq!(c.rerank_sweeps, 4);
            index.check_invariants().unwrap();
            let order = swapped_order(&base, &swaps);
            let fresh =
                rebuild_weighted_index(&g, RankMap::from_rank_order(&order, base.strategy()));
            assert_eq!(index, fresh, "weighted re-rank differs from rebuild");
        }
    }
}
