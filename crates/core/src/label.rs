//! Label entries and per-vertex label sets — the building blocks of the
//! SPC-Index (§2.2).
//!
//! A label `(h, d, c) ∈ L(v)` states: the shortest distance from hub `h` to
//! `v` is `d`, and `c = spc(ĥ, v)` — the number of shortest `h`–`v` paths on
//! which `h` is the highest-ranked vertex. Hubs are stored as **ranks**
//! (position in the total order, `0` = highest) so rank comparisons are
//! plain integer compares and label sets merge in rank order.
//!
//! The paper packs each entry into a 64-bit integer (25 bits hub, 10 bits
//! distance, 29 bits count — §4.1). The in-memory working set uses full-width
//! fields (web-scale counts overflow 29 bits on adversarial inputs); the
//! packed form is provided for storage parity and serialization.

use serde::{Deserialize, Serialize};

/// A position in the vertex total order; `Rank(0)` is the highest rank.
///
/// The paper writes `v ≤ u` for "`v` ranks at least as high as `u`"; here
/// that is simply `rank(v).0 <= rank(u).0`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// Index view.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Distance sentinel meaning "unreachable".
pub const INF_DIST: u32 = u32::MAX;

/// Shortest-path count. All arithmetic on counts is saturating: counts grow
/// exponentially with graph size in the worst case and a saturated count
/// still orders correctly for the applications (ranking, betweenness).
pub type Count = u64;

/// One hub label `(hub, dist, count)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LabelEntry {
    /// Rank of the hub vertex.
    pub hub: Rank,
    /// Shortest distance from the hub.
    pub dist: u32,
    /// `spc(ĥ, v)`: shortest paths on which the hub is the highest-ranked
    /// vertex.
    pub count: Count,
}

impl LabelEntry {
    /// Convenience constructor.
    #[inline]
    pub fn new(hub: Rank, dist: u32, count: Count) -> Self {
        LabelEntry { hub, dist, count }
    }
}

/// Bit widths of the paper's packed encoding (§4.1): 25-bit hub, 10-bit
/// distance, 29-bit count.
pub mod packed {
    use super::{Count, LabelEntry, Rank};

    /// Bits for the hub field.
    pub const HUB_BITS: u32 = 25;
    /// Bits for the distance field.
    pub const DIST_BITS: u32 = 10;
    /// Bits for the count field.
    pub const COUNT_BITS: u32 = 29;

    /// Maximum hub rank representable.
    pub const MAX_HUB: u32 = (1 << HUB_BITS) - 1;
    /// Maximum distance representable.
    pub const MAX_DIST: u32 = (1 << DIST_BITS) - 1;
    /// Maximum count representable; larger counts saturate.
    pub const MAX_COUNT: u64 = (1 << COUNT_BITS) - 1;

    /// A label entry packed into one 64-bit word, exactly as the paper's
    /// implementation stores it.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct PackedLabel(pub u64);

    /// Packs an entry. Distance and hub must fit their fields; the count
    /// saturates at [`MAX_COUNT`].
    ///
    /// # Errors
    /// Returns `None` when the hub or distance exceeds its field width
    /// (the caller decides whether to fall back to the wide format).
    pub fn pack(e: LabelEntry) -> Option<PackedLabel> {
        if e.hub.0 > MAX_HUB || e.dist > MAX_DIST {
            return None;
        }
        let count = e.count.min(MAX_COUNT);
        Some(PackedLabel(
            ((e.hub.0 as u64) << (DIST_BITS + COUNT_BITS))
                | ((e.dist as u64) << COUNT_BITS)
                | count,
        ))
    }

    /// Unpacks an entry.
    pub fn unpack(p: PackedLabel) -> LabelEntry {
        LabelEntry {
            hub: Rank((p.0 >> (DIST_BITS + COUNT_BITS)) as u32 & MAX_HUB),
            dist: (p.0 >> COUNT_BITS) as u32 & MAX_DIST,
            count: (p.0 & MAX_COUNT) as Count,
        }
    }
}

/// A vertex's label set `L(v)`: entries sorted by hub rank ascending
/// (highest-ranked hub first), unique hubs.
///
/// Sorted order gives `O(log l)` point lookups, `O(l_s + l_t)` merge
/// queries, and a natural prefix for the paper's `PreQUERY` (stop at the
/// first hub not higher-ranked than the query source).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSet {
    entries: Vec<LabelEntry>,
}

impl LabelSet {
    /// An empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Label set containing only the self label `(rank, 0, 1)` — every
    /// vertex carries its own hub (Table 2's diagonal).
    pub fn self_only(rank: Rank) -> Self {
        LabelSet {
            entries: vec![LabelEntry::new(rank, 0, 1)],
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted entry slice.
    #[inline]
    pub fn entries(&self) -> &[LabelEntry] {
        &self.entries
    }

    /// Position of `hub`, if present.
    #[inline]
    pub fn position(&self, hub: Rank) -> Option<usize> {
        self.entries.binary_search_by_key(&hub, |e| e.hub).ok()
    }

    /// Entry for `hub`, if present.
    #[inline]
    pub fn get(&self, hub: Rank) -> Option<&LabelEntry> {
        self.position(hub).map(|i| &self.entries[i])
    }

    /// Whether `hub` labels this vertex (the paper's `h ∈ L(v)`).
    #[inline]
    pub fn contains(&self, hub: Rank) -> bool {
        self.position(hub).is_some()
    }

    /// Inserts or replaces the entry for `e.hub`. Returns the previous
    /// entry if one existed.
    pub fn upsert(&mut self, e: LabelEntry) -> Option<LabelEntry> {
        match self.entries.binary_search_by_key(&e.hub, |x| x.hub) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i], e)),
            Err(i) => {
                self.entries.insert(i, e);
                None
            }
        }
    }

    /// Removes the entry for `hub`, returning it if present.
    pub fn remove(&mut self, hub: Rank) -> Option<LabelEntry> {
        match self.entries.binary_search_by_key(&hub, |x| x.hub) {
            Ok(i) => Some(self.entries.remove(i)),
            Err(_) => None,
        }
    }

    /// Appends an entry that must have a hub rank larger than every current
    /// entry — the construction algorithm emits labels in descending hub
    /// rank, so this is its `O(1)` fast path.
    pub fn push_descending(&mut self, e: LabelEntry) {
        debug_assert!(
            self.entries.last().is_none_or(|last| last.hub < e.hub),
            "push_descending out of order"
        );
        self.entries.push(e);
    }

    /// Clears all entries except a fresh self label — used by the isolated
    /// vertex deletion optimization (§3.2.3). Returns how many non-self
    /// entries were dropped.
    pub fn reset_to_self(&mut self, rank: Rank) -> usize {
        // One binary search instead of a full counting pass: everything
        // drops except a present self label.
        let dropped = self.entries.len() - usize::from(self.contains(rank));
        self.entries.clear();
        self.entries.push(LabelEntry::new(rank, 0, 1));
        dropped
    }

    /// Removes every entry (the construction algorithm re-emits all labels
    /// from scratch, including self labels).
    pub fn clear_all(&mut self) {
        self.entries.clear();
    }

    /// In-memory size in bytes (wide format) of the *live* entries alone —
    /// `len × 16`. See [`LabelSet::memory_byte_size`] for the real heap
    /// footprint.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.entries.len() * std::mem::size_of::<LabelEntry>()
    }

    /// Actual in-memory footprint of this set: the `LabelSet` struct itself
    /// (the `Vec` header) plus the heap block the `Vec` owns — which is
    /// sized by *capacity*, not length. After churn-heavy maintenance,
    /// capacity routinely exceeds length, so this is what resident memory
    /// actually pays per vertex.
    #[inline]
    pub fn memory_byte_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.capacity() * std::mem::size_of::<LabelEntry>()
    }

    /// Size in bytes under the paper's packed 64-bit encoding.
    #[inline]
    pub fn packed_byte_size(&self) -> usize {
        self.entries.len() * 8
    }

    /// Structural invariants: strictly increasing hub ranks.
    pub fn is_sorted_strict(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].hub < w[1].hub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(h: u32, d: u32, c: Count) -> LabelEntry {
        LabelEntry::new(Rank(h), d, c)
    }

    #[test]
    fn self_only_set() {
        let l = LabelSet::self_only(Rank(5));
        assert_eq!(l.len(), 1);
        assert_eq!(l.get(Rank(5)), Some(&e(5, 0, 1)));
        assert!(l.is_sorted_strict());
    }

    #[test]
    fn upsert_keeps_order_and_replaces() {
        let mut l = LabelSet::new();
        assert_eq!(l.upsert(e(4, 2, 1)), None);
        assert_eq!(l.upsert(e(1, 3, 2)), None);
        assert_eq!(l.upsert(e(9, 1, 1)), None);
        assert!(l.is_sorted_strict());
        assert_eq!(l.upsert(e(4, 5, 7)), Some(e(4, 2, 1)));
        assert_eq!(l.get(Rank(4)), Some(&e(4, 5, 7)));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn remove_entry() {
        let mut l = LabelSet::new();
        l.upsert(e(1, 1, 1));
        l.upsert(e(2, 2, 2));
        assert_eq!(l.remove(Rank(1)), Some(e(1, 1, 1)));
        assert_eq!(l.remove(Rank(1)), None);
        assert_eq!(l.len(), 1);
        assert!(!l.contains(Rank(1)));
        assert!(l.contains(Rank(2)));
    }

    #[test]
    fn push_descending_fast_path() {
        let mut l = LabelSet::new();
        l.push_descending(e(0, 2, 1));
        l.push_descending(e(3, 1, 1));
        l.push_descending(e(7, 0, 1));
        assert!(l.is_sorted_strict());
        assert_eq!(l.len(), 3);
    }

    #[test]
    #[should_panic(expected = "push_descending out of order")]
    #[cfg(debug_assertions)]
    fn push_descending_checks_order() {
        let mut l = LabelSet::new();
        l.push_descending(e(5, 1, 1));
        l.push_descending(e(2, 1, 1));
    }

    #[test]
    fn reset_to_self_counts_drops() {
        let mut l = LabelSet::new();
        l.upsert(e(0, 1, 1));
        l.upsert(e(2, 2, 3));
        l.upsert(e(5, 0, 1));
        assert_eq!(l.reset_to_self(Rank(5)), 2);
        assert_eq!(l.entries(), &[e(5, 0, 1)]);
    }

    #[test]
    fn byte_sizes() {
        let mut l = LabelSet::new();
        l.upsert(e(0, 1, 1));
        l.upsert(e(1, 1, 1));
        assert_eq!(l.packed_byte_size(), 16);
        assert_eq!(l.byte_size(), 2 * std::mem::size_of::<LabelEntry>());
    }

    #[test]
    fn packed_round_trip() {
        let entry = e(123_456, 731, 400_000_000);
        let p = packed::pack(entry).unwrap();
        assert_eq!(packed::unpack(p), entry);
    }

    #[test]
    fn packed_saturates_count() {
        let entry = e(1, 1, u64::MAX);
        let p = packed::pack(entry).unwrap();
        assert_eq!(packed::unpack(p).count, packed::MAX_COUNT);
    }

    #[test]
    fn packed_rejects_oversized_fields() {
        assert!(packed::pack(e(packed::MAX_HUB + 1, 0, 0)).is_none());
        assert!(packed::pack(e(0, packed::MAX_DIST + 1, 0)).is_none());
        assert!(packed::pack(e(packed::MAX_HUB, packed::MAX_DIST, 1)).is_some());
    }

    #[test]
    fn packed_extremes_round_trip() {
        let entry = e(packed::MAX_HUB, packed::MAX_DIST, packed::MAX_COUNT);
        assert_eq!(packed::unpack(packed::pack(entry).unwrap()), entry);
        let zero = e(0, 0, 0);
        assert_eq!(packed::unpack(packed::pack(zero).unwrap()), zero);
    }
}
