//! Parallel batch query evaluation and shared thread-pool plumbing.
//!
//! §6 of the paper explains why parallel *updates* are hard (strict rank
//! order dependencies between hubs) and leaves them as future work. Query
//! evaluation, by contrast, is embarrassingly parallel: the index is
//! immutable between updates, and each `SpcQUERY` touches only two label
//! sets. This module fans a query batch across scoped threads — the shape a
//! serving deployment of the paper's system would use between update
//! epochs.
//!
//! The same scoped-thread fan-out now also backs the *maintenance* side:
//! [`crate::engine::parallel`] partitions a repair agenda into
//! rank-independent waves and runs each wave through the crate-internal
//! `fan_out` helper below, governed by the [`MaintenanceThreads`] knob on
//! the dynamic facades.

use crate::index::SpcIndex;
use crate::query::{spc_query, QueryResult};
use dspc_graph::VertexId;

/// Thread budget for intra-batch index maintenance (the knob behind
/// `DynamicSpc::set_maintenance_threads` and the directed/weighted
/// equivalents).
///
/// * [`MaintenanceThreads::Auto`] (the default) resolves to
///   `std::thread::available_parallelism()`.
/// * [`MaintenanceThreads::Fixed(1)`](MaintenanceThreads::Fixed)
///   degenerates to the sequential repair path exactly — same sweeps, same
///   counters, same code.
///
/// Any resolved count is only a *budget*: the wave scheduler never runs
/// two rank-dependent hub sweeps concurrently, so results (index contents,
/// query answers, and label-operation counters) are identical at every
/// thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MaintenanceThreads {
    /// Use `std::thread::available_parallelism()` (fallback 1).
    #[default]
    Auto,
    /// Use exactly this many worker threads (clamped to at least 1).
    Fixed(usize),
}

impl MaintenanceThreads {
    /// The concrete thread count this knob stands for.
    pub fn resolve(self) -> usize {
        match self {
            MaintenanceThreads::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            MaintenanceThreads::Fixed(n) => n.max(1),
        }
    }
}

/// Splits `len` items into exactly `min(parts, len)` contiguous chunk
/// lengths differing by at most one — so every spawned thread has work
/// (a naive `len.div_ceil(parts)` chunk size can leave trailing threads
/// without a chunk when `len % parts` is small).
pub(crate) fn chunk_lengths(len: usize, parts: usize) -> impl Iterator<Item = usize> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    (0..parts).map(move |i| base + usize::from(i < extra))
}

/// Runs `work` over `items` on up to `threads` scoped worker threads, each
/// with its own scratch from `make_scratch`, returning results in input
/// order. `threads <= 1` (or a single item) runs inline on the caller's
/// thread with one scratch — the degenerate sequential path.
pub(crate) fn fan_out<T, S, R, FS, FW>(
    items: &[T],
    threads: usize,
    make_scratch: FS,
    work: FW,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut scratch = make_scratch();
        return items.iter().map(|t| work(&mut scratch, t)).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let (make_scratch, work) = (&make_scratch, &work);
    std::thread::scope(|scope| {
        let mut rest_items = items;
        let mut rest_out = &mut out[..];
        for chunk in chunk_lengths(items.len(), threads) {
            let (item_chunk, next_items) = rest_items.split_at(chunk);
            let (out_chunk, next_out) = rest_out.split_at_mut(chunk);
            rest_items = next_items;
            rest_out = next_out;
            scope.spawn(move || {
                let mut scratch = make_scratch();
                for (item, slot) in item_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(work(&mut scratch, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Evaluates `pairs` in parallel on `threads` OS threads (clamped to the
/// batch size; `threads == 1` degenerates to the sequential path). Results
/// are in input order. Chunks are sized so that every spawned thread has
/// at least one pair to evaluate.
pub fn par_batch_query(
    index: &SpcIndex,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<QueryResult> {
    let threads = threads.clamp(1, pairs.len().max(1));
    fan_out(pairs, threads, || (), |(), &(s, t)| spc_query(index, s, t))
}

/// [`par_batch_query`] with the thread count taken from the machine:
/// `std::thread::available_parallelism()`, falling back to sequential
/// evaluation when the hardware does not report one. This is the entry
/// point a serving deployment should reach for — callers pick an explicit
/// thread count only when partitioning cores across components.
pub fn par_batch_query_auto(index: &SpcIndex, pairs: &[(VertexId, VertexId)]) -> Vec<QueryResult> {
    par_batch_query(index, pairs, MaintenanceThreads::Auto.resolve())
}

/// Evaluates `pairs` sequentially — the comparison baseline for
/// [`par_batch_query`] and the convenience entry point for small batches.
pub fn batch_query(index: &SpcIndex, pairs: &[(VertexId, VertexId)]) -> Vec<QueryResult> {
    pairs.iter().map(|&(s, t)| spc_query(index, s, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = barabasi_albert(300, 3, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let pairs: Vec<_> = (0..1000)
            .map(|_| {
                (
                    VertexId(rng.gen_range(0..300)),
                    VertexId(rng.gen_range(0..300)),
                )
            })
            .collect();
        let seq = batch_query(&index, &pairs);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_batch_query(&index, &pairs, threads), seq);
        }
    }

    #[test]
    fn auto_thread_count_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = barabasi_albert(200, 3, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let pairs: Vec<_> = (0..600)
            .map(|_| {
                (
                    VertexId(rng.gen_range(0..200)),
                    VertexId(rng.gen_range(0..200)),
                )
            })
            .collect();
        assert_eq!(
            par_batch_query_auto(&index, &pairs),
            batch_query(&index, &pairs)
        );
        assert!(par_batch_query_auto(&index, &[]).is_empty());
    }

    #[test]
    fn empty_and_tiny_batches() {
        let g = dspc_graph::generators::classic::path_graph(3);
        let index = build_index(&g, OrderingStrategy::Degree);
        assert!(par_batch_query(&index, &[], 4).is_empty());
        let one = par_batch_query(&index, &[(VertexId(0), VertexId(2))], 4);
        assert_eq!(one[0].as_option(), Some((2, 1)));
    }

    #[test]
    fn awkward_remainders_still_match_sequential() {
        // The old div_ceil chunking collapsed 9 pairs / 8 threads into 5
        // uneven chunks; the balanced split must keep results identical
        // while giving every spawned thread work.
        let mut rng = StdRng::seed_from_u64(33);
        let g = barabasi_albert(60, 2, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        for (len, threads) in [(9usize, 8usize), (3, 16), (17, 4), (8, 8), (5, 2)] {
            let pairs: Vec<_> = (0..len)
                .map(|_| {
                    (
                        VertexId(rng.gen_range(0..60)),
                        VertexId(rng.gen_range(0..60)),
                    )
                })
                .collect();
            assert_eq!(
                par_batch_query(&index, &pairs, threads),
                batch_query(&index, &pairs),
                "len={len} threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_lengths_cover_everything_without_empty_chunks() {
        for (len, parts) in [(9usize, 8usize), (3, 16), (16, 4), (1, 1), (7, 7), (10, 3)] {
            let chunks: Vec<usize> = chunk_lengths(len, parts).collect();
            assert_eq!(chunks.iter().sum::<usize>(), len, "len={len} parts={parts}");
            assert_eq!(chunks.len(), parts.min(len).max(1));
            assert!(chunks.iter().all(|&c| c >= 1) || len == 0);
            let (min, max) = (chunks.iter().min(), chunks.iter().max());
            assert!(max.unwrap() - min.unwrap() <= 1, "balanced split");
        }
    }

    #[test]
    fn maintenance_threads_resolution() {
        assert!(MaintenanceThreads::Auto.resolve() >= 1);
        assert_eq!(MaintenanceThreads::Fixed(0).resolve(), 1);
        assert_eq!(MaintenanceThreads::Fixed(6).resolve(), 6);
        assert_eq!(MaintenanceThreads::default(), MaintenanceThreads::Auto);
    }

    #[test]
    fn fan_out_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1usize, 2, 5, 64] {
            let out = fan_out(
                &items,
                threads,
                || 0usize,
                |scratch, &i| {
                    *scratch += 1;
                    i * 3
                },
            );
            assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
        }
    }
}
