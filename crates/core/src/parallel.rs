//! Parallel batch query evaluation and shared thread-pool plumbing.
//!
//! §6 of the paper explains why parallel *updates* are hard (strict rank
//! order dependencies between hubs) and leaves them as future work. Query
//! evaluation, by contrast, is embarrassingly parallel: the index is
//! immutable between updates, and each `SpcQUERY` touches only two label
//! sets. This module fans a query batch across scoped threads — the shape a
//! serving deployment of the paper's system would use between update
//! epochs.
//!
//! The same scoped-thread fan-out now also backs the *maintenance* side:
//! [`crate::engine::parallel`] partitions a repair agenda into
//! rank-independent waves and runs each wave through the crate-internal
//! `fan_out` helper below, governed by the [`MaintenanceThreads`] knob on
//! the dynamic facades.

use crate::flat::{FlatIndex, FlatScratch};
use crate::index::SpcIndex;
use crate::query::{spc_query, QueryResult};
use dspc_graph::VertexId;

/// Target number of query pairs per worker thread for
/// [`par_batch_query_auto`]. Spawning an OS thread costs on the order of
/// tens of microseconds — several thousand label-merge queries — so the
/// auto entry point only spawns when every worker gets at least this many
/// pairs, and otherwise runs inline on the caller's thread.
pub const PAIRS_PER_THREAD: usize = 256;

/// Alignment (in pairs) of the per-thread chunks carved by
/// [`par_batch_query`]. Matching the flat layout's cache granularity — 8
/// entries of the 4-byte `hubs` column fill a half cache line per slice
/// head — keeps each spawned worker streaming contiguous column ranges
/// instead of interleaving with its neighbor at the chunk seam. Only the
/// final chunk may be shorter.
pub const QUERY_CHUNK_ALIGN: usize = 8;

/// Thread budget for intra-batch index maintenance (the knob behind
/// `DynamicSpc::set_maintenance_threads` and the directed/weighted
/// equivalents).
///
/// * [`MaintenanceThreads::Auto`] (the default) resolves to
///   `std::thread::available_parallelism()`.
/// * [`MaintenanceThreads::Fixed(1)`](MaintenanceThreads::Fixed)
///   degenerates to the sequential repair path exactly — same sweeps, same
///   counters, same code.
///
/// Any resolved count is only a *budget*: the wave scheduler never runs
/// two rank-dependent hub sweeps concurrently, so results (index contents,
/// query answers, and label-operation counters) are identical at every
/// thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MaintenanceThreads {
    /// Use `std::thread::available_parallelism()` (fallback 1).
    #[default]
    Auto,
    /// Use exactly this many worker threads (clamped to at least 1).
    Fixed(usize),
}

impl MaintenanceThreads {
    /// The concrete thread count this knob stands for.
    pub fn resolve(self) -> usize {
        match self {
            MaintenanceThreads::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            MaintenanceThreads::Fixed(n) => n.max(1),
        }
    }
}

/// How a deletion batch classifies affected vertices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClassifyMode {
    /// One multi-far sweep per distinct doomed endpoint
    /// ([`crate::engine::UpdateEngine::multi_far_pass`]): per-far count
    /// columns are summed per shared far endpoint, so condition **B**
    /// sees the *total* doomed path count. The default, and the only
    /// sound mode for batches whose doomed edges share endpoints.
    #[default]
    MultiFar,
    /// The legacy two-sweeps-per-edge classification (`srr_pass` per
    /// side). Kept as an ablation/regression knob: on batches with
    /// shared endpoints its per-edge condition-**B** comparison
    /// undercounts `spc(v, far)` and can misread SR as R (see
    /// `tests/mixed_frontier.rs`) — do not use it outside tests.
    PerEdge,
}

/// How a coalesced batch scopes its repair agenda.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AgendaScope {
    /// One agenda for the entire net-deletion set: hubs and receivers
    /// deduplicate across former per-endpoint groups, repair waves span
    /// group boundaries, and every sweep observes the whole deleted set
    /// as absent. The default.
    #[default]
    Global,
    /// The pre-unification behavior: one agenda (and one wave schedule)
    /// per higher-ranked-endpoint deletion group. Kept as an ablation
    /// knob for comparing sweep counts.
    PerGroup,
}

/// The unified batch-maintenance configuration accepted by every
/// `*_with` entry point (`apply_batch_with`, `delete_edges_with`,
/// `delete_arcs_with`) — replacing the former `delete_*` /
/// `delete_*_with_threads` method pairs.
///
/// `MaintenanceOptions::default()` is the recommended configuration:
/// auto thread budget, multi-far classification, global agenda.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceOptions {
    /// Worker-thread budget for classification fan-out and repair waves.
    pub threads: MaintenanceThreads,
    /// Classification strategy (multi-far vs legacy per-edge).
    pub classify: ClassifyMode,
    /// Agenda scope (global vs legacy per-group).
    pub scope: AgendaScope,
}

impl MaintenanceOptions {
    /// Default options with an explicit thread budget — what the facade
    /// `maintenance_threads` knob and the deprecated `*_with_threads`
    /// shims translate to.
    pub fn with_threads(threads: MaintenanceThreads) -> Self {
        MaintenanceOptions {
            threads,
            ..MaintenanceOptions::default()
        }
    }

    /// Default options pinned to one worker thread (the exact sequential
    /// path).
    pub fn sequential() -> Self {
        Self::with_threads(MaintenanceThreads::Fixed(1))
    }
}

/// Splits `len` items into exactly `min(parts, len)` contiguous chunk
/// lengths differing by at most one — so every spawned thread has work
/// (a naive `len.div_ceil(parts)` chunk size can leave trailing threads
/// without a chunk when `len % parts` is small).
pub(crate) fn chunk_lengths(len: usize, parts: usize) -> impl Iterator<Item = usize> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    (0..parts).map(move |i| base + usize::from(i < extra))
}

/// Runs `work` over `items` on up to `threads` scoped worker threads, each
/// with its own scratch from `make_scratch`, returning results in input
/// order. `threads <= 1` (or a single item) runs inline on the caller's
/// thread with one scratch — the degenerate sequential path.
pub(crate) fn fan_out<T, S, R, FS, FW>(
    items: &[T],
    threads: usize,
    make_scratch: FS,
    work: FW,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, &T) -> R + Sync,
{
    let chunks: Vec<usize> = chunk_lengths(items.len(), threads).collect();
    fan_out_chunks(items, &chunks, make_scratch, work)
}

/// [`fan_out`] with explicit precomputed chunk lengths (one spawned thread
/// per chunk). A single chunk — or a single item — runs inline on the
/// caller's thread. The chunk lengths must sum to `items.len()`.
pub(crate) fn fan_out_chunks<T, S, R, FS, FW>(
    items: &[T],
    chunks: &[usize],
    make_scratch: FS,
    work: FW,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, &T) -> R + Sync,
{
    debug_assert_eq!(chunks.iter().sum::<usize>(), items.len());
    if chunks.len() <= 1 || items.len() <= 1 {
        let mut scratch = make_scratch();
        return items.iter().map(|t| work(&mut scratch, t)).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let (make_scratch, work) = (&make_scratch, &work);
    std::thread::scope(|scope| {
        let mut rest_items = items;
        let mut rest_out = &mut out[..];
        for &chunk in chunks {
            let (item_chunk, next_items) = rest_items.split_at(chunk);
            let (out_chunk, next_out) = rest_out.split_at_mut(chunk);
            rest_items = next_items;
            rest_out = next_out;
            scope.spawn(move || {
                let mut scratch = make_scratch();
                for (item, slot) in item_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(work(&mut scratch, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Splits `len` query pairs into at most `parts` contiguous chunks whose
/// lengths are multiples of [`QUERY_CHUNK_ALIGN`] (except possibly the
/// last), balanced to within one alignment block. Never yields an empty
/// chunk, so every spawned thread streams a non-trivial contiguous range.
pub(crate) fn aligned_chunk_lengths(len: usize, parts: usize) -> Vec<usize> {
    let blocks = len.div_ceil(QUERY_CHUNK_ALIGN).max(1);
    let parts = parts.clamp(1, blocks);
    let base = blocks / parts;
    let extra = blocks % parts;
    let mut remaining = len;
    let mut out = Vec::with_capacity(parts);
    for i in 0..parts {
        let b = base + usize::from(i < extra);
        let take = (b * QUERY_CHUNK_ALIGN).min(remaining);
        out.push(take);
        remaining -= take;
    }
    debug_assert_eq!(remaining, 0);
    out
}

/// Anything batch query evaluation can run against: the live [`SpcIndex`]
/// or a frozen [`FlatIndex`] snapshot. Workers carry a per-thread
/// `Scratch` so engines with reusable buffers (the flat kernel's
/// common-hub pair list) never allocate per query.
pub trait QueryEngine: Sync {
    /// Per-worker reusable state.
    type Scratch: Send;

    /// Fresh scratch for one worker thread.
    fn make_scratch(&self) -> Self::Scratch;

    /// `SpcQUERY(s, t)` against this engine.
    fn query_one(&self, scratch: &mut Self::Scratch, s: VertexId, t: VertexId) -> QueryResult;
}

impl QueryEngine for SpcIndex {
    type Scratch = ();

    fn make_scratch(&self) -> Self::Scratch {}

    #[inline]
    fn query_one(&self, _scratch: &mut Self::Scratch, s: VertexId, t: VertexId) -> QueryResult {
        spc_query(self, s, t)
    }
}

impl QueryEngine for FlatIndex {
    type Scratch = FlatScratch;

    fn make_scratch(&self) -> Self::Scratch {
        FlatScratch::new()
    }

    #[inline]
    fn query_one(&self, scratch: &mut Self::Scratch, s: VertexId, t: VertexId) -> QueryResult {
        self.query_with(scratch, s, t)
    }
}

/// Evaluates `pairs` in parallel on `threads` OS threads (clamped to the
/// batch size; `threads == 1` degenerates to the sequential path). Results
/// are in input order. Chunks are [`QUERY_CHUNK_ALIGN`]-aligned and
/// balanced, so every spawned thread has work and streams a contiguous
/// range of the batch.
pub fn par_batch_query<E: QueryEngine>(
    engine: &E,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<QueryResult> {
    let threads = threads.clamp(1, pairs.len().max(1));
    let chunks = aligned_chunk_lengths(pairs.len(), threads);
    fan_out_chunks(
        pairs,
        &chunks,
        || engine.make_scratch(),
        |scratch, &(s, t)| engine.query_one(scratch, s, t),
    )
}

/// [`par_batch_query`] with the thread count derived from the machine and
/// the batch: `std::thread::available_parallelism()` capped so that every
/// worker receives at least [`PAIRS_PER_THREAD`] pairs. Small batches run
/// inline — thread spawn overhead would dominate — and large ones fan out
/// across the hardware. This is the entry point a serving deployment
/// should reach for; callers pick an explicit thread count only when
/// partitioning cores across components.
pub fn par_batch_query_auto<E: QueryEngine>(
    engine: &E,
    pairs: &[(VertexId, VertexId)],
) -> Vec<QueryResult> {
    let hw = MaintenanceThreads::Auto.resolve();
    let threads = hw.min(pairs.len() / PAIRS_PER_THREAD).max(1);
    par_batch_query(engine, pairs, threads)
}

/// Evaluates `pairs` sequentially — the comparison baseline for
/// [`par_batch_query`] and the convenience entry point for small batches.
pub fn batch_query<E: QueryEngine>(engine: &E, pairs: &[(VertexId, VertexId)]) -> Vec<QueryResult> {
    let mut scratch = engine.make_scratch();
    pairs
        .iter()
        .map(|&(s, t)| engine.query_one(&mut scratch, s, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = barabasi_albert(300, 3, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let pairs: Vec<_> = (0..1000)
            .map(|_| {
                (
                    VertexId(rng.gen_range(0..300)),
                    VertexId(rng.gen_range(0..300)),
                )
            })
            .collect();
        let seq = batch_query(&index, &pairs);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_batch_query(&index, &pairs, threads), seq);
        }
    }

    #[test]
    fn auto_thread_count_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = barabasi_albert(200, 3, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let pairs: Vec<_> = (0..600)
            .map(|_| {
                (
                    VertexId(rng.gen_range(0..200)),
                    VertexId(rng.gen_range(0..200)),
                )
            })
            .collect();
        assert_eq!(
            par_batch_query_auto(&index, &pairs),
            batch_query(&index, &pairs)
        );
        assert!(par_batch_query_auto(&index, &[]).is_empty());
    }

    #[test]
    fn empty_and_tiny_batches() {
        let g = dspc_graph::generators::classic::path_graph(3);
        let index = build_index(&g, OrderingStrategy::Degree);
        assert!(par_batch_query(&index, &[], 4).is_empty());
        let one = par_batch_query(&index, &[(VertexId(0), VertexId(2))], 4);
        assert_eq!(one[0].as_option(), Some((2, 1)));
    }

    #[test]
    fn awkward_remainders_still_match_sequential() {
        // The old div_ceil chunking collapsed 9 pairs / 8 threads into 5
        // uneven chunks; the balanced split must keep results identical
        // while giving every spawned thread work.
        let mut rng = StdRng::seed_from_u64(33);
        let g = barabasi_albert(60, 2, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        for (len, threads) in [(9usize, 8usize), (3, 16), (17, 4), (8, 8), (5, 2)] {
            let pairs: Vec<_> = (0..len)
                .map(|_| {
                    (
                        VertexId(rng.gen_range(0..60)),
                        VertexId(rng.gen_range(0..60)),
                    )
                })
                .collect();
            assert_eq!(
                par_batch_query(&index, &pairs, threads),
                batch_query(&index, &pairs),
                "len={len} threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_lengths_cover_everything_without_empty_chunks() {
        for (len, parts) in [(9usize, 8usize), (3, 16), (16, 4), (1, 1), (7, 7), (10, 3)] {
            let chunks: Vec<usize> = chunk_lengths(len, parts).collect();
            assert_eq!(chunks.iter().sum::<usize>(), len, "len={len} parts={parts}");
            assert_eq!(chunks.len(), parts.min(len).max(1));
            assert!(chunks.iter().all(|&c| c >= 1) || len == 0);
            let (min, max) = (chunks.iter().min(), chunks.iter().max());
            assert!(max.unwrap() - min.unwrap() <= 1, "balanced split");
        }
    }

    #[test]
    fn aligned_chunks_cover_everything() {
        for (len, parts) in [
            (1000usize, 4usize),
            (9, 8),
            (3, 16),
            (17, 4),
            (8, 8),
            (257, 3),
            (1, 1),
        ] {
            let chunks = aligned_chunk_lengths(len, parts);
            assert_eq!(chunks.iter().sum::<usize>(), len, "len={len} parts={parts}");
            assert!(
                chunks.iter().all(|&c| c >= 1),
                "no empty chunks: {chunks:?}"
            );
            // Every chunk except the last is a multiple of the alignment.
            for &c in &chunks[..chunks.len() - 1] {
                assert_eq!(c % QUERY_CHUNK_ALIGN, 0, "len={len} parts={parts}");
            }
        }
        assert_eq!(aligned_chunk_lengths(0, 4), vec![0]);
    }

    #[test]
    fn flat_engine_matches_live_engine() {
        use crate::flat::FlatIndex;
        let mut rng = StdRng::seed_from_u64(14);
        let g = barabasi_albert(250, 3, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&index);
        let pairs: Vec<_> = (0..777)
            .map(|_| {
                (
                    VertexId(rng.gen_range(0..250)),
                    VertexId(rng.gen_range(0..250)),
                )
            })
            .collect();
        let live = batch_query(&index, &pairs);
        assert_eq!(batch_query(&flat, &pairs), live);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_batch_query(&flat, &pairs, threads), live);
        }
        assert_eq!(par_batch_query_auto(&flat, &pairs), live);
    }

    #[test]
    fn maintenance_threads_resolution() {
        assert!(MaintenanceThreads::Auto.resolve() >= 1);
        assert_eq!(MaintenanceThreads::Fixed(0).resolve(), 1);
        assert_eq!(MaintenanceThreads::Fixed(6).resolve(), 6);
        assert_eq!(MaintenanceThreads::default(), MaintenanceThreads::Auto);
    }

    #[test]
    fn fan_out_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1usize, 2, 5, 64] {
            let out = fan_out(
                &items,
                threads,
                || 0usize,
                |scratch, &i| {
                    *scratch += 1;
                    i * 3
                },
            );
            assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
        }
    }
}
