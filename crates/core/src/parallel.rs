//! Parallel batch query evaluation.
//!
//! §6 of the paper explains why parallel *updates* are hard (strict rank
//! order dependencies between hubs) and leaves them as future work. Query
//! evaluation, by contrast, is embarrassingly parallel: the index is
//! immutable between updates, and each `SpcQUERY` touches only two label
//! sets. This module fans a query batch across scoped threads — the shape a
//! serving deployment of the paper's system would use between update
//! epochs.

use crate::index::SpcIndex;
use crate::query::{spc_query, QueryResult};
use dspc_graph::VertexId;

/// Evaluates `pairs` in parallel on `threads` OS threads (clamped to the
/// batch size; `threads == 1` degenerates to the sequential path). Results
/// are in input order.
pub fn par_batch_query(
    index: &SpcIndex,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<QueryResult> {
    let threads = threads.clamp(1, pairs.len().max(1));
    if threads == 1 || pairs.len() < 2 {
        return pairs.iter().map(|&(s, t)| spc_query(index, s, t)).collect();
    }
    let mut results = vec![QueryResult::DISCONNECTED; pairs.len()];
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pair_chunk, out_chunk) in pairs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&(s, t), out) in pair_chunk.iter().zip(out_chunk.iter_mut()) {
                    *out = spc_query(index, s, t);
                }
            });
        }
    });
    results
}

/// [`par_batch_query`] with the thread count taken from the machine:
/// `std::thread::available_parallelism()`, falling back to sequential
/// evaluation when the hardware does not report one. This is the entry
/// point a serving deployment should reach for — callers pick an explicit
/// thread count only when partitioning cores across components.
pub fn par_batch_query_auto(index: &SpcIndex, pairs: &[(VertexId, VertexId)]) -> Vec<QueryResult> {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    par_batch_query(index, pairs, threads)
}

/// Evaluates `pairs` sequentially — the comparison baseline for
/// [`par_batch_query`] and the convenience entry point for small batches.
pub fn batch_query(index: &SpcIndex, pairs: &[(VertexId, VertexId)]) -> Vec<QueryResult> {
    pairs.iter().map(|&(s, t)| spc_query(index, s, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = barabasi_albert(300, 3, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let pairs: Vec<_> = (0..1000)
            .map(|_| {
                (
                    VertexId(rng.gen_range(0..300)),
                    VertexId(rng.gen_range(0..300)),
                )
            })
            .collect();
        let seq = batch_query(&index, &pairs);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_batch_query(&index, &pairs, threads), seq);
        }
    }

    #[test]
    fn auto_thread_count_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = barabasi_albert(200, 3, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        let pairs: Vec<_> = (0..600)
            .map(|_| {
                (
                    VertexId(rng.gen_range(0..200)),
                    VertexId(rng.gen_range(0..200)),
                )
            })
            .collect();
        assert_eq!(
            par_batch_query_auto(&index, &pairs),
            batch_query(&index, &pairs)
        );
        assert!(par_batch_query_auto(&index, &[]).is_empty());
    }

    #[test]
    fn empty_and_tiny_batches() {
        let g = dspc_graph::generators::classic::path_graph(3);
        let index = build_index(&g, OrderingStrategy::Degree);
        assert!(par_batch_query(&index, &[], 4).is_empty());
        let one = par_batch_query(&index, &[(VertexId(0), VertexId(2))], 4);
        assert_eq!(one[0].as_option(), Some((2, 1)));
    }
}
