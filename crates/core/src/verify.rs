//! ESPC verification oracles.
//!
//! Three levels of checking, all against brute-force BFS ground truth:
//!
//! 1. [`verify_all_pairs`] — the gold standard: the index must answer every
//!    `(s, t)` query identically to counting BFS. This is sound *and*
//!    complete for query correctness (a stale label with a wrong count at
//!    the minimum distance would surface at the pair it covers).
//! 2. [`verify_sampled_pairs`] — the same check on a random pair sample,
//!    for graphs where all-pairs is too slow.
//! 3. [`espc_ground_truth`] — reconstructs the *minimal* ESPC index
//!    (exactly the labels `(h, sd(h,v), spc(ĥ,v))` with `spc(ĥ,v) > 0`)
//!    by restricted BFS; HP-SPC output must equal it label for label.
//!    Maintained indexes may legally differ (IncSPC keeps distance-stale
//!    labels, Lemma 3.1), so this check is for fresh builds only.

use crate::index::SpcIndex;
use crate::label::{LabelEntry, Rank, INF_DIST};
use crate::query::spc_query;
use dspc_graph::traversal::bfs::BfsCounter;
use dspc_graph::{UndirectedGraph, VertexId};
use rand::Rng;

/// A query mismatch found by verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    /// Query source.
    pub s: VertexId,
    /// Query target.
    pub t: VertexId,
    /// `(dist, count)` from the index (`None` = disconnected).
    pub index_answer: Option<(u32, u64)>,
    /// `(dist, count)` from BFS ground truth.
    pub truth: Option<(u32, u64)>,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query ({:?}, {:?}): index says {:?}, BFS says {:?}",
            self.s, self.t, self.index_answer, self.truth
        )
    }
}

/// Checks every alive pair. Quadratic in `n` times BFS cost — intended for
/// the ≤ a-few-hundred-vertex graphs used in tests.
pub fn verify_all_pairs(g: &UndirectedGraph, index: &SpcIndex) -> Result<(), Mismatch> {
    let mut bfs = BfsCounter::new(g.capacity());
    let vertices: Vec<VertexId> = g.vertices().collect();
    for &s in &vertices {
        // One SSSP sweep per source instead of n point queries.
        let (dist, count) = {
            let (d, c) = bfs.sssp(g, s);
            (d.to_vec(), c.to_vec())
        };
        for &t in &vertices {
            let truth = if dist[t.index()] == u32::MAX {
                None
            } else {
                Some((dist[t.index()], count[t.index()]))
            };
            let got = spc_query(index, s, t).as_option();
            if got != truth {
                return Err(Mismatch {
                    s,
                    t,
                    index_answer: got,
                    truth,
                });
            }
        }
    }
    Ok(())
}

/// Checks `samples` random pairs (with replacement).
pub fn verify_sampled_pairs<R: Rng>(
    g: &UndirectedGraph,
    index: &SpcIndex,
    samples: usize,
    rng: &mut R,
) -> Result<(), Mismatch> {
    let vertices: Vec<VertexId> = g.vertices().collect();
    if vertices.is_empty() {
        return Ok(());
    }
    let mut bfs = BfsCounter::new(g.capacity());
    for _ in 0..samples {
        let s = vertices[rng.gen_range(0..vertices.len())];
        let t = vertices[rng.gen_range(0..vertices.len())];
        let truth = bfs.count(g, s, t);
        let got = spc_query(index, s, t).as_option();
        if got != truth {
            return Err(Mismatch {
                s,
                t,
                index_answer: got,
                truth,
            });
        }
    }
    Ok(())
}

/// Builds the minimal ESPC index by brute force: for each hub `h`, a BFS
/// restricted to `G_h` yields `spc(ĥ, v)`; the label exists iff that count
/// is positive *and* the restricted distance equals the true `sd(h, v)`.
pub fn espc_ground_truth(g: &UndirectedGraph, index_ranks: &crate::order::RankMap) -> SpcIndex {
    let cap = g.capacity();
    let mut truth = SpcIndex::self_labeled(index_ranks.clone());
    let mut restricted = BfsCounter::new(cap);
    let mut full = BfsCounter::new(cap);
    for r in 0..cap as u32 {
        let h = truth.vertex(Rank(r));
        if !g.contains_vertex(h) {
            continue;
        }
        let (true_dist, _) = {
            let (d, _) = full.sssp(g, h);
            (d.to_vec(), ())
        };
        let hr = truth.rank(h);
        let ranks = truth.ranks().clone();
        let (rd, rc) = restricted.sssp_restricted(g, h, |w| ranks.rank(VertexId(w)) > hr);
        let entries: Vec<(u32, u32, u64)> = (0..cap as u32)
            .filter(|&v| v != h.0)
            .filter(|&v| rd[v as usize] != INF_DIST && rd[v as usize] == true_dist[v as usize])
            .map(|v| (v, rd[v as usize], rc[v as usize]))
            .collect();
        for (v, d, c) in entries {
            truth
                .label_set_mut(VertexId(v))
                .upsert(LabelEntry::new(hr, d, c));
        }
    }
    truth
}

/// Canonical/non-canonical label census (Example 2.2 terminology):
/// a label `(h, d, c) ∈ L(v)` is canonical when `c = spc(h, v)` — the hub
/// lies on *every* shortest path's top position — and non-canonical when
/// `c < spc(h, v)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelCensus {
    /// Labels with the full path count.
    pub canonical: usize,
    /// Labels covering only a strict subset of shortest paths.
    pub non_canonical: usize,
    /// Distance-stale labels (dist > true sd) retained by IncSPC.
    pub stale: usize,
}

/// Classifies every label of `index` against BFS ground truth.
pub fn label_census(g: &UndirectedGraph, index: &SpcIndex) -> LabelCensus {
    let mut bfs = BfsCounter::new(g.capacity());
    let mut census = LabelCensus::default();
    for v in g.vertices() {
        for e in index.label_set(v).entries() {
            let h = index.vertex(e.hub);
            if h == v {
                census.canonical += 1;
                continue;
            }
            match bfs.count(g, h, v) {
                Some((d, c)) if d == e.dist => {
                    if e.count == c {
                        census.canonical += 1;
                    } else {
                        census.non_canonical += 1;
                    }
                }
                _ => census.stale += 1,
            }
        }
    }
    census
}

/// All-pairs oracle check for the directed extension: the index must agree
/// with directed counting BFS on every ordered pair.
pub fn verify_directed_all_pairs(
    g: &dspc_graph::DirectedGraph,
    index: &crate::directed::DirectedSpcIndex,
) -> Result<(), Mismatch> {
    let mut bfs = dspc_graph::traversal::dbfs::DirectedBfsCounter::new(g.capacity());
    let vertices: Vec<VertexId> = g.vertices().collect();
    for &s in &vertices {
        for &t in &vertices {
            let truth = bfs.count(g, s, t);
            let got = crate::directed::directed_spc_query(index, s, t).as_option();
            if got != truth {
                return Err(Mismatch {
                    s,
                    t,
                    index_answer: got,
                    truth,
                });
            }
        }
    }
    Ok(())
}

/// All-pairs oracle check for the weighted extension against counting
/// Dijkstra. Distances are weighted (`u64`); the mismatch report reuses the
/// unweighted shape with distances clamped into `u32` for display.
pub fn verify_weighted_all_pairs(
    g: &dspc_graph::WeightedGraph,
    index: &crate::weighted::WeightedSpcIndex,
) -> Result<(), String> {
    let mut dj = dspc_graph::traversal::dijkstra::DijkstraCounter::new(g.capacity());
    let vertices: Vec<VertexId> = g.vertices().collect();
    for &s in &vertices {
        for &t in &vertices {
            let truth = dj.count(g, s, t);
            let got = crate::weighted::weighted_spc_query(index, s, t).as_option();
            if got != truth {
                return Err(format!(
                    "weighted query ({s:?}, {t:?}): index says {got:?}, Dijkstra says {truth:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::{OrderingStrategy, RankMap};
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_build_passes_all_pairs() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Identity);
        verify_all_pairs(&g, &index).unwrap();
    }

    #[test]
    fn corrupted_index_is_caught() {
        let g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        // Corrupt one count.
        let r0 = index.rank(VertexId(0));
        let e = *index.label_set(VertexId(9)).get(r0).unwrap();
        index
            .label_set_mut(VertexId(9))
            .upsert(LabelEntry::new(r0, e.dist, e.count + 1));
        let err = verify_all_pairs(&g, &index).unwrap_err();
        assert_eq!(err.t.0.max(err.s.0), 9);
    }

    #[test]
    fn underestimating_distance_is_caught() {
        let g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let r0 = index.rank(VertexId(0));
        index
            .label_set_mut(VertexId(9))
            .upsert(LabelEntry::new(r0, 1, 1));
        assert!(verify_all_pairs(&g, &index).is_err());
    }

    #[test]
    fn hp_spc_equals_minimal_ground_truth() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let g = erdos_renyi_gnm(40, 90, &mut rng);
            let ranks = RankMap::build(&g, OrderingStrategy::Degree);
            let built = crate::build::rebuild_index(&g, ranks.clone());
            let truth = espc_ground_truth(&g, &ranks);
            for v in g.vertices() {
                assert_eq!(
                    built.label_set(v).entries(),
                    truth.label_set(v).entries(),
                    "L({v:?})"
                );
            }
        }
    }

    #[test]
    fn census_matches_example_2_2() {
        // Table 2: (v2, 2, 1) ∈ L(v8) is the non-canonical example; the
        // graph has exactly two non-canonical labels ((v2,2,1) ∈ L(v8) and
        // the analogous one in L(v7) if any).
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Identity);
        let census = label_census(&g, &index);
        assert_eq!(census.stale, 0);
        assert!(census.non_canonical >= 1);
        // Spot-check the exact label from Example 2.2.
        let r2 = index.rank(VertexId(2));
        let e = index.label_set(VertexId(8)).get(r2).unwrap();
        assert_eq!((e.dist, e.count), (2, 1));
        let mut bfs = dspc_graph::traversal::bfs::BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(2), VertexId(8)), Some((2, 2)));
    }

    #[test]
    fn sampled_verification_smoke() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(50, 120, &mut rng);
        let index = build_index(&g, OrderingStrategy::Degree);
        verify_sampled_pairs(&g, &index, 500, &mut rng).unwrap();
    }
}
