//! # dspc — Dynamic Shortest Path Counting
//!
//! A from-scratch Rust implementation of the EDBT 2024 paper *“DSPC:
//! Efficiently Answering Shortest Path Counting on Dynamic Graphs”* (Feng,
//! Peng, Zhang, Lin, Zhang), including its substrate, the SPC-Index of
//! Zhang & Yu (SIGMOD 2020).
//!
//! ## What this crate provides
//!
//! * **SPC-Index** ([`index::SpcIndex`]) — a 2-hop hub labeling that answers
//!   `spc(s, t)` (number of shortest paths) and `sd(s, t)` (shortest
//!   distance) for any vertex pair by scanning two label sets
//!   ([`query::spc_query`], Algorithm 1 of the paper).
//! * **HP-SPC** ([`build`]) — hub-pushing index construction over a degree
//!   ranked vertex order ([`order`]).
//! * **[`engine::UpdateEngine`]** — the generic hub-ordered maintenance
//!   core: one implementation of the renew/insert/remove machinery shared
//!   by every variant, parameterized over [`engine::LabelTopology`] views.
//! * **IncSPC** ([`inc`]) — incremental maintenance under edge/vertex
//!   insertion (Algorithms 2–3), as a thin policy over the engine.
//! * **DecSPC** ([`dec`]) — decremental maintenance under edge/vertex
//!   deletion, via the `SR`/`R` affected-vertex machinery (Algorithms 4–6),
//!   likewise engine-backed.
//! * **[`dynamic::DynamicSpc`]** — the facade tying a graph and its index
//!   together: apply updates one by one, stream them, or coalesce them into
//!   epochs with [`dynamic::DynamicSpc::apply_batch`] (insert + delete of
//!   the same edge cancels before any repair runs).
//! * **Extensions** — directed graphs ([`directed`], Appendix C.1) and
//!   weighted graphs ([`weighted`], Appendix C.2).
//! * **Verification** ([`verify`]) — BFS-backed oracles used by the test
//!   suite to prove ESPC correctness of every maintained index.
//!
//! ## Quickstart
//!
//! ```
//! use dspc::dynamic::DynamicSpc;
//! use dspc::order::OrderingStrategy;
//! use dspc_graph::{UndirectedGraph, VertexId};
//!
//! // The toy social network from Figure 1 of the paper.
//! let g = UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 4)]);
//! let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
//!
//! // c (vertex 4) is reachable from a (vertex 0) by two shortest paths,
//! // b (vertex 3) by one: recommend c first.
//! assert_eq!(dspc.query(VertexId(0), VertexId(4)), Some((2, 2)));
//! assert_eq!(dspc.query(VertexId(0), VertexId(3)), Some((2, 1)));
//!
//! // The graph evolves: a new friendship appears and one disappears —
//! // the index follows without reconstruction.
//! dspc.insert_edge(VertexId(0), VertexId(3)).unwrap();
//! assert_eq!(dspc.query(VertexId(0), VertexId(3)), Some((1, 1)));
//! dspc.delete_edge(VertexId(1), VertexId(4)).unwrap();
//! assert_eq!(dspc.query(VertexId(0), VertexId(4)), Some((2, 1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod dec;
pub mod directed;
pub mod dynamic;
pub mod engine;
pub mod flat;
pub mod inc;
pub mod index;
pub mod label;
pub mod order;
pub mod parallel;
pub mod paths;
pub mod policy;
pub mod query;
pub mod reorder;
pub mod serialize;
pub mod shard;
pub mod verify;
pub mod weighted;

pub use build::{build_index, rebuild_index, HpSpcBuilder};
pub use dynamic::{DynamicSpc, GraphUpdate, UpdateStats};
pub use engine::MaintenanceCounters;
pub use flat::{DirectedFlatIndex, FlatIndex, FlatScratch, KernelCounters, WeightedFlatIndex};
pub use index::{IndexStats, SpcIndex};
pub use label::{Count, LabelEntry, LabelSet, Rank, INF_DIST};
pub use order::{OrderingStrategy, RankMap};
pub use parallel::{
    AgendaScope, ClassifyMode, MaintenanceOptions, MaintenanceThreads, QueryEngine,
};
pub use query::{pre_query, spc_query, QueryResult};
pub use reorder::{
    rerank_adjacent, rerank_adjacent_directed, rerank_adjacent_weighted, swap_and_repair,
};
pub use shard::{EpochSnapshot, ShardedFlatIndex};
