//! The shared update engine behind IncSPC and DecSPC — one implementation
//! of the paper's hub-ordered renew/insert/remove machinery, reused by the
//! undirected core and both extensions.
//!
//! Before this module existed, `inc`/`dec` (undirected), `directed::update`
//! and `weighted::update` were three hand-copied variants of the same three
//! traversals:
//!
//! * **`inc_pass`** — Algorithm 3's `IncUPDATE`: a pruned counting sweep
//!   seeded across the new edge, renewing or inserting `(h, ·, ·)` labels
//!   wherever the index does not already certify a strictly shorter path.
//! * **`srr_pass`** — Algorithm 5's `SrrSEARCH` (one side): a full counting
//!   sweep on the pre-mutation graph classifying every vertex with a
//!   shortest path through the edge into `SR` (hub must re-sweep) or `R`
//!   (labels may change, no sweep needed).
//! * **`dec_pass`** — Algorithm 6's `DecUPDATE`: a rank-pruned counting
//!   sweep from an affected hub on the post-mutation graph, repairing
//!   labels of the opposite side's `SR ∪ R`, followed by a removal pass
//!   over the never-reached candidates.
//!
//! What varies per variant is captured by [`LabelTopology`]: which
//! adjacency to walk (undirected, directed-forward, directed-backward,
//! weighted), which label family to read/repair (`L`, `L_in`, `L_out`,
//! weighted `L`), the distance domain (`u32` hops vs `u64` accumulated
//! weight — the latter switches the frontier from a FIFO queue to a binary
//! heap), and the hub-membership test behind condition **A**. The engine
//! owns every piece of scratch state (distance/count arrays, frontier,
//! side marks, visited flags) plus the RenewC/RenewD/Insert/Remove
//! counters ([`MaintenanceCounters`]) feeding Figures 8–9.
//!
//! ## Departure from the paper: the removal pass is unconditional
//!
//! Algorithm 6 removes never-updated `(h, ·, ·)` labels only when `h` is a
//! common hub of the deleted edge's endpoints (`h ∈ L(a) ∩ L(b)`). That
//! gate is unsound in the presence of Lemma 3.1's *kept stale labels*: a
//! stale label's witness path can degrade under later updates until the
//! hub no longer appears in `L(a) ∩ L(b)`, yet a deletion can raise the
//! true distance to *meet* the stale distance — promoting the label from a
//! harmless loser into a phantom count contributor (observed as an
//! overcount on long hybrid streams). Removing unconditionally is safe:
//! any label still valid after the mutation is re-established by the hub's
//! own repair sweep (a valid `(h, d, c)` label means its witness path lies
//! inside `G_h` at distance `d = sd(h, v)`, so the sweep reaches `v`
//! unpruned and marks it updated), so only unjustifiable labels are
//! dropped.

use crate::label::{Count, Rank};
use dspc_graph::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

mod batch;
pub mod parallel;
mod topology;

pub(crate) use batch::{check_endpoints, duplicate_edge_key, ordered_key};
pub use batch::{EdgeCoalescer, NetEdgeEffect, NetOp, NetPlan};
pub use topology::{
    DirectedTopo, FrozenDirected, FrozenUndirected, FrozenWeighted, UndirectedTopo, WeightedTopo,
};

/// Distance domain of one index variant.
pub trait EngineDist: Copy + Ord + std::fmt::Debug {
    /// The "unreachable" sentinel.
    const INF: Self;

    /// The zero distance (sweep seeds).
    const ZERO: Self;

    /// Saturating path extension (`self + len`).
    fn extend(self, len: Self) -> Self;
}

impl EngineDist for u32 {
    const INF: u32 = u32::MAX;
    const ZERO: u32 = 0;

    #[inline]
    fn extend(self, len: u32) -> u32 {
        self.saturating_add(len)
    }
}

impl EngineDist for u64 {
    const INF: u64 = u64::MAX;
    const ZERO: u64 = 0;

    #[inline]
    fn extend(self, len: u64) -> u64 {
        self.saturating_add(len)
    }
}

/// One variant's view of "graph + index + pinned-hub probe" as the engine
/// traverses it. Implementations borrow the graph immutably and the index
/// mutably for the duration of one update.
pub trait LabelTopology {
    /// Distance domain (`u32` hops or `u64` accumulated weight).
    type Dist: EngineDist;

    /// Whether sweeps must settle in distance order (Dijkstra) rather than
    /// FIFO order (unit-length BFS).
    const DIJKSTRA: bool;

    /// Rank of vertex `v`.
    fn rank(&self, v: u32) -> Rank;

    /// Pins the hub-side label set of `x` for subsequent
    /// [`probe_query`](Self::probe_query) calls. Directed views pin the
    /// family opposite to the one being repaired.
    fn load_probe(&mut self, x: VertexId);

    /// `SpcQUERY(pinned, v)` against the repaired family.
    fn probe_query(&self, v: VertexId) -> (Self::Dist, Count);

    /// `PreQUERY(pinned, v)`: hubs ranked strictly above `limit` only.
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (Self::Dist, Count);

    /// Visits each traversal neighbor of `v` with its edge length.
    fn for_each_neighbor<F: FnMut(u32, Self::Dist)>(&self, v: u32, f: F);

    /// Entry `(hub, ·, ·)` of the repaired family at `v`, if present.
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(Self::Dist, Count)>;

    /// Inserts or replaces `(hub, d, c)` in the repaired family at `v`.
    fn label_upsert(&mut self, v: VertexId, hub: Rank, d: Self::Dist, c: Count);

    /// Removes `(hub, ·, ·)` from the repaired family at `v`; returns
    /// whether an entry existed.
    fn label_remove(&mut self, v: VertexId, hub: Rank) -> bool;

    /// Condition **A** of Definition 3.10: is `hub` a common hub of both
    /// endpoints (in the variant's membership family)?
    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool;
}

/// The unified maintenance counter block: the RenewC / RenewD / Insert /
/// Remove label-operation series of Figures 8–9 plus the sweep, schedule,
/// and agenda counters every batch path reports. One type serves every
/// layer — the engine passes it to its sweeps, the per-variant drivers
/// return it, and the facades wrap it in
/// [`crate::dynamic::UpdateStats`] — replacing the former
/// `OpCounters` / `DecStats` / flat-`UpdateStats` triplet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceCounters {
    /// Labels whose count changed at unchanged distance (RenewC).
    pub renew_count: usize,
    /// Labels whose distance changed (RenewD).
    pub renew_dist: usize,
    /// Newly inserted labels (Insert).
    pub inserted: usize,
    /// Removed labels (Remove).
    pub removed: usize,
    /// Affected hubs processed (one per repair sweep: `inc_pass` or
    /// `dec_pass`).
    pub hubs_processed: usize,
    /// Classification sweeps performed (`srr_pass` /
    /// [`UpdateEngine::multi_far_pass`] invocations).
    pub classify_sweeps: usize,
    /// Classification sweeps that classified against two or more far
    /// endpoints at once (the multi-far amortization win: always
    /// `<= classify_sweeps`).
    pub multi_far_sweeps: usize,
    /// Vertices dequeued across update sweeps.
    pub vertices_visited: usize,
    /// Distinct hubs drained from the global repair agenda (after
    /// cross-group deduplication).
    pub agenda_hubs: usize,
    /// Repair waves executed by the parallel scheduler
    /// ([`parallel::plan_waves`]); 0 on the sequential path.
    pub waves: usize,
    /// Width of the widest wave scheduled (≥ 2 means at least two hub
    /// sweeps were found rank-independent); 0 on the sequential path.
    pub max_wave_width: usize,
    /// Vertices labeled by the bounded interference BFS
    /// ([`parallel::agenda_components`]); 0 on the sequential path.
    pub interference_probes: usize,
    /// Successful work-steal events in the persistent worker pool
    /// ([`parallel::run_wave_pool`]). Scheduling-dependent — excluded
    /// from determinism comparisons and CI gates.
    pub steal_events: usize,
    /// Whether the §3.2.3 isolated-vertex fast path handled (part of)
    /// the update.
    pub isolated_fast_path: bool,
    /// Adjacent rank swaps repaired by [`crate::reorder`] (one per
    /// demote/promote pair).
    pub rerank_swaps: usize,
    /// Hub re-push sweeps run by swap repair (two per undirected/weighted
    /// swap, four per directed swap — both families).
    pub rerank_sweeps: usize,
}

impl MaintenanceCounters {
    /// Total label operations.
    pub fn total_ops(&self) -> usize {
        self.renew_count + self.renew_dist + self.inserted + self.removed
    }

    /// Total engine sweeps (classification + repair + re-rank re-pushes) —
    /// the amortization metric batch deletion optimizes.
    pub fn total_sweeps(&self) -> usize {
        self.classify_sweeps + self.hubs_processed + self.rerank_sweeps
    }

    /// Signed change in index entry count (`inserted - removed`).
    pub fn entry_delta(&self) -> isize {
        self.inserted as isize - self.removed as isize
    }

    /// Merges counters (for streams and batches).
    pub fn absorb(&mut self, other: &MaintenanceCounters) {
        self.renew_count += other.renew_count;
        self.renew_dist += other.renew_dist;
        self.inserted += other.inserted;
        self.removed += other.removed;
        self.hubs_processed += other.hubs_processed;
        self.classify_sweeps += other.classify_sweeps;
        self.multi_far_sweeps += other.multi_far_sweeps;
        self.vertices_visited += other.vertices_visited;
        self.agenda_hubs += other.agenda_hubs;
        self.waves += other.waves;
        self.max_wave_width = self.max_wave_width.max(other.max_wave_width);
        self.interference_probes += other.interference_probes;
        self.steal_events += other.steal_events;
        self.isolated_fast_path |= other.isolated_fast_path;
        self.rerank_swaps += other.rerank_swaps;
        self.rerank_sweeps += other.rerank_sweeps;
    }
}

/// Former name of [`MaintenanceCounters`].
#[deprecated(
    note = "renamed to `MaintenanceCounters` (one counter type across engine, drivers, and facades)"
)]
pub type OpCounters = MaintenanceCounters;

/// An entry that knows its hub rank — lets [`merge_affected`] run over both
/// unweighted [`crate::label::LabelEntry`] and weighted
/// [`crate::weighted::WLabelEntry`] slices.
pub trait HubBearing {
    /// Hub rank of the entry.
    fn hub_rank(&self) -> Rank;
}

impl HubBearing for crate::label::LabelEntry {
    #[inline]
    fn hub_rank(&self) -> Rank {
        self.hub
    }
}

impl HubBearing for crate::weighted::WLabelEntry {
    #[inline]
    fn hub_rank(&self) -> Rank {
        self.hub
    }
}

/// Merges two rank-sorted label slices into the affected-hub list
/// `AFF = hubs(L(a)) ∪ hubs(L(b))` with per-side membership flags,
/// in descending rank order (ascending rank position) — the snapshot every
/// incremental update starts from (Algorithm 2 line 2).
pub fn merge_affected<E: HubBearing>(la: &[E], lb: &[E]) -> Vec<(Rank, bool, bool)> {
    let mut aff = Vec::with_capacity(la.len() + lb.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < la.len() || j < lb.len() {
        match (la.get(i), lb.get(j)) {
            (Some(x), Some(y)) if x.hub_rank() == y.hub_rank() => {
                aff.push((x.hub_rank(), true, true));
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x.hub_rank() < y.hub_rank() => {
                aff.push((x.hub_rank(), true, false));
                i += 1;
            }
            (Some(_), Some(y)) => {
                aff.push((y.hub_rank(), false, true));
                j += 1;
            }
            (Some(x), None) => {
                aff.push((x.hub_rank(), true, false));
                i += 1;
            }
            (None, Some(y)) => {
                aff.push((y.hub_rank(), false, true));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    aff
}

/// Side markers for `SR ∪ R` membership.
pub const MARK_A: u8 = 1;
/// Second side marker.
pub const MARK_B: u8 = 2;

/// [`RepairAgenda`] hub flag: the hub must re-sweep the variant's primary
/// label family (`L` for undirected/weighted, `L_in` for directed).
pub const REPAIR_PRIMARY: u8 = 1;
/// [`RepairAgenda`] hub flag: the hub must re-sweep the secondary family
/// (`L_out`; unused by single-family variants).
pub const REPAIR_SECONDARY: u8 = 2;

/// The deduplicated repair agenda of one multi-edge `SrrSEARCH` group.
///
/// The single-edge deletion path (Algorithm 4) runs one `DecUPDATE` sweep
/// per hub in `SR_a ∪ SR_b` *per edge*, so a hub affected by `k` deleted
/// edges of a batch is swept `k` times. This accumulator merges the
/// per-edge classification outcomes of a whole net-deletion group into
///
/// * one rank-keyed hub agenda (each affected hub appears once, carrying
///   the union of label families it must repair), and
/// * one shared receiver frontier (the union of every classified vertex
///   across all edges and both sides), which doubles as the removal
///   candidate list of every sweep.
///
/// [`UpdateEngine::dec_pass`] then runs **once per distinct hub** against
/// the residual graph (all net deletions applied), which is what makes the
/// classification invariant of the batch path "RenewC/RenewD relative to
/// the residual graph": a single sweep observes the whole deleted set as
/// absent. Marking the union (rather than each edge's opposite side) only
/// widens the repair/removal candidate set, which is safe for the same
/// reason the unconditional removal pass is (see module docs): reached
/// candidates are rewritten with sweep-true values and unreached
/// candidates hold no justifiable label for that hub.
#[derive(Debug, Default)]
pub struct RepairAgenda {
    /// `(hub rank, REPAIR_* bits)`, unsorted until [`take_hubs`](Self::take_hubs).
    hubs: Vec<(Rank, u8)>,
    /// Union of classified vertices in first-noted order.
    marked: Vec<VertexId>,
    /// Dedup bitmap for `marked`, indexed by vertex id.
    noted: Vec<bool>,
}

impl RepairAgenda {
    /// An empty agenda for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        RepairAgenda {
            hubs: Vec::new(),
            marked: Vec::new(),
            noted: vec![false; capacity],
        }
    }

    /// Grows the dedup bitmap when the id space expanded.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.noted.len() < capacity {
            self.noted.resize(capacity, false);
        }
    }

    /// Records that `hub` needs a repair sweep over `families`
    /// ([`REPAIR_PRIMARY`] and/or [`REPAIR_SECONDARY`]).
    pub fn note_hub(&mut self, hub: Rank, families: u8) {
        self.hubs.push((hub, families));
    }

    /// Records `v` as a receiver (its labels may change); deduplicated.
    pub fn note_receiver(&mut self, v: VertexId) {
        if !self.noted[v.index()] {
            self.noted[v.index()] = true;
            self.marked.push(v);
        }
    }

    /// Merges one `srr_pass` outcome (one edge side) into the agenda: the
    /// `SR` hubs get `family` repair flags, and every classified vertex
    /// (`SR ∪ R`) joins the receiver union.
    pub fn note_side(
        &mut self,
        sr: &[VertexId],
        r: &[VertexId],
        family: u8,
        mut rank_of: impl FnMut(VertexId) -> Rank,
    ) {
        for &h in sr {
            self.note_hub(rank_of(h), family);
        }
        for &v in sr.iter().chain(r) {
            self.note_receiver(v);
        }
    }

    /// The receiver union so far.
    pub fn receivers(&self) -> &[VertexId] {
        &self.marked
    }

    /// Drains the hub agenda: descending rank order (ascending rank
    /// position), one entry per hub with its family bits OR-merged.
    pub fn take_hubs(&mut self) -> Vec<(Rank, u8)> {
        self.hubs.sort_unstable_by_key(|&(r, _)| r);
        let mut out: Vec<(Rank, u8)> = Vec::with_capacity(self.hubs.len());
        for &(r, f) in &self.hubs {
            match out.last_mut() {
                Some((lr, lf)) if *lr == r => *lf |= f,
                _ => out.push((r, f)),
            }
        }
        self.hubs.clear();
        out
    }

    /// Resets the receiver set for the next group.
    pub fn clear(&mut self) {
        for v in self.marked.drain(..) {
            self.noted[v.index()] = false;
        }
        self.hubs.clear();
    }
}

/// One candidate row of a [`FarColumn`]: a vertex with a shortest path to
/// the column's far endpoint crossing the classified edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FarCandidate {
    /// The classified vertex.
    pub v: VertexId,
    /// `spc(near, v)` — shortest-path count from the sweep origin, i.e.
    /// the number of shortest `v`–`far` paths whose last hop before `far`
    /// is this edge's `near` endpoint.
    pub through: Count,
    /// `SpcQUERY(v, far)` — total shortest-path count to the far endpoint
    /// on the pre-deletion index.
    pub qc: Count,
    /// Condition **A**: `v` is a common hub of `near` and `far`.
    pub common_hub: bool,
}

/// One far endpoint's classification column from
/// [`UpdateEngine::multi_far_pass`], in sweep settle order.
#[derive(Clone, Debug)]
pub struct FarColumn {
    /// The far endpoint this column classifies against.
    pub far: VertexId,
    /// Candidates in the order the sweep settled them.
    pub candidates: Vec<FarCandidate>,
}

/// One endpoint's classification task: a single
/// [`UpdateEngine::multi_far_pass`] sweep from `near` against every doomed
/// partner endpoint.
#[derive(Clone, Debug)]
pub struct MultiFarTask<D> {
    /// The shared endpoint the sweep is seeded at.
    pub near: VertexId,
    /// The doomed partner endpoints with their edge lengths, in
    /// deterministic (group-noted) order.
    pub fars: Vec<(VertexId, D)>,
}

/// Groups a stream of directed `(near, far, len)` doomed-edge sides into
/// one [`MultiFarTask`] per distinct `near` endpoint, sorted by endpoint
/// id (deterministic across thread counts). Undirected callers pass each
/// edge twice (once per direction); directed callers pass tails and heads
/// through separate invocations.
pub fn build_endpoint_tasks<D: EngineDist>(
    sides: impl Iterator<Item = (VertexId, VertexId, D)>,
) -> Vec<MultiFarTask<D>> {
    let mut by_near: std::collections::BTreeMap<u32, Vec<(VertexId, D)>> =
        std::collections::BTreeMap::new();
    for (near, far, len) in sides {
        by_near.entry(near.0).or_default().push((far, len));
    }
    by_near
        .into_iter()
        .map(|(near, fars)| MultiFarTask {
            near: VertexId(near),
            fars,
        })
        .collect()
}

/// Epoch-stamped scratch for summing [`FarColumn`]s that share a far
/// endpoint: per-vertex `through` totals, the (consistent) `qc`, and the
/// OR of condition-**A** flags, in first-contribution order.
#[derive(Debug)]
pub struct FarAggregator {
    stamp: Vec<u64>,
    epoch: u64,
    through: Vec<Count>,
    qc: Vec<Count>,
    common: Vec<bool>,
    order: Vec<VertexId>,
}

impl FarAggregator {
    /// An aggregator for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        FarAggregator {
            stamp: vec![0; capacity],
            epoch: 0,
            through: vec![0; capacity],
            qc: vec![0; capacity],
            common: vec![false; capacity],
            order: Vec::new(),
        }
    }

    /// Grows the scratch when the id space expanded.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
            self.through.resize(capacity, 0);
            self.qc.resize(capacity, 0);
            self.common.resize(capacity, false);
        }
    }

    /// Starts a new far group.
    fn begin(&mut self) {
        self.epoch += 1;
        self.order.clear();
    }

    /// Folds one column of the current far group in.
    fn add_column(&mut self, col: &FarColumn) {
        for c in &col.candidates {
            let i = c.v.index();
            if self.stamp[i] != self.epoch {
                self.stamp[i] = self.epoch;
                self.through[i] = c.through;
                self.qc[i] = c.qc;
                self.common[i] = c.common_hub;
                self.order.push(c.v);
            } else {
                self.through[i] = self.through[i].saturating_add(c.through);
                debug_assert_eq!(self.qc[i], c.qc, "inconsistent SpcQUERY across columns");
                self.common[i] |= c.common_hub;
            }
        }
    }

    /// Classifies the current group into `(SR, R)`: condition **A**, or
    /// condition **B** with the *summed* through-count — every shortest
    /// path to the far endpoint crosses some doomed edge of the group.
    fn finish(&mut self, sr: &mut Vec<VertexId>, r: &mut Vec<VertexId>) {
        sr.clear();
        r.clear();
        for &v in &self.order {
            let i = v.index();
            if self.common[i] || self.through[i] == self.qc[i] {
                sr.push(v);
            } else {
                r.push(v);
            }
        }
    }
}

/// Merges every [`FarColumn`] of one classification role into the agenda:
/// columns are grouped by far endpoint (ascending id — deterministic
/// regardless of task execution order), each group's through-counts are
/// summed per vertex, and the resulting `(SR, R)` classification is noted
/// with `family` repair flags.
///
/// Summing is exact because columns of one far group count *disjoint*
/// path sets (each fixes a different doomed last hop into the same far),
/// so `Σ through ≤ qc` always, with equality exactly when every shortest
/// path is doomed. Any vertex the old per-edge test classified SR stays
/// SR here; vertices whose doom was split across edges are newly caught.
pub fn aggregate_far_columns(
    agg: &mut FarAggregator,
    columns: &[FarColumn],
    agenda: &mut RepairAgenda,
    family: u8,
    mut rank_of: impl FnMut(VertexId) -> Rank,
) {
    let mut groups: std::collections::BTreeMap<u32, Vec<&FarColumn>> =
        std::collections::BTreeMap::new();
    for col in columns {
        groups.entry(col.far.0).or_default().push(col);
    }
    let (mut sr, mut r) = (Vec::new(), Vec::new());
    for (_, cols) in groups {
        agg.begin();
        for col in cols {
            agg.add_column(col);
        }
        agg.finish(&mut sr, &mut r);
        agenda.note_side(&sr, &r, family, &mut rank_of);
    }
}

/// The generic maintenance engine: scratch state + the three traversal
/// passes, parameterized over a [`LabelTopology`] view per call.
#[derive(Debug)]
pub struct UpdateEngine<D: EngineDist> {
    dist: Vec<D>,
    count: Vec<Count>,
    /// FIFO frontier (unit-length sweeps).
    fifo: Vec<u32>,
    /// Priority frontier (weighted sweeps).
    heap: BinaryHeap<Reverse<(D, u32)>>,
    settled: Vec<bool>,
    touched: Vec<u32>,
    /// `SR ∪ R` side membership bits, valid between
    /// [`set_marks`](Self::set_marks) and [`clear_marks`](Self::clear_marks).
    marks: Vec<u8>,
    marked: Vec<u32>,
    /// Algorithm 6's `U[·]` visited-and-updated flags (reset per pass).
    updated: Vec<bool>,
}

impl<D: EngineDist> UpdateEngine<D> {
    /// Engine for graphs up to `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        UpdateEngine {
            dist: vec![D::INF; capacity],
            count: vec![0; capacity],
            fifo: Vec::new(),
            heap: BinaryHeap::new(),
            settled: vec![false; capacity],
            touched: Vec::new(),
            marks: vec![0; capacity],
            marked: Vec::new(),
            updated: vec![false; capacity],
        }
    }

    /// Grows scratch arrays when the id space expanded.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, D::INF);
            self.count.resize(capacity, 0);
            self.settled.resize(capacity, false);
            self.marks.resize(capacity, 0);
            self.updated.resize(capacity, false);
        }
    }

    fn reset_sweep(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = D::INF;
            self.count[v as usize] = 0;
            self.settled[v as usize] = false;
        }
        self.touched.clear();
        self.fifo.clear();
        self.heap.clear();
    }

    #[inline]
    fn seed(&mut self, dijkstra: bool, v: VertexId, d: D, c: Count) {
        self.dist[v.index()] = d;
        self.count[v.index()] = c;
        self.touched.push(v.0);
        self.push_frontier(dijkstra, v.0, d);
    }

    #[inline]
    fn push_frontier(&mut self, dijkstra: bool, v: u32, d: D) {
        if dijkstra {
            self.heap.push(Reverse((d, v)));
        } else {
            self.fifo.push(v);
        }
    }

    /// Pops the next unsettled vertex in traversal order, marking it
    /// settled. `head` is the FIFO cursor (unused under Dijkstra).
    #[inline]
    fn pop_frontier(&mut self, dijkstra: bool, head: &mut usize) -> Option<u32> {
        if dijkstra {
            while let Some(Reverse((_, v))) = self.heap.pop() {
                if !self.settled[v as usize] {
                    self.settled[v as usize] = true;
                    return Some(v);
                }
            }
            None
        } else {
            // Unit lengths + FIFO order: each vertex is pushed exactly once
            // (relaxation only pushes on strict improvement from INF), so
            // the settled check never skips here.
            while *head < self.fifo.len() {
                let v = self.fifo[*head];
                *head += 1;
                if !self.settled[v as usize] {
                    self.settled[v as usize] = true;
                    return Some(v);
                }
            }
            None
        }
    }

    /// Records the `SR ∪ R` sides for one decremental update.
    pub fn set_marks(&mut self, side_a: [&[VertexId]; 2], side_b: [&[VertexId]; 2]) {
        for (slices, bit) in [(side_a, MARK_A), (side_b, MARK_B)] {
            for slice in slices {
                for v in slice {
                    if self.marks[v.index()] == 0 {
                        self.marked.push(v.0);
                    }
                    self.marks[v.index()] |= bit;
                }
            }
        }
    }

    /// Clears side marks after the hub loop.
    pub fn clear_marks(&mut self) {
        for &v in &self.marked {
            self.marks[v as usize] = 0;
        }
        self.marked.clear();
    }

    /// Algorithm 3 — one incremental repair sweep for hub `h`, seeded at
    /// `start` with `(seed_dist, seed_count)` (the hub's label at the near
    /// endpoint, extended across the new/cheaper edge).
    ///
    /// Renews or inserts `(h, ·, ·)` labels wherever the current index does
    /// not certify a strictly shorter path (the relaxed prune of Lemma 3.4
    /// that keeps count-only changes reachable), expanding under rank
    /// pruning (`rank(w) ≥ rank(h)` stays inside `G_h`).
    pub fn inc_pass<T: LabelTopology<Dist = D>>(
        &mut self,
        topo: &mut T,
        h: VertexId,
        start: VertexId,
        seed_dist: D,
        seed_count: Count,
        stats: &mut MaintenanceCounters,
    ) {
        let h_rank = topo.rank(h.0);
        topo.load_probe(h);
        self.reset_sweep();
        self.seed(T::DIJKSTRA, start, seed_dist, seed_count);
        let mut head = 0usize;
        while let Some(v) = self.pop_frontier(T::DIJKSTRA, &mut head) {
            stats.vertices_visited += 1;
            let dv = self.dist[v as usize];
            // The index already covers a strictly shorter path: the new
            // paths through the mutated edge are not shortest here.
            let (qd, _) = topo.probe_query(VertexId(v));
            if qd < dv {
                continue;
            }
            let cv = self.count[v as usize];
            match topo.label_get(VertexId(v), h_rank) {
                Some((ed, ec)) if ed == dv => {
                    // Same length: additional shortest paths, counts add.
                    topo.label_upsert(VertexId(v), h_rank, dv, cv.saturating_add(ec));
                    stats.renew_count += 1;
                }
                Some(_) => {
                    topo.label_upsert(VertexId(v), h_rank, dv, cv);
                    stats.renew_dist += 1;
                }
                None => {
                    topo.label_upsert(VertexId(v), h_rank, dv, cv);
                    stats.inserted += 1;
                }
            }
            self.expand_ranked(topo, v, dv, cv, h_rank);
        }
    }

    /// Algorithm 5 (one side) — full counting sweep from `near` on the
    /// pre-mutation graph, classifying every vertex with a shortest path to
    /// `far` through the edge (of length `edge_len`) into `(SR, R)`.
    pub fn srr_pass<T: LabelTopology<Dist = D>>(
        &mut self,
        topo: &mut T,
        near: VertexId,
        far: VertexId,
        edge_len: D,
        stats: &mut MaintenanceCounters,
    ) -> (Vec<VertexId>, Vec<VertexId>) {
        let mut sr = Vec::new();
        let mut r = Vec::new();
        stats.classify_sweeps += 1;
        topo.load_probe(far);
        self.reset_sweep();
        self.seed(T::DIJKSTRA, near, D::ZERO, 1);
        let mut head = 0usize;
        while let Some(v) = self.pop_frontier(T::DIJKSTRA, &mut head) {
            stats.vertices_visited += 1;
            let dv = self.dist[v as usize];
            let (qd, qc) = topo.probe_query(VertexId(v));
            // Prune: no shortest path from v to `far` crosses the edge.
            if qd == D::INF || dv.extend(edge_len) != qd {
                continue;
            }
            let vr = topo.rank(v);
            // Condition A: common hub of both endpoints.
            // Condition B: *every* shortest path to `far` crosses the edge.
            if topo.is_common_hub(vr, near, far) || self.count[v as usize] == qc {
                sr.push(VertexId(v));
            } else {
                r.push(VertexId(v));
            }
            let cv = self.count[v as usize];
            self.expand_all(topo, v, dv, cv);
        }
        (sr, r)
    }

    /// The multi-far generalization of [`srr_pass`](Self::srr_pass): one
    /// counting sweep from `near` classifying against *every* doomed
    /// partner endpoint in `fars` at once, instead of one sweep per edge.
    ///
    /// `views[j]` answers `SpcQUERY(fars[j], ·)` (each view gets its own
    /// pinned probe); rank, adjacency, and the condition-**A** test are
    /// read through `views[0]` — all three are probe-independent on every
    /// frozen view. A popped vertex `v` is a *candidate* for far `j` when
    /// `D[v] + len_j = SpcQUERY(v, far_j) ≠ ∞` (some shortest `v`–`far_j`
    /// path crosses edge `j`), and the sweep expands `v` iff it is a
    /// candidate for at least one far. The candidate set of each far is
    /// closed under shortest-path predecessors toward `near` (if
    /// `D[u] + w(u,v) = D[v]` then `sd(u, far_j) = D[u] + len_j` by the
    /// triangle inequality both ways), so the union cone contains every
    /// far's complete shortest-path DAG and `C[v] = spc(near, v)` is exact
    /// for every candidate — single-far calls traverse bit-identically to
    /// `srr_pass`.
    ///
    /// Rather than classifying into `(SR, R)` directly, the sweep returns
    /// one [`FarColumn`] per far so [`aggregate_far_columns`] can sum
    /// `through`-counts across *all* edges doomed into the same far —
    /// the per-edge condition-**B** comparison `spc(v, near) = spc(v, far)`
    /// undercounts when several doomed last hops share `far`, misreading
    /// SR as R (see `tests/mixed_frontier.rs`).
    pub fn multi_far_pass<T: parallel::FrozenTopology<Dist = D>>(
        &mut self,
        views: &mut [T],
        near: VertexId,
        fars: &[(VertexId, D)],
        stats: &mut MaintenanceCounters,
    ) -> Vec<FarColumn> {
        debug_assert_eq!(views.len(), fars.len());
        stats.classify_sweeps += 1;
        if fars.len() > 1 {
            stats.multi_far_sweeps += 1;
        }
        for (view, &(far, _)) in views.iter_mut().zip(fars) {
            view.load_probe(far);
        }
        let mut columns: Vec<FarColumn> = fars
            .iter()
            .map(|&(far, _)| FarColumn {
                far,
                candidates: Vec::new(),
            })
            .collect();
        self.reset_sweep();
        self.seed(T::DIJKSTRA, near, D::ZERO, 1);
        let mut head = 0usize;
        while let Some(v) = self.pop_frontier(T::DIJKSTRA, &mut head) {
            stats.vertices_visited += 1;
            let dv = self.dist[v as usize];
            let cv = self.count[v as usize];
            let vr = views[0].rank(v);
            let mut expand = false;
            for (j, &(far, edge_len)) in fars.iter().enumerate() {
                let (qd, qc) = views[j].probe_query(VertexId(v));
                // Prune per far: no shortest path from v to far_j crosses
                // edge j.
                if qd == D::INF || dv.extend(edge_len) != qd {
                    continue;
                }
                expand = true;
                columns[j].candidates.push(FarCandidate {
                    v: VertexId(v),
                    through: cv,
                    qc,
                    common_hub: views[0].is_common_hub(vr, near, far),
                });
            }
            if expand {
                self.expand_all_frozen(&views[0], v, dv, cv);
            }
        }
        columns
    }

    /// Algorithm 6 — one decremental repair sweep for hub `h` on the
    /// post-mutation graph, repairing labels of vertices carrying
    /// `opposite_mark`, then removing every never-reached candidate's
    /// `(h, ·, ·)` label (unconditionally — see module docs).
    pub fn dec_pass<T: LabelTopology<Dist = D>>(
        &mut self,
        topo: &mut T,
        h: VertexId,
        opposite_mark: u8,
        removal_candidates: [&[VertexId]; 2],
        stats: &mut MaintenanceCounters,
    ) {
        let h_rank = topo.rank(h.0);
        topo.load_probe(h);
        self.reset_sweep();
        self.seed(T::DIJKSTRA, h, D::ZERO, 1);
        let mut visited_marked: Vec<u32> = Vec::new();
        let mut head = 0usize;
        while let Some(v) = self.pop_frontier(T::DIJKSTRA, &mut head) {
            stats.vertices_visited += 1;
            let dv = self.dist[v as usize];
            // PreQUERY prune: hubs ranked strictly above h (repaired this
            // round or untouched-and-valid) certify a strictly shorter
            // path — h tops no shortest path here.
            let (qd, _) = topo.probe_pre_query(VertexId(v), h_rank);
            if qd < dv {
                continue;
            }
            if self.marks[v as usize] & opposite_mark != 0 {
                let cv = self.count[v as usize];
                match topo.label_get(VertexId(v), h_rank) {
                    None => {
                        topo.label_upsert(VertexId(v), h_rank, dv, cv);
                        stats.inserted += 1;
                    }
                    Some((ed, _)) if ed != dv => {
                        topo.label_upsert(VertexId(v), h_rank, dv, cv);
                        stats.renew_dist += 1;
                    }
                    Some((_, ec)) if ec != cv => {
                        topo.label_upsert(VertexId(v), h_rank, dv, cv);
                        stats.renew_count += 1;
                    }
                    Some(_) => {}
                }
                self.updated[v as usize] = true;
                visited_marked.push(v);
            }
            let cv = self.count[v as usize];
            self.expand_ranked(topo, v, dv, cv, h_rank);
        }
        for side in removal_candidates {
            for &u in side {
                if !self.updated[u.index()] && topo.label_remove(u, h_rank) {
                    stats.removed += 1;
                }
            }
        }
        for v in visited_marked {
            self.updated[v as usize] = false;
        }
    }

    /// Relaxes every neighbor inside `G_h` (rank pruning).
    #[inline]
    fn expand_ranked<T: LabelTopology<Dist = D>>(
        &mut self,
        topo: &T,
        v: u32,
        dv: D,
        cv: Count,
        h_rank: Rank,
    ) {
        topo.for_each_neighbor(v, |w, len| {
            if topo.rank(w) < h_rank {
                return; // strictly higher-ranked: outside G_h
            }
            self.relax(T::DIJKSTRA, w, dv.extend(len), cv);
        });
    }

    /// Relaxes every neighbor (no rank pruning — SrrSEARCH sweeps the full
    /// graph).
    #[inline]
    fn expand_all<T: LabelTopology<Dist = D>>(&mut self, topo: &T, v: u32, dv: D, cv: Count) {
        topo.for_each_neighbor(v, |w, len| {
            self.relax(T::DIJKSTRA, w, dv.extend(len), cv);
        });
    }

    /// [`expand_all`](Self::expand_all) against a read-only frozen view
    /// (multi-far classification never writes, so it needs no
    /// [`LabelTopology`] write half).
    #[inline]
    fn expand_all_frozen<T: parallel::FrozenTopology<Dist = D>>(
        &mut self,
        topo: &T,
        v: u32,
        dv: D,
        cv: Count,
    ) {
        topo.for_each_neighbor(v, |w, len| {
            self.relax(T::DIJKSTRA, w, dv.extend(len), cv);
        });
    }

    #[inline]
    fn relax(&mut self, dijkstra: bool, w: u32, nd: D, cv: Count) {
        let dw = self.dist[w as usize];
        if nd < dw {
            if dw == D::INF {
                self.touched.push(w);
            }
            self.dist[w as usize] = nd;
            self.count[w as usize] = cv;
            self.push_frontier(dijkstra, w, nd);
        } else if nd == dw && dw != D::INF {
            self.count[w as usize] = self.count[w as usize].saturating_add(cv);
        }
    }
}
