//! Batch coalescing: fold a sequence of edge-level updates into their net
//! effect before any index maintenance runs.
//!
//! `apply_batch` on the three dynamic facades uses this to implement epoch
//! semantics: within a batch, an insert followed by a delete of the same
//! edge cancels outright, repeated weight changes collapse to the last
//! one, and a delete followed by a re-insert of an existing edge is a
//! topological no-op — none of them pay for index repair. Each folded
//! operation is still validated against the *folded* state exactly as the
//! sequential facade methods would validate it against the live graph
//! (inserting a present edge or deleting a missing one is an error), so a
//! batch accepts precisely the op sequences `apply_stream` accepts, and
//! validation completes before the first mutation.
//!
//! `W` is the per-edge payload: `()` for unweighted edges, the weight for
//! weighted ones. The `current` closure passed to each `fold_*` call
//! supplies the live-graph state of an edge the first time the batch
//! touches it; afterwards the coalescer tracks the folded state itself:
//!
//! ```
//! use dspc::engine::EdgeCoalescer;
//!
//! let mut co: EdgeCoalescer<u32> = EdgeCoalescer::new();
//! // Insert at weight 5, then rewrite to 9: one net insertion at 9.
//! co.fold_insert((1, 2), 5, || None).unwrap();
//! co.fold_rewrite((1, 2), 9, || unreachable!("state cached")).unwrap();
//! // Delete + re-insert of a live edge at its old weight: the drained
//! // effect has identical before/after state — a topological no-op that
//! // NetPlan::build drops entirely.
//! co.fold_remove((3, 4), || Some(7)).unwrap();
//! co.fold_insert((3, 4), 7, || unreachable!("state cached")).unwrap();
//! assert_eq!(
//!     co.drain(),
//!     vec![((1, 2), None, Some(9)), ((3, 4), Some(7), Some(7))]
//! );
//! ```
//!
//! The drained [`NetEdgeEffect`]s feed [`NetPlan::build`], which sorts
//! each surviving class rank-friendly and partitions the net deletions
//! into hub groups for the multi-edge `SrrSEARCH` repair path (see
//! [`NetPlan::deletion_groups`] and [`crate::engine::RepairAgenda`]).

use crate::label::Rank;
use dspc_graph::{GraphError, VertexId};
use std::collections::HashMap;

/// One drained edge: `(key, state before the batch, state after)`.
pub type NetEdgeEffect<W> = ((u32, u32), Option<W>, Option<W>);

/// Canonical undirected edge key (smaller id first).
pub(crate) fn ordered_key(a: VertexId, b: VertexId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Fold-time endpoint validation. Presence checks (`has_edge`/`weight`)
/// answer "absent" for unknown or deleted vertices and for self-loops, so
/// without this check such an op would sail through folding and only error
/// mid-flush — after other net ops already mutated the graph, breaking the
/// validate-before-apply guarantee.
pub(crate) fn check_endpoints(
    a: VertexId,
    b: VertexId,
    contains: impl Fn(VertexId) -> bool,
) -> dspc_graph::Result<()> {
    if a == b {
        return Err(GraphError::SelfLoop(a));
    }
    for v in [a, b] {
        if !contains(v) {
            return Err(GraphError::UnknownVertex(v));
        }
    }
    Ok(())
}

/// Sorts `keys` and returns the first duplicated key, if any — shared by
/// the multi-edge deletion validators (a repeated edge inside one set
/// would be a missing edge by the time its second deletion applied, so
/// the set is rejected up front, naming the offending edge).
pub(crate) fn duplicate_edge_key(keys: &mut [(u32, u32)]) -> Option<(u32, u32)> {
    keys.sort_unstable();
    keys.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
}

/// One post-deletion net operation a facade must apply during a batch
/// flush. Net *deletions* are not streamed through this enum: they are
/// handed to the multi-edge deletion path as whole hub groups via
/// [`NetPlan::deletion_groups`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetOp<W> {
    /// Change the payload of edge `(a, b)` (present → present, new value).
    Rewrite(VertexId, VertexId, W),
    /// Insert edge `(a, b)` with the payload (absent → present).
    Insert(VertexId, VertexId, W),
}

/// The net operations a drained batch segment boils down to, each class
/// sorted rank-friendly: by the higher-ranked endpoint first (ascending
/// rank position), so the labels of top hubs settle before lower-ranked
/// updates consult them, trimming repeat renewals.
///
/// Net deletions are additionally partitioned into **hub groups** — runs
/// of edges sharing their higher-ranked endpoint — so the facades can hand
/// each group as one edge *set* to the multi-edge `SrrSEARCH` repair path,
/// which classifies against the whole group at once and runs one repair
/// sweep per distinct affected hub instead of one per edge per hub.
#[derive(Debug)]
pub struct NetPlan<W> {
    /// Edges to delete (present → absent), grouped by higher-ranked
    /// endpoint (group boundaries in `deletion_group_ends`).
    pub deletions: Vec<(u32, u32)>,
    /// Exclusive end index of each deletion hub group, ascending.
    pub deletion_group_ends: Vec<usize>,
    /// Edges whose payload changed (present → present with a new value).
    pub rewrites: Vec<((u32, u32), W)>,
    /// Edges to insert (absent → present).
    pub insertions: Vec<((u32, u32), W)>,
}

impl<W> NetPlan<W> {
    /// The net deletions as hub groups in application order: each slice
    /// holds every net-deleted edge sharing one higher-ranked endpoint,
    /// and groups arrive rank-friendly (top hubs first).
    pub fn deletion_groups(&self) -> impl Iterator<Item = &[(u32, u32)]> {
        let mut start = 0usize;
        self.deletion_group_ends.iter().map(move |&end| {
            let g = &self.deletions[start..end];
            start = end;
            g
        })
    }

    /// [`NetPlan::deletion_groups`] with keys widened to [`VertexId`]
    /// pairs — the form the facades hand straight to the drivers'
    /// multi-edge deletion entry points.
    pub fn deletion_vertex_groups(&self) -> impl Iterator<Item = Vec<(VertexId, VertexId)>> + '_ {
        self.deletion_groups()
            .map(|g| g.iter().map(|&(a, b)| (VertexId(a), VertexId(b))).collect())
    }

    /// The post-deletion plan in application order — rewrites, then
    /// insertions — as a single op stream, so every facade's flush is one
    /// grouped-deletion loop plus one loop over this iterator, and the
    /// ordering policy lives here alone.
    pub fn into_post_deletion_ops(self) -> impl Iterator<Item = NetOp<W>> {
        let v = |(a, b): (u32, u32)| (VertexId(a), VertexId(b));
        self.rewrites
            .into_iter()
            .map(move |(k, w)| {
                let (a, b) = v(k);
                NetOp::Rewrite(a, b, w)
            })
            .chain(self.insertions.into_iter().map(move |(k, w)| {
                let (a, b) = v(k);
                NetOp::Insert(a, b, w)
            }))
    }
}

impl<W: Copy + PartialEq> NetPlan<W> {
    /// Partitions drained net effects into apply classes; `rank_of` maps a
    /// vertex id to its rank position.
    pub fn build(
        effects: Vec<NetEdgeEffect<W>>,
        mut rank_of: impl FnMut(u32) -> Rank,
    ) -> NetPlan<W> {
        let mut plan = NetPlan {
            deletions: Vec::new(),
            deletion_group_ends: Vec::new(),
            rewrites: Vec::new(),
            insertions: Vec::new(),
        };
        for (key, initial, fin) in effects {
            match (initial, fin) {
                (Some(_), None) => plan.deletions.push(key),
                (None, Some(w)) => plan.insertions.push((key, w)),
                (Some(w0), Some(w1)) if w0 != w1 => plan.rewrites.push((key, w1)),
                // Present→same and absent→absent net out: no repair.
                _ => {}
            }
        }
        let mut rank_key = |&(a, b): &(u32, u32)| {
            let (ra, rb) = (rank_of(a), rank_of(b));
            (ra.min(rb), ra.max(rb))
        };
        plan.deletions.sort_by_key(&mut rank_key);
        plan.rewrites.sort_by_key(|(k, _)| rank_key(k));
        plan.insertions.sort_by_key(|(k, _)| rank_key(k));
        // Chunk deletions into runs sharing the higher-ranked endpoint
        // (rank positions are unique, so an equal min-rank means the same
        // top vertex).
        for i in 1..=plan.deletions.len() {
            if i == plan.deletions.len()
                || rank_key(&plan.deletions[i]).0 != rank_key(&plan.deletions[i - 1]).0
            {
                plan.deletion_group_ends.push(i);
            }
        }
        plan
    }
}

/// One edge's fold through a batch.
#[derive(Clone, Copy, Debug)]
struct EdgeFold<W> {
    key: (u32, u32),
    /// Presence/payload in the live graph when first touched.
    initial: Option<W>,
    /// Presence/payload after folding every batched op so far.
    folded: Option<W>,
}

/// Folds edge updates keyed by endpoint pair into net effects.
#[derive(Debug)]
pub struct EdgeCoalescer<W: Copy> {
    slot: HashMap<(u32, u32), usize>,
    /// First-touch order, for deterministic iteration.
    folds: Vec<EdgeFold<W>>,
    ops_folded: usize,
}

impl<W: Copy> EdgeCoalescer<W> {
    /// An empty coalescer.
    pub fn new() -> Self {
        EdgeCoalescer {
            slot: HashMap::new(),
            folds: Vec::new(),
            ops_folded: 0,
        }
    }

    /// Whether any ops were folded since the last [`drain`](Self::drain).
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// Number of raw ops folded since the last drain.
    pub fn ops_folded(&self) -> usize {
        self.ops_folded
    }

    fn entry(&mut self, key: (u32, u32), current: impl FnOnce() -> Option<W>) -> &mut EdgeFold<W> {
        let idx = match self.slot.get(&key) {
            Some(&i) => i,
            None => {
                let initial = current();
                self.folds.push(EdgeFold {
                    key,
                    initial,
                    folded: initial,
                });
                let i = self.folds.len() - 1;
                self.slot.insert(key, i);
                i
            }
        };
        &mut self.folds[idx]
    }

    /// Folds an insertion of `key` with payload `w`. Errors when the edge
    /// is present in the folded state (mirrors the sequential duplicate
    /// check).
    pub fn fold_insert(
        &mut self,
        key: (u32, u32),
        w: W,
        current: impl FnOnce() -> Option<W>,
    ) -> dspc_graph::Result<()> {
        self.ops_folded += 1;
        let fold = self.entry(key, current);
        if fold.folded.is_some() {
            return Err(GraphError::DuplicateEdge(VertexId(key.0), VertexId(key.1)));
        }
        fold.folded = Some(w);
        Ok(())
    }

    /// Folds a deletion of `key`. Errors when the edge is absent in the
    /// folded state.
    pub fn fold_remove(
        &mut self,
        key: (u32, u32),
        current: impl FnOnce() -> Option<W>,
    ) -> dspc_graph::Result<()> {
        self.ops_folded += 1;
        let fold = self.entry(key, current);
        if fold.folded.is_none() {
            return Err(GraphError::MissingEdge(VertexId(key.0), VertexId(key.1)));
        }
        fold.folded = None;
        Ok(())
    }

    /// Folds a payload rewrite (weight change). Errors when the edge is
    /// absent in the folded state.
    pub fn fold_rewrite(
        &mut self,
        key: (u32, u32),
        w: W,
        current: impl FnOnce() -> Option<W>,
    ) -> dspc_graph::Result<()> {
        self.ops_folded += 1;
        let fold = self.entry(key, current);
        if fold.folded.is_none() {
            return Err(GraphError::MissingEdge(VertexId(key.0), VertexId(key.1)));
        }
        fold.folded = Some(w);
        Ok(())
    }

    /// Returns every touched edge as `(key, initial, final)` in first-touch
    /// order and resets the coalescer for the next segment.
    pub fn drain(&mut self) -> Vec<NetEdgeEffect<W>> {
        self.slot.clear();
        self.ops_folded = 0;
        self.folds
            .drain(..)
            .map(|f| (f.key, f.initial, f.folded))
            .collect()
    }
}

impl<W: Copy> Default for EdgeCoalescer<W> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_delete_cancels() {
        let mut co: EdgeCoalescer<()> = EdgeCoalescer::new();
        co.fold_insert((1, 2), (), || None).unwrap();
        co.fold_remove((1, 2), || None).unwrap();
        let net = co.drain();
        assert_eq!(net.len(), 1);
        let (key, initial, fin) = net[0];
        assert_eq!(key, (1, 2));
        assert!(initial.is_none() && fin.is_none());
    }

    #[test]
    fn delete_then_reinsert_is_topological_noop() {
        let mut co: EdgeCoalescer<u32> = EdgeCoalescer::new();
        co.fold_remove((1, 2), || Some(7)).unwrap();
        co.fold_insert((1, 2), 7, || unreachable!("state cached"))
            .unwrap();
        let net = co.drain();
        assert_eq!(net, vec![((1, 2), Some(7), Some(7))]);
    }

    #[test]
    fn sequential_validation_preserved() {
        let mut co: EdgeCoalescer<()> = EdgeCoalescer::new();
        co.fold_insert((1, 2), (), || None).unwrap();
        assert!(matches!(
            co.fold_insert((1, 2), (), || None),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        assert!(matches!(
            co.fold_remove((3, 4), || None),
            Err(GraphError::MissingEdge(_, _))
        ));
        assert!(matches!(
            co.fold_rewrite((3, 4), (), || None),
            Err(GraphError::MissingEdge(_, _))
        ));
    }

    #[test]
    fn net_plan_groups_deletions_by_top_endpoint() {
        // Identity ranks: the smaller id is the higher-ranked endpoint.
        let effects: Vec<NetEdgeEffect<()>> = vec![
            ((3, 5), Some(()), None),
            ((1, 9), Some(()), None),
            ((1, 4), Some(()), None),
            ((2, 6), None, Some(())),
            ((3, 7), Some(()), None),
        ];
        let plan = NetPlan::build(effects, Rank);
        let groups: Vec<&[(u32, u32)]> = plan.deletion_groups().collect();
        assert_eq!(groups, vec![&[(1, 4), (1, 9)][..], &[(3, 5), (3, 7)][..]]);
        assert_eq!(plan.insertions, vec![((2, 6), ())]);
        let ops: Vec<NetOp<()>> = plan.into_post_deletion_ops().collect();
        assert_eq!(ops, vec![NetOp::Insert(VertexId(2), VertexId(6), ())]);
    }

    #[test]
    fn last_weight_wins_and_drain_resets() {
        let mut co: EdgeCoalescer<u32> = EdgeCoalescer::new();
        co.fold_rewrite((0, 1), 5, || Some(2)).unwrap();
        co.fold_rewrite((0, 1), 9, || unreachable!()).unwrap();
        assert_eq!(co.ops_folded(), 2);
        assert_eq!(co.drain(), vec![((0, 1), Some(2), Some(9))]);
        assert!(co.is_empty());
        assert_eq!(co.ops_folded(), 0);
        // Post-drain, the live state is consulted afresh.
        co.fold_insert((0, 1), 3, || None).unwrap();
        assert_eq!(co.drain(), vec![((0, 1), None, Some(3))]);
    }
}
