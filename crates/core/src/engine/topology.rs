//! [`LabelTopology`] views: how each index variant exposes its graph,
//! label family, and pinned-hub probe to the generic engine.
//!
//! A view is constructed per update (borrowing the graph immutably and the
//! index mutably) and handed to the engine's passes. The directed view is
//! parameterized by the label family being repaired: repairing `L_in`
//! walks out-arcs and pins `L_out` hubs, repairing `L_out` walks in-arcs
//! and pins `L_in` — which makes the same view type serve the forward and
//! backward halves of every directed update.

use super::parallel::FrozenTopology;
use super::LabelTopology;
use crate::directed::{DirectedSpcIndex, Side};
use crate::index::SpcIndex;
use crate::label::{Count, LabelEntry, Rank};
use crate::query::HubProbe;
use crate::weighted::{WHubProbe, WLabelEntry, WeightedSpcIndex};
use dspc_graph::weighted::{WDist, WeightedGraph};
use dspc_graph::{DirectedGraph, UndirectedGraph, VertexId};

/// The paper's primary setting: undirected unit-length edges, one label
/// set per vertex, hub-entry counts maintained through the index.
pub struct UndirectedTopo<'a> {
    g: &'a UndirectedGraph,
    index: &'a mut SpcIndex,
    probe: &'a mut HubProbe,
}

impl<'a> UndirectedTopo<'a> {
    /// Borrows graph, index, and probe for one update.
    pub fn new(g: &'a UndirectedGraph, index: &'a mut SpcIndex, probe: &'a mut HubProbe) -> Self {
        UndirectedTopo { g, index, probe }
    }
}

impl LabelTopology for UndirectedTopo<'_> {
    type Dist = u32;

    const DIJKSTRA: bool = false;

    #[inline]
    fn rank(&self, v: u32) -> Rank {
        self.index.rank(VertexId(v))
    }

    fn load_probe(&mut self, x: VertexId) {
        self.probe.load(self.index, x);
    }

    #[inline]
    fn probe_query(&self, v: VertexId) -> (u32, Count) {
        let q = self.probe.query(self.index.label_set(v));
        (q.dist, q.count)
    }

    #[inline]
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (u32, Count) {
        let q = self.probe.pre_query(self.index.label_set(v), limit);
        (q.dist, q.count)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(u32, u32)>(&self, v: u32, mut f: F) {
        for &w in self.g.neighbors(VertexId(v)) {
            f(w, 1);
        }
    }

    #[inline]
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(u32, Count)> {
        self.index.label_set(v).get(hub).map(|e| (e.dist, e.count))
    }

    #[inline]
    fn label_upsert(&mut self, v: VertexId, hub: Rank, d: u32, c: Count) {
        self.index.upsert_entry(v, LabelEntry::new(hub, d, c));
    }

    #[inline]
    fn label_remove(&mut self, v: VertexId, hub: Rank) -> bool {
        self.index.remove_entry(v, hub).is_some()
    }

    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool {
        hub <= self.index.rank(near)
            && hub <= self.index.rank(far)
            && self.index.label_set(near).contains(hub)
            && self.index.label_set(far).contains(hub)
    }
}

/// Appendix C.1: directed graphs with an `L_in`/`L_out` pair per vertex.
/// `repair` selects the family the engine reads and writes.
pub struct DirectedTopo<'a> {
    g: &'a DirectedGraph,
    index: &'a mut DirectedSpcIndex,
    probe: &'a mut HubProbe,
    repair: Side,
}

impl<'a> DirectedTopo<'a> {
    /// Borrows graph, index, and probe; `repair` is the family to fix up.
    pub fn new(
        g: &'a DirectedGraph,
        index: &'a mut DirectedSpcIndex,
        probe: &'a mut HubProbe,
        repair: Side,
    ) -> Self {
        DirectedTopo {
            g,
            index,
            probe,
            repair,
        }
    }

    #[inline]
    fn pin_side(&self) -> Side {
        self.repair.opposite()
    }
}

impl LabelTopology for DirectedTopo<'_> {
    type Dist = u32;

    const DIJKSTRA: bool = false;

    #[inline]
    fn rank(&self, v: u32) -> Rank {
        self.index.rank(VertexId(v))
    }

    fn load_probe(&mut self, x: VertexId) {
        self.probe.load_labels(
            self.index.label(self.pin_side(), x),
            self.index.ranks().len(),
        );
    }

    #[inline]
    fn probe_query(&self, v: VertexId) -> (u32, Count) {
        let q = self.probe.query(self.index.label(self.repair, v));
        (q.dist, q.count)
    }

    #[inline]
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (u32, Count) {
        let q = self
            .probe
            .pre_query(self.index.label(self.repair, v), limit);
        (q.dist, q.count)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(u32, u32)>(&self, v: u32, mut f: F) {
        let neighbors = match self.repair {
            // Repairing L_in means sweeping *away* from the hub along arcs.
            Side::In => self.g.out_neighbors(VertexId(v)),
            Side::Out => self.g.in_neighbors(VertexId(v)),
        };
        for &w in neighbors {
            f(w, 1);
        }
    }

    #[inline]
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(u32, Count)> {
        self.index
            .label(self.repair, v)
            .get(hub)
            .map(|e| (e.dist, e.count))
    }

    #[inline]
    fn label_upsert(&mut self, v: VertexId, hub: Rank, d: u32, c: Count) {
        self.index
            .label_mut(self.repair, v)
            .upsert(LabelEntry::new(hub, d, c));
    }

    #[inline]
    fn label_remove(&mut self, v: VertexId, hub: Rank) -> bool {
        self.index.label_mut(self.repair, v).remove(hub).is_some()
    }

    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool {
        let side = self.pin_side();
        self.index.label(side, near).contains(hub) && self.index.label(side, far).contains(hub)
    }
}

/// Appendix C.2: weighted edges, `u64` accumulated distances, Dijkstra
/// traversal order.
pub struct WeightedTopo<'a> {
    g: &'a WeightedGraph,
    index: &'a mut WeightedSpcIndex,
    probe: &'a mut WHubProbe,
}

impl<'a> WeightedTopo<'a> {
    /// Borrows graph, index, and probe for one update.
    pub fn new(
        g: &'a WeightedGraph,
        index: &'a mut WeightedSpcIndex,
        probe: &'a mut WHubProbe,
    ) -> Self {
        WeightedTopo { g, index, probe }
    }
}

impl LabelTopology for WeightedTopo<'_> {
    type Dist = WDist;

    const DIJKSTRA: bool = true;

    #[inline]
    fn rank(&self, v: u32) -> Rank {
        self.index.rank(VertexId(v))
    }

    fn load_probe(&mut self, x: VertexId) {
        self.probe.load(self.index, x);
    }

    #[inline]
    fn probe_query(&self, v: VertexId) -> (WDist, Count) {
        let q = self.probe.query_limited(self.index.label_set(v), None);
        (q.dist, q.count)
    }

    #[inline]
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (WDist, Count) {
        let q = self
            .probe
            .query_limited(self.index.label_set(v), Some(limit));
        (q.dist, q.count)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(u32, WDist)>(&self, v: u32, mut f: F) {
        for &(w, wt) in self.g.neighbors(VertexId(v)) {
            f(w, wt as WDist);
        }
    }

    #[inline]
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(WDist, Count)> {
        self.index.label_set(v).get(hub).map(|e| (e.dist, e.count))
    }

    #[inline]
    fn label_upsert(&mut self, v: VertexId, hub: Rank, d: WDist, c: Count) {
        self.index
            .label_set_mut(v)
            .upsert(WLabelEntry::new(hub, d, c));
    }

    #[inline]
    fn label_remove(&mut self, v: VertexId, hub: Rank) -> bool {
        self.index.label_set_mut(v).remove(hub).is_some()
    }

    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool {
        hub <= self.index.rank(near)
            && hub <= self.index.rank(far)
            && self.index.label_set(near).contains(hub)
            && self.index.label_set(far).contains(hub)
    }
}

/// Read-only undirected view for parallel workers: borrows the index
/// *immutably* (shareable across threads) and implements only the read
/// half of the engine contract ([`FrozenTopology`]); writes are buffered
/// by [`super::parallel::Buffered`].
///
/// INVARIANT (all three `Frozen*` views): the read methods must stay
/// byte-equivalent to the corresponding `*Topo` implementations above —
/// the parallel ≡ sequential determinism contract depends on it, and
/// `tests/parallel_maintenance.rs` enforces it. Any change to a `*Topo`
/// read method must be mirrored here.
pub struct FrozenUndirected<'a> {
    g: &'a UndirectedGraph,
    index: &'a SpcIndex,
    probe: &'a mut HubProbe,
}

impl<'a> FrozenUndirected<'a> {
    /// Borrows graph and index immutably, the worker's probe mutably.
    pub fn new(g: &'a UndirectedGraph, index: &'a SpcIndex, probe: &'a mut HubProbe) -> Self {
        FrozenUndirected { g, index, probe }
    }
}

impl FrozenTopology for FrozenUndirected<'_> {
    type Dist = u32;

    const DIJKSTRA: bool = false;

    #[inline]
    fn rank(&self, v: u32) -> Rank {
        self.index.rank(VertexId(v))
    }

    fn load_probe(&mut self, x: VertexId) {
        self.probe.load(self.index, x);
    }

    #[inline]
    fn probe_query(&self, v: VertexId) -> (u32, Count) {
        let q = self.probe.query(self.index.label_set(v));
        (q.dist, q.count)
    }

    #[inline]
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (u32, Count) {
        let q = self.probe.pre_query(self.index.label_set(v), limit);
        (q.dist, q.count)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(u32, u32)>(&self, v: u32, mut f: F) {
        for &w in self.g.neighbors(VertexId(v)) {
            f(w, 1);
        }
    }

    #[inline]
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(u32, Count)> {
        self.index.label_set(v).get(hub).map(|e| (e.dist, e.count))
    }

    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool {
        hub <= self.index.rank(near)
            && hub <= self.index.rank(far)
            && self.index.label_set(near).contains(hub)
            && self.index.label_set(far).contains(hub)
    }
}

/// Read-only directed view for parallel workers; `repair` selects the
/// family being swept exactly as in [`DirectedTopo`].
pub struct FrozenDirected<'a> {
    g: &'a DirectedGraph,
    index: &'a DirectedSpcIndex,
    probe: &'a mut HubProbe,
    repair: Side,
}

impl<'a> FrozenDirected<'a> {
    /// Borrows graph and index immutably, the worker's probe mutably.
    pub fn new(
        g: &'a DirectedGraph,
        index: &'a DirectedSpcIndex,
        probe: &'a mut HubProbe,
        repair: Side,
    ) -> Self {
        FrozenDirected {
            g,
            index,
            probe,
            repair,
        }
    }

    #[inline]
    fn pin_side(&self) -> Side {
        self.repair.opposite()
    }
}

impl FrozenTopology for FrozenDirected<'_> {
    type Dist = u32;

    const DIJKSTRA: bool = false;

    #[inline]
    fn rank(&self, v: u32) -> Rank {
        self.index.rank(VertexId(v))
    }

    fn load_probe(&mut self, x: VertexId) {
        self.probe.load_labels(
            self.index.label(self.pin_side(), x),
            self.index.ranks().len(),
        );
    }

    #[inline]
    fn probe_query(&self, v: VertexId) -> (u32, Count) {
        let q = self.probe.query(self.index.label(self.repair, v));
        (q.dist, q.count)
    }

    #[inline]
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (u32, Count) {
        let q = self
            .probe
            .pre_query(self.index.label(self.repair, v), limit);
        (q.dist, q.count)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(u32, u32)>(&self, v: u32, mut f: F) {
        let neighbors = match self.repair {
            Side::In => self.g.out_neighbors(VertexId(v)),
            Side::Out => self.g.in_neighbors(VertexId(v)),
        };
        for &w in neighbors {
            f(w, 1);
        }
    }

    #[inline]
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(u32, Count)> {
        self.index
            .label(self.repair, v)
            .get(hub)
            .map(|e| (e.dist, e.count))
    }

    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool {
        let side = self.pin_side();
        self.index.label(side, near).contains(hub) && self.index.label(side, far).contains(hub)
    }
}

/// Read-only weighted view for parallel workers.
pub struct FrozenWeighted<'a> {
    g: &'a WeightedGraph,
    index: &'a WeightedSpcIndex,
    probe: &'a mut WHubProbe,
}

impl<'a> FrozenWeighted<'a> {
    /// Borrows graph and index immutably, the worker's probe mutably.
    pub fn new(
        g: &'a WeightedGraph,
        index: &'a WeightedSpcIndex,
        probe: &'a mut WHubProbe,
    ) -> Self {
        FrozenWeighted { g, index, probe }
    }
}

impl FrozenTopology for FrozenWeighted<'_> {
    type Dist = WDist;

    const DIJKSTRA: bool = true;

    #[inline]
    fn rank(&self, v: u32) -> Rank {
        self.index.rank(VertexId(v))
    }

    fn load_probe(&mut self, x: VertexId) {
        self.probe.load(self.index, x);
    }

    #[inline]
    fn probe_query(&self, v: VertexId) -> (WDist, Count) {
        let q = self.probe.query_limited(self.index.label_set(v), None);
        (q.dist, q.count)
    }

    #[inline]
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (WDist, Count) {
        let q = self
            .probe
            .query_limited(self.index.label_set(v), Some(limit));
        (q.dist, q.count)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(u32, WDist)>(&self, v: u32, mut f: F) {
        for &(w, wt) in self.g.neighbors(VertexId(v)) {
            f(w, wt as WDist);
        }
    }

    #[inline]
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(WDist, Count)> {
        self.index.label_set(v).get(hub).map(|e| (e.dist, e.count))
    }

    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool {
        hub <= self.index.rank(near)
            && hub <= self.index.rank(far)
            && self.index.label_set(near).contains(hub)
            && self.index.label_set(far).contains(hub)
    }
}
