//! Wave-scheduled parallel intra-batch maintenance.
//!
//! §6 of the paper leaves parallel *updates* as future work because hub
//! repair sweeps have strict rank-order dependencies: `DecUPDATE` for hub
//! `h` prunes with `PreQUERY`, which trusts the labels of every hub ranked
//! strictly above `h` to be repaired already. This module recovers
//! intra-batch parallelism anyway, without giving up exactness or
//! determinism, by exploiting what the batch path already computes: the
//! deduplicated hub agenda and shared receiver frontier of a whole
//! net-deletion group ([`super::RepairAgenda`]).
//!
//! ## The scheme
//!
//! 1. **Frozen sweeps.** A worker runs a hub's repair sweep against an
//!    *immutable* borrow of the index, recording its label mutations in a
//!    [`LabelWriteLog`] instead of applying them ([`Buffered`] wraps a
//!    read-only [`FrozenTopology`] view into the engine's mutable
//!    [`LabelTopology`]). Logs are committed on the coordinating thread at
//!    wave boundaries, so no two threads ever alias index memory.
//! 2. **Rank-independent waves.** Hubs are partitioned greedily, in
//!    descending rank order, into waves such that no two hubs in one wave
//!    *interfere* ([`plan_waves`]). A sweep for hub `h` only ever writes
//!    `(h, ·, ·)` rows — two sweeps never write the same label — so the
//!    only hazard is a lower-ranked hub **reading** (via `PreQUERY` or its
//!    pinned probe) a label a higher-ranked same-wave hub would have
//!    rewritten. The conservative interference test over-approximates that
//!    read/write intersection (see [`Interference`]); whenever it reports
//!    independence, the frozen sweep observes exactly the state the
//!    sequential schedule would have shown it.
//! 3. **Deterministic merge.** Logs and [`super::MaintenanceCounters`]
//!    are merged in rank order. Because every sweep is bit-identical to
//!    its sequential counterpart, the committed index, query answers, and
//!    merged counters are independent of the thread count — which is what
//!    lets CI gate on sweep counters instead of flaky wall-clock numbers.
//!    Hub sweeps of one wave run on a **persistent worker pool**
//!    ([`run_wave_pool`]): workers and their engine arenas are created
//!    once per batch and reused across every wave, with idle workers
//!    back-stealing queued hubs from their neighbors — only the
//!    (scheduling-dependent) `steal_events` counter can tell the
//!    difference.
//!
//! ## The interference test
//!
//! Let `comp(v)` be `v`'s connected component in the *residual* graph (the
//! graph with the whole net-deletion set removed; weak components for
//! the directed variant). Components are labeled by [`agenda_components`],
//! a bounded BFS seeded only at the agenda's hubs and receivers — vertices
//! in components the agenda never touches are left unlabeled and never
//! visited, unlike the former full-graph union-find over every residual
//! edge. A sweep for hub `h`:
//!
//! * **writes** row `h` at vertices it visits (all inside `comp(h)`, by
//!   connectivity) and *removes* row `h` at unreached receivers — which
//!   can lie in other components, but only where the index already holds
//!   an `(h, ·, ·)` entry;
//! * **reads** labels only at visited vertices (all inside `comp(h)`) and
//!   at its own pinned label set (`h` itself).
//!
//! Hence hubs `x` and `y` can only interfere when `comp(x) = comp(y)`, or
//! when one hub's *removal reach* — the set of components holding a
//! receiver labeled with that hub's row — includes the other's component.
//! Everything else is independent; in particular, repair work in disjoint
//! residual components always parallelizes. A hub's own upserts only ever
//! shrink nothing and stay in `comp(h)`, so the model built once per group
//! stays conservative for every later wave.

use super::{
    EngineDist, LabelTopology, MaintenanceCounters, UpdateEngine, MARK_A, REPAIR_PRIMARY,
    REPAIR_SECONDARY,
};
use crate::label::{Count, Rank};
use dspc_graph::VertexId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// A recorded label mutation: `Some((d, c))` upserts `(hub, d, c)` at the
/// vertex, `None` removes the `(hub, ·, ·)` entry.
pub type LabelWriteOp<D> = (VertexId, Rank, Option<(D, Count)>);

/// The buffered label mutations of one frozen repair sweep, in the order
/// the sequential sweep would have applied them.
#[derive(Debug, Default)]
pub struct LabelWriteLog<D> {
    ops: Vec<LabelWriteOp<D>>,
}

impl<D> LabelWriteLog<D> {
    /// An empty log.
    pub fn new() -> Self {
        LabelWriteLog { ops: Vec::new() }
    }

    /// Drains the recorded operations for committing.
    pub fn drain(&mut self) -> impl Iterator<Item = LabelWriteOp<D>> + '_ {
        self.ops.drain(..)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The read-only half of [`LabelTopology`]: what a frozen worker view must
/// provide. [`Buffered`] lifts any implementor into a full
/// [`LabelTopology`] by logging the write half.
pub trait FrozenTopology {
    /// Distance domain.
    type Dist: EngineDist;

    /// Whether sweeps settle in distance order (Dijkstra) or FIFO order.
    const DIJKSTRA: bool;

    /// Rank of vertex `v`.
    fn rank(&self, v: u32) -> Rank;

    /// Pins the hub-side label set of `x` for subsequent probe queries.
    fn load_probe(&mut self, x: VertexId);

    /// `SpcQUERY(pinned, v)`.
    fn probe_query(&self, v: VertexId) -> (Self::Dist, Count);

    /// `PreQUERY(pinned, v)`: hubs ranked strictly above `limit` only.
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (Self::Dist, Count);

    /// Visits each traversal neighbor of `v` with its edge length.
    fn for_each_neighbor<F: FnMut(u32, Self::Dist)>(&self, v: u32, f: F);

    /// Entry `(hub, ·, ·)` of the repaired family at `v`, if present.
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(Self::Dist, Count)>;

    /// Condition **A** membership test.
    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool;
}

/// Adapter: a frozen read-only view plus a write log, presented to the
/// engine as a plain [`LabelTopology`].
///
/// Sound for the engine's sweeps because neither `srr_pass` nor `dec_pass`
/// ever reads a label its own pass previously wrote: every vertex is
/// settled once, the row-`h` read at a vertex precedes the row-`h` write
/// there, and removal candidates are exactly the *unvisited* receivers —
/// so reading the frozen index reproduces the sequential values verbatim.
pub struct Buffered<'a, T: FrozenTopology> {
    base: T,
    log: &'a mut LabelWriteLog<T::Dist>,
}

impl<'a, T: FrozenTopology> Buffered<'a, T> {
    /// Wraps `base`, recording writes into `log`.
    pub fn new(base: T, log: &'a mut LabelWriteLog<T::Dist>) -> Self {
        Buffered { base, log }
    }
}

impl<T: FrozenTopology> LabelTopology for Buffered<'_, T> {
    type Dist = T::Dist;

    const DIJKSTRA: bool = T::DIJKSTRA;

    #[inline]
    fn rank(&self, v: u32) -> Rank {
        self.base.rank(v)
    }

    fn load_probe(&mut self, x: VertexId) {
        self.base.load_probe(x);
    }

    #[inline]
    fn probe_query(&self, v: VertexId) -> (Self::Dist, Count) {
        self.base.probe_query(v)
    }

    #[inline]
    fn probe_pre_query(&self, v: VertexId, limit: Rank) -> (Self::Dist, Count) {
        self.base.probe_pre_query(v, limit)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(u32, Self::Dist)>(&self, v: u32, f: F) {
        self.base.for_each_neighbor(v, f);
    }

    #[inline]
    fn label_get(&self, v: VertexId, hub: Rank) -> Option<(Self::Dist, Count)> {
        self.base.label_get(v, hub)
    }

    #[inline]
    fn label_upsert(&mut self, v: VertexId, hub: Rank, d: Self::Dist, c: Count) {
        self.log.ops.push((v, hub, Some((d, c))));
    }

    #[inline]
    fn label_remove(&mut self, v: VertexId, hub: Rank) -> bool {
        let existed = self.base.label_get(v, hub).is_some();
        if existed {
            self.log.ops.push((v, hub, None));
        }
        existed
    }

    fn is_common_hub(&self, hub: Rank, near: VertexId, far: VertexId) -> bool {
        self.base.is_common_hub(hub, near, far)
    }
}

/// Labels the residual components *touched by the agenda* with a bounded
/// BFS: each unlabeled seed floods its component (via `neighbors`, which
/// visits a vertex's residual adjacency; directed callers visit out- and
/// in-neighbors for weak components), labeling every member with the
/// seed's vertex id. Vertices in components no seed reaches keep the
/// `u32::MAX` sentinel and are never visited — [`Interference`] only ever
/// compares labels of agenda members, so the partition is equivalent to a
/// full-graph union-find restricted to the components that matter, at a
/// cost bounded by their total size instead of the whole residual edge
/// set.
///
/// Returns `(comp, probes)` where `probes` counts labeled vertices (the
/// `interference_probes` counter).
pub fn agenda_components(
    capacity: usize,
    seeds: impl Iterator<Item = VertexId>,
    mut neighbors: impl FnMut(u32, &mut dyn FnMut(u32)),
) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; capacity];
    let mut probes = 0usize;
    let mut queue: Vec<u32> = Vec::new();
    for seed in seeds {
        if comp[seed.index()] != u32::MAX {
            continue;
        }
        let label = seed.0;
        comp[seed.index()] = label;
        probes += 1;
        queue.clear();
        queue.push(seed.0);
        let mut head = 0usize;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            neighbors(v, &mut |w| {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = label;
                    probes += 1;
                    queue.push(w);
                }
            });
        }
    }
    (comp, probes)
}

/// The conservative pairwise interference model over one group's hub
/// agenda (see the module docs for the safety argument).
#[derive(Debug)]
pub struct Interference {
    /// Residual-graph component of each agenda hub's vertex.
    hub_comp: Vec<u32>,
    /// Per hub: sorted component ids of receivers carrying that hub's row
    /// — the components its removal pass can write into.
    removal_comps: Vec<Vec<u32>>,
}

impl Interference {
    /// Builds the model. `comp` maps vertex id → residual component,
    /// `hubs` is the rank-ordered agenda, `receivers` the shared
    /// receiver/removal frontier, `hub_vertex` resolves a rank to its
    /// vertex, and `rows_at` enumerates the hub rows present at a receiver
    /// (across every label family the group repairs).
    pub fn build(
        comp: &[u32],
        hubs: &[(Rank, u8)],
        receivers: &[VertexId],
        mut hub_vertex: impl FnMut(Rank) -> VertexId,
        mut rows_at: impl FnMut(VertexId, &mut dyn FnMut(Rank)),
    ) -> Interference {
        // rank → agenda slot (rank spaces are dense and small).
        let mut slot: Vec<u32> = vec![u32::MAX; comp.len()];
        for (i, &(r, _)) in hubs.iter().enumerate() {
            slot[r.index()] = i as u32;
        }
        let hub_comp: Vec<u32> = hubs
            .iter()
            .map(|&(r, _)| comp[hub_vertex(r).index()])
            .collect();
        let mut removal_comps: Vec<Vec<u32>> = vec![Vec::new(); hubs.len()];
        for &v in receivers {
            let cv = comp[v.index()];
            rows_at(v, &mut |r| {
                if let Some(&s) = slot.get(r.index()) {
                    if s != u32::MAX {
                        let rc = &mut removal_comps[s as usize];
                        if !rc.contains(&cv) {
                            rc.push(cv);
                        }
                    }
                }
            });
        }
        for rc in &mut removal_comps {
            rc.sort_unstable();
        }
        Interference {
            hub_comp,
            removal_comps,
        }
    }

    /// Whether agenda hubs `i` and `j` may interfere: same residual
    /// component, or either hub's removal reach covers the other's
    /// component.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        self.hub_comp[i] == self.hub_comp[j]
            || self.removal_comps[i]
                .binary_search(&self.hub_comp[j])
                .is_ok()
            || self.removal_comps[j]
                .binary_search(&self.hub_comp[i])
                .is_ok()
    }
}

/// The wave partition of one group's hub agenda: each wave holds agenda
/// indices that are pairwise independent and may run concurrently; waves
/// execute in order, with every log committed before the next wave starts.
#[derive(Debug)]
pub struct WaveSchedule {
    waves: Vec<Vec<usize>>,
}

impl WaveSchedule {
    /// Number of waves.
    pub fn waves(&self) -> usize {
        self.waves.len()
    }

    /// Width of the widest wave (≥ 2 means real parallelism was found).
    pub fn max_wave_width(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The waves, in execution order, as slices of agenda indices (each
    /// slice ascending, i.e. descending hub rank).
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.waves.iter().map(Vec::as_slice)
    }
}

/// Greedy earliest-wave partition of `n` rank-ordered agenda entries:
/// entry `i` lands in the first wave after every earlier conflicting
/// entry's wave. Conflicting pairs therefore always execute in rank order
/// with a commit barrier between them, while independent hubs share a
/// wave. Deterministic: depends only on the agenda order and the
/// (deterministic) interference test, never on thread scheduling.
pub fn plan_waves(n: usize, mut conflicts: impl FnMut(usize, usize) -> bool) -> WaveSchedule {
    let mut wave_of = vec![0usize; n];
    let mut waves: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let mut w = 0usize;
        for (j, &wave_j) in wave_of.iter().enumerate().take(i) {
            if wave_j >= w && conflicts(j, i) {
                w = wave_j + 1;
            }
        }
        wave_of[i] = w;
        if waves.len() <= w {
            waves.resize_with(w + 1, Vec::new);
        }
        waves[w].push(i);
    }
    WaveSchedule { waves }
}

/// Records a schedule's shape into the group's counters (sequential
/// repair leaves both fields at zero).
pub fn note_schedule(stats: &mut MaintenanceCounters, schedule: &WaveSchedule) {
    stats.waves += schedule.waves();
    stats.max_wave_width = stats.max_wave_width.max(schedule.max_wave_width());
}

/// Runs a wave schedule on a persistent worker pool with work stealing.
///
/// `threads` workers are spawned **once** (one [`std::thread::scope`]
/// spans every wave) and each creates its scratch **once** — the arena
/// allocations the former per-wave `fan_out` paid per wave are paid per
/// batch. For each wave, the coordinating thread splits the wave's item
/// indices into contiguous per-worker runs, releases the pool through a
/// barrier, and waits on a second barrier while workers drain their own
/// runs front-to-back and, when empty, *steal from the back* of the next
/// non-empty neighbor (fixed scan order). Each item's result lands in its
/// own slot, so `commit` always observes a wave's results in item order —
/// stealing changes *which worker* computes a result, never the committed
/// outcome. The commit closure runs on the coordinating thread between
/// barriers, when no worker touches shared state.
///
/// Returns the number of successful steals (the `steal_events` counter —
/// scheduling-dependent, excluded from determinism checks).
pub fn run_wave_pool<I, S, R>(
    threads: usize,
    items: &[I],
    waves: &[&[usize]],
    make_scratch: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, &I) -> R + Sync,
    mut commit: impl FnMut(Vec<R>),
) -> usize
where
    I: Sync,
    R: Send,
{
    if threads <= 1 || items.len() <= 1 {
        let mut scratch = make_scratch();
        for wave in waves {
            let results: Vec<R> = wave
                .iter()
                .map(|&i| work(&mut scratch, &items[i]))
                .collect();
            commit(results);
        }
        return 0;
    }
    let workers = threads.min(items.len());
    let steals = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let barrier = Barrier::new(workers + 1);
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for k in 0..workers {
            let (barrier, done, deques, results, steals) =
                (&barrier, &done, &deques, &results, &steals);
            let (make_scratch, work) = (&make_scratch, &work);
            scope.spawn(move || {
                let mut scratch = make_scratch();
                loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    loop {
                        let mut item = deques[k].lock().unwrap().pop_front();
                        if item.is_none() {
                            for off in 1..workers {
                                let victim = (k + off) % workers;
                                if let Some(i) = deques[victim].lock().unwrap().pop_back() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    item = Some(i);
                                    break;
                                }
                            }
                        }
                        let Some(i) = item else { break };
                        let r = work(&mut scratch, &items[i]);
                        *results[i].lock().unwrap() = Some(r);
                    }
                    barrier.wait();
                }
            });
        }
        for wave in waves {
            let mut pos = 0usize;
            for (k, len) in crate::parallel::chunk_lengths(wave.len(), workers).enumerate() {
                let mut dq = deques[k].lock().unwrap();
                for &i in &wave[pos..pos + len] {
                    dq.push_back(i);
                }
                pos += len;
            }
            barrier.wait(); // release the pool into this wave
            barrier.wait(); // wait for the wave to drain
            let collected: Vec<R> = wave
                .iter()
                .map(|&i| {
                    results[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("every wave item produces a result")
                })
                .collect();
            commit(collected);
        }
        done.store(true, Ordering::Release);
        barrier.wait();
    });
    steals.into_inner()
}

/// One worker's reusable scratch: an engine arena (with the group's
/// receiver marks pre-set) and the variant's probe.
pub struct WorkerScratch<D: EngineDist, P> {
    /// The engine arena.
    pub engine: UpdateEngine<D>,
    /// The variant's pinned-hub probe.
    pub probe: P,
}

impl<D: EngineDist, P> WorkerScratch<D, P> {
    /// Scratch for graphs up to `capacity` ids with the group receiver
    /// union pre-marked (the batch path marks every receiver `MARK_A`).
    pub fn for_group(capacity: usize, receivers: &[VertexId], probe: P) -> Self {
        let mut engine = UpdateEngine::new(capacity);
        engine.set_marks([receivers, &[]], [&[], &[]]);
        WorkerScratch { engine, probe }
    }
}

/// Shared shape of one parallel repair sweep: runs `dec_pass` for
/// `h` against a frozen view, returning the write log and the sweep's own
/// counters (with `hubs_processed = 1`, mirroring the sequential driver).
pub fn frozen_dec_sweep<T: FrozenTopology>(
    engine: &mut UpdateEngine<T::Dist>,
    base: T,
    h: VertexId,
    receivers: &[VertexId],
) -> (LabelWriteLog<T::Dist>, MaintenanceCounters) {
    let mut counters = MaintenanceCounters {
        hubs_processed: 1,
        ..MaintenanceCounters::default()
    };
    let mut log = LabelWriteLog::new();
    {
        let mut topo = Buffered::new(base, &mut log);
        engine.dec_pass(&mut topo, h, MARK_A, [receivers, &[]], &mut counters);
    }
    (log, counters)
}

/// Splits agenda family bits into the directed variant's sweep order
/// (`L_in` first, then `L_out`), matching the sequential driver.
pub fn family_sweeps(families: u8) -> impl Iterator<Item = u8> {
    [REPAIR_PRIMARY, REPAIR_SECONDARY]
        .into_iter()
        .filter(move |&f| families & f != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_bfs_labels_only_touched_components() {
        // Adjacency: {0,1,2} form a path, {4,5} an edge, 3 and 6 isolated.
        let adj: Vec<Vec<u32>> = vec![
            vec![1],
            vec![0, 2],
            vec![1],
            vec![],
            vec![5],
            vec![4],
            vec![],
        ];
        // Seeds touch the path and the edge but never vertex 3 or 6.
        let (comp, probes) =
            agenda_components(7, [VertexId(0), VertexId(5)].into_iter(), |v, f| {
                for &w in &adj[v as usize] {
                    f(w);
                }
            });
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[4]);
        // Untouched components stay unlabeled and unvisited.
        assert_eq!(comp[3], u32::MAX);
        assert_eq!(comp[6], u32::MAX);
        assert_eq!(probes, 5);

        // A second seed inside an already-labeled component floods nothing.
        let (comp2, probes2) = agenda_components(
            7,
            [VertexId(0), VertexId(2), VertexId(5)].into_iter(),
            |v, f| {
                for &w in &adj[v as usize] {
                    f(w);
                }
            },
        );
        assert_eq!(comp2[..6], comp[..6]);
        assert_eq!(probes2, 5);
    }

    #[test]
    fn wave_pool_matches_inline_execution_and_reuses_scratch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..23).collect();
        let all: Vec<usize> = (0..items.len()).collect();
        let waves: Vec<&[usize]> = vec![&all[..7], &all[7..8], &all[8..]];
        for threads in [1usize, 2, 4, 8] {
            let scratches = AtomicUsize::new(0);
            let mut committed: Vec<Vec<usize>> = Vec::new();
            let steals = run_wave_pool(
                threads,
                &items,
                &waves,
                || {
                    scratches.fetch_add(1, Ordering::Relaxed);
                },
                |_s, &i| i * 10,
                |r| committed.push(r),
            );
            // Results arrive per wave, in item order, at every thread count.
            let expect: Vec<Vec<usize>> = waves
                .iter()
                .map(|w| w.iter().map(|&i| i * 10).collect())
                .collect();
            assert_eq!(committed, expect, "threads={threads}");
            // One scratch per pool worker for the whole schedule — not per
            // wave.
            let max_workers = threads.min(items.len()).max(1);
            assert!(
                scratches.load(Ordering::Relaxed) <= max_workers,
                "threads={threads}"
            );
            if threads <= 1 {
                assert_eq!(steals, 0);
            }
        }
    }

    #[test]
    fn greedy_waves_respect_conflicts() {
        // 0 conflicts both 1 and 2; 1 and 2 are independent of each other:
        // waves [0], [1, 2].
        let schedule = plan_waves(3, |j, i| j == 0 && (i == 1 || i == 2));
        let waves: Vec<&[usize]> = schedule.iter().collect();
        assert_eq!(waves, vec![&[0][..], &[1, 2][..]]);
        assert_eq!(schedule.waves(), 2);
        assert_eq!(schedule.max_wave_width(), 2);

        // A conflict chain serializes transitively: 1 waits on 0, 2 on 1.
        let chain = plan_waves(3, |j, i| i == j + 1);
        let waves: Vec<&[usize]> = chain.iter().collect();
        assert_eq!(waves, vec![&[0][..], &[1][..], &[2][..]]);
    }

    #[test]
    fn fully_conflicting_agenda_serializes() {
        let schedule = plan_waves(4, |_, _| true);
        assert_eq!(schedule.waves(), 4);
        assert_eq!(schedule.max_wave_width(), 1);
        // Execution order is rank order.
        let order: Vec<usize> = schedule.iter().flatten().copied().collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn interference_separates_disjoint_components() {
        // comp layout: {0,1} and {2,3}; hubs at 0 (rank 0) and 2 (rank 2);
        // receivers 1 and 3 carry only their own side's rows.
        let comp = vec![0u32, 0, 2, 2];
        let hubs = vec![(Rank(0), 1u8), (Rank(2), 1u8)];
        let receivers = vec![VertexId(1), VertexId(3)];
        let inter = Interference::build(
            &comp,
            &hubs,
            &receivers,
            |r| VertexId(r.0),
            |v, f| f(Rank(if v.0 < 2 { 0 } else { 2 })),
        );
        assert!(!inter.conflicts(0, 1));
        let schedule = plan_waves(2, |i, j| inter.conflicts(i, j));
        assert_eq!(schedule.max_wave_width(), 2);
    }

    #[test]
    fn interference_detects_cross_component_removals() {
        // Hub 0 sits in component 0 but a receiver in component 2 still
        // carries its row (a pre-deletion path crossed the cut): its
        // removal pass reaches into the other hub's component.
        let comp = vec![0u32, 0, 2, 2];
        let hubs = vec![(Rank(0), 1u8), (Rank(2), 1u8)];
        let receivers = vec![VertexId(1), VertexId(3)];
        let inter = Interference::build(
            &comp,
            &hubs,
            &receivers,
            |r| VertexId(r.0),
            |v, f| {
                f(Rank(0)); // hub 0's row is everywhere
                if v.0 >= 2 {
                    f(Rank(2));
                }
            },
        );
        assert!(inter.conflicts(0, 1));
    }
}
