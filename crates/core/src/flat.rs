//! Read-optimized flat index snapshots: structure-of-arrays CSR label
//! storage plus a vectorization-friendly merge-join query kernel.
//!
//! The live [`SpcIndex`] stores one `Vec<LabelEntry>` per vertex — ideal
//! for the update engine's point mutations, but a query then walks
//! `Vec<LabelSet>` → `Vec<LabelEntry>`, a pointer-chasing merge over
//! 16-byte array-of-structs entries. A [`FlatIndex`] is a frozen snapshot
//! of the same labels in CSR form: one `offsets` array per vertex plus
//! three contiguous columns (`hubs`, `dists`, `counts`) shared by the whole
//! index. A query touches exactly two column slices, scanned sequentially.
//!
//! The merge kernel is split into two phases so the compiler can keep the
//! hot loop branch-light:
//!
//! 1. **Compare phase** — a two-pointer scan over the *hub columns only*
//!    (no dist/count loads, no multiplications), recording the positions of
//!    common hubs. Pointer advances are computed arithmetically
//!    (`i += (x <= y)`), which autovectorizes/predicates well.
//! 2. **Accumulate phase** — a short pass over just the common-hub
//!    positions, computing `min(d_s + d_t)` and `Σ σ·σ` exactly as the live
//!    kernel does.
//!
//! Results are **bit-identical** to [`crate::query::spc_query`] /
//! [`crate::query::pre_query`] on the index the snapshot was frozen from —
//! the test suite and the `bench_smoke` CI lane both enforce this.
//!
//! A scan (not a galloping search) is used deliberately: label sets are
//! short and cache-resident, so the predictable sequential scan beats
//! branchy exponential probing and keeps `merge_steps` deterministic.
//!
//! ## Freshness contract
//!
//! A snapshot is immutable and does **not** follow later updates to the
//! index it was frozen from. The dynamic facades own that lifecycle:
//! [`crate::dynamic::DynamicSpc::frozen_queries`] (and the directed /
//! weighted equivalents) cache a snapshot per epoch and invalidate it on
//! any mutation, so a facade-obtained snapshot is always exact.

use crate::directed::DirectedSpcIndex;
use crate::index::SpcIndex;
use crate::label::{Count, LabelEntry, Rank, INF_DIST};
use crate::order::RankMap;
use crate::query::QueryResult;
use crate::weighted::{WQueryResult, WeightedSpcIndex};
use dspc_graph::weighted::{WDist, WDIST_INF};
use dspc_graph::VertexId;

/// Distance field of a flat column set: `u32` hop counts for the
/// unweighted variants, `u64` accumulated weights for the weighted one.
/// Implemented for exactly those two types; not intended for user impls.
pub trait FlatDist: Copy + Ord {
    /// The "unreachable" sentinel ([`INF_DIST`] / [`WDIST_INF`]).
    const INF: Self;
    /// Saturating addition, matching the live kernels' overflow behavior.
    fn sat_add(self, other: Self) -> Self;
}

impl FlatDist for u32 {
    const INF: Self = INF_DIST;
    #[inline]
    fn sat_add(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

impl FlatDist for u64 {
    const INF: Self = WDIST_INF;
    #[inline]
    fn sat_add(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

/// Deterministic work counters of the flat (and counted live) query
/// kernels. Machine-independent, so the `bench-smoke` CI lane can gate on
/// them exactly — no wall-clock flakiness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Queries evaluated through a counted kernel.
    pub queries: u64,
    /// Compare-phase loop iterations across all counted queries — the
    /// wall-clock-independent unit of merge work.
    pub merge_steps: u64,
    /// Common hubs found (accumulate-phase work items).
    pub common_hubs: u64,
}

impl KernelCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable scratch for the two-phase kernel: the common-hub position
/// pairs found by the compare phase. One per querying thread; the batch
/// entry points in [`crate::parallel`] allocate one per worker and reuse it
/// across the whole chunk.
#[derive(Clone, Debug, Default)]
pub struct FlatScratch {
    pub(crate) pairs: Vec<(u32, u32)>,
}

impl FlatScratch {
    /// Fresh empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compare phase: scan the two hub columns, record positions of common
/// hubs. `LIMITED` monomorphizes the `PreQUERY` rank cut-off away from the
/// common no-limit kernel; `COUNTED` likewise compiles the counters out of
/// the production path.
#[inline]
pub(crate) fn compare_phase<const LIMITED: bool, const COUNTED: bool>(
    ha: &[u32],
    hb: &[u32],
    limit: u32,
    pairs: &mut Vec<(u32, u32)>,
    counters: &mut KernelCounters,
) {
    pairs.clear();
    let (mut i, mut j) = (0usize, 0usize);
    let mut steps = 0u64;
    while i < ha.len() && j < hb.len() {
        let (x, y) = (ha[i], hb[j]);
        if LIMITED && (x >= limit || y >= limit) {
            // Columns are sorted ascending by hub rank: once either head
            // reaches the limit, no common hub strictly above it remains.
            break;
        }
        if COUNTED {
            steps += 1;
        }
        if x == y {
            pairs.push((i as u32, j as u32));
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    if COUNTED {
        counters.queries += 1;
        counters.merge_steps += steps;
        counters.common_hubs += pairs.len() as u64;
    }
}

/// Accumulate phase: fold the recorded common hubs into `(sd, spc)`,
/// identically to the live merge kernel (Equations (1)–(2)).
#[inline]
pub(crate) fn accumulate_phase<D: FlatDist>(
    da: &[D],
    ca: &[Count],
    db: &[D],
    cb: &[Count],
    pairs: &[(u32, u32)],
) -> (D, Count) {
    let mut best = D::INF;
    let mut count: Count = 0;
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        let d = da[i].sat_add(db[j]);
        if d < best {
            best = d;
            count = ca[i].saturating_mul(cb[j]);
        } else if d == best && d != D::INF {
            count = count.saturating_add(ca[i].saturating_mul(cb[j]));
        }
    }
    (best, count)
}

/// One CSR column set: per-vertex label slices over three contiguous
/// columns. `offsets[v]..offsets[v + 1]` is vertex `v`'s slice in each
/// column; entries within a slice are sorted ascending by hub rank, exactly
/// like the live label sets they were frozen from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatColumns<D> {
    offsets: Vec<u32>,
    hubs: Vec<u32>,
    dists: Vec<D>,
    counts: Vec<Count>,
}

impl<D: FlatDist> FlatColumns<D> {
    /// Packs `rows` (one sorted entry iterator per vertex, in id order)
    /// into columns. `entry_hint` pre-sizes the columns.
    fn build<I, J>(n: usize, entry_hint: usize, rows: I) -> Self
    where
        I: Iterator<Item = J>,
        J: Iterator<Item = (u32, D, Count)>,
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut hubs = Vec::with_capacity(entry_hint);
        let mut dists = Vec::with_capacity(entry_hint);
        let mut counts = Vec::with_capacity(entry_hint);
        offsets.push(0);
        for row in rows {
            for (h, d, c) in row {
                hubs.push(h);
                dists.push(d);
                counts.push(c);
            }
            assert!(
                hubs.len() <= u32::MAX as usize,
                "flat index exceeds u32 offset space"
            );
            offsets.push(hubs.len() as u32);
        }
        assert_eq!(offsets.len(), n + 1, "one offset row per vertex");
        FlatColumns {
            offsets,
            hubs,
            dists,
            counts,
        }
    }

    /// Reassembles columns decoded from storage, validating CSR shape.
    pub(crate) fn from_raw(
        offsets: Vec<u32>,
        hubs: Vec<u32>,
        dists: Vec<D>,
        counts: Vec<Count>,
    ) -> Result<Self, &'static str> {
        if offsets.first() != Some(&0) {
            return Err("offsets must start at 0");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing");
        }
        if offsets.last().copied().unwrap_or(0) as usize != hubs.len() {
            return Err("last offset must equal the entry count");
        }
        if hubs.len() != dists.len() || hubs.len() != counts.len() {
            return Err("column lengths disagree");
        }
        Ok(FlatColumns {
            offsets,
            hubs,
            dists,
            counts,
        })
    }

    /// Number of vertices covered.
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total entries across all vertices.
    #[inline]
    fn num_entries(&self) -> usize {
        self.hubs.len()
    }

    /// The three column slices of vertex `v`.
    #[inline]
    pub(crate) fn slice(&self, v: usize) -> (&[u32], &[D], &[Count]) {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        (
            &self.hubs[lo..hi],
            &self.dists[lo..hi],
            &self.counts[lo..hi],
        )
    }

    /// Bytes occupied by the entry columns alone (`hubs` + `dists` +
    /// `counts`), excluding the per-vertex offsets.
    fn entry_column_bytes(&self) -> usize {
        self.hubs.len() * 4 + self.dists.len() * std::mem::size_of::<D>() + self.counts.len() * 8
    }

    /// Total bytes of the snapshot (entry columns + offsets).
    fn column_bytes(&self) -> usize {
        self.entry_column_bytes() + self.offsets.len() * 4
    }

    /// Full merge-join query between the slices of `s` and `t`, optionally
    /// limited to hubs ranked strictly above `limit`.
    #[inline]
    fn merge<const LIMITED: bool, const COUNTED: bool>(
        &self,
        s: usize,
        t: usize,
        limit: u32,
        scratch: &mut FlatScratch,
        counters: &mut KernelCounters,
    ) -> (D, Count) {
        let (ha, da, ca) = self.slice(s);
        let (hb, db, cb) = self.slice(t);
        compare_phase::<LIMITED, COUNTED>(ha, hb, limit, &mut scratch.pairs, counters);
        accumulate_phase(da, ca, db, cb, &scratch.pairs)
    }

    pub(crate) fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    pub(crate) fn hubs(&self) -> &[u32] {
        &self.hubs
    }

    pub(crate) fn dists(&self) -> &[D] {
        &self.dists
    }

    pub(crate) fn counts(&self) -> &[Count] {
        &self.counts
    }
}

/// A read-only flat snapshot of an undirected [`SpcIndex`].
#[derive(Clone, Debug, PartialEq)]
pub struct FlatIndex {
    cols: FlatColumns<u32>,
    ranks: RankMap,
}

impl FlatIndex {
    /// Freezes `index` into a flat snapshot in one pass over its labels.
    pub fn freeze(index: &SpcIndex) -> Self {
        let n = index.num_vertices();
        let cols = FlatColumns::build(
            n,
            index.num_entries(),
            (0..n).map(|v| {
                index
                    .label_set(VertexId(v as u32))
                    .entries()
                    .iter()
                    .map(|e| (e.hub.0, e.dist, e.count))
            }),
        );
        FlatIndex {
            cols,
            ranks: index.ranks().clone(),
        }
    }

    /// Reassembles a snapshot from decoded parts (the serialization codec).
    pub(crate) fn from_parts(cols: FlatColumns<u32>, ranks: RankMap) -> Self {
        assert_eq!(cols.num_vertices(), ranks.len(), "rank space mismatch");
        FlatIndex { cols, ranks }
    }

    pub(crate) fn columns(&self) -> &FlatColumns<u32> {
        &self.cols
    }

    /// The vertex total order.
    #[inline]
    pub fn ranks(&self) -> &RankMap {
        &self.ranks
    }

    /// Rank of `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.ranks.rank(v)
    }

    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.cols.num_vertices()
    }

    /// Total label entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.cols.num_entries()
    }

    /// Bytes of the entry columns alone — `16 × entries` (4-byte hub +
    /// 4-byte dist + 8-byte count), the `label_bytes_per_entry` numerator.
    pub fn entry_column_bytes(&self) -> usize {
        self.cols.entry_column_bytes()
    }

    /// Total snapshot bytes (entry columns + per-vertex offsets).
    pub fn column_bytes(&self) -> usize {
        self.cols.column_bytes()
    }

    /// `SpcQUERY(s, t)` against the snapshot. Allocates a transient
    /// scratch; batch callers should prefer [`FlatIndex::query_with`].
    pub fn query(&self, s: VertexId, t: VertexId) -> QueryResult {
        self.query_with(&mut FlatScratch::new(), s, t)
    }

    /// `SpcQUERY(s, t)` reusing `scratch` across calls.
    #[inline]
    pub fn query_with(&self, scratch: &mut FlatScratch, s: VertexId, t: VertexId) -> QueryResult {
        let mut sink = KernelCounters::new();
        let (dist, count) =
            self.cols
                .merge::<false, false>(s.index(), t.index(), 0, scratch, &mut sink);
        QueryResult { dist, count }
    }

    /// `PreQUERY(s, t)`: only hubs ranked strictly above `rank(s)`
    /// participate, matching [`crate::query::pre_query`].
    pub fn pre_query(&self, s: VertexId, t: VertexId) -> QueryResult {
        self.pre_query_with(&mut FlatScratch::new(), s, t)
    }

    /// [`FlatIndex::pre_query`] reusing `scratch`.
    #[inline]
    pub fn pre_query_with(
        &self,
        scratch: &mut FlatScratch,
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        let mut sink = KernelCounters::new();
        let limit = self.ranks.rank(s).0;
        let (dist, count) =
            self.cols
                .merge::<true, false>(s.index(), t.index(), limit, scratch, &mut sink);
        QueryResult { dist, count }
    }

    /// Counted [`FlatIndex::query_with`]: same result, and the kernel's
    /// deterministic work units are accumulated into `counters`.
    pub fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        counters: &mut KernelCounters,
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        let (dist, count) =
            self.cols
                .merge::<false, true>(s.index(), t.index(), 0, scratch, counters);
        QueryResult { dist, count }
    }

    /// Counted [`FlatIndex::pre_query_with`].
    pub fn pre_query_counted(
        &self,
        scratch: &mut FlatScratch,
        counters: &mut KernelCounters,
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        let limit = self.ranks.rank(s).0;
        let (dist, count) =
            self.cols
                .merge::<true, true>(s.index(), t.index(), limit, scratch, counters);
        QueryResult { dist, count }
    }

    /// Reconstructs a live [`SpcIndex`] with identical labels — the
    /// deserialization path for v2 snapshots. O(entries), no per-entry
    /// searches: slices are already sorted, so labels append in order.
    pub fn thaw(&self) -> SpcIndex {
        let mut index = SpcIndex::self_labeled(self.ranks.clone());
        for v in 0..self.num_vertices() {
            let (hubs, dists, counts) = self.cols.slice(v);
            let ls = index.label_set_mut(VertexId(v as u32));
            ls.clear_all();
            for k in 0..hubs.len() {
                ls.push_descending(LabelEntry::new(Rank(hubs[k]), dists[k], counts[k]));
            }
        }
        index
    }
}

/// A read-only flat snapshot of a [`DirectedSpcIndex`]: two column sets,
/// one per label family. `SPC(s → t)` merges the `L_out(s)` slice with the
/// `L_in(t)` slice.
#[derive(Clone, Debug, PartialEq)]
pub struct DirectedFlatIndex {
    out_cols: FlatColumns<u32>,
    in_cols: FlatColumns<u32>,
    ranks: crate::directed::DirectedRankMap,
}

impl DirectedFlatIndex {
    /// Freezes `index` into a flat snapshot in one pass per family.
    pub fn freeze(index: &DirectedSpcIndex) -> Self {
        let n = index.ranks().len();
        let family = |side: crate::directed::Side| {
            FlatColumns::build(
                n,
                0,
                (0..n).map(move |v| {
                    index
                        .label(side, VertexId(v as u32))
                        .entries()
                        .iter()
                        .map(|e| (e.hub.0, e.dist, e.count))
                }),
            )
        };
        DirectedFlatIndex {
            out_cols: family(crate::directed::Side::Out),
            in_cols: family(crate::directed::Side::In),
            ranks: index.ranks().clone(),
        }
    }

    /// Rank of `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.ranks.rank(v)
    }

    /// Total entries across both families.
    pub fn num_entries(&self) -> usize {
        self.out_cols.num_entries() + self.in_cols.num_entries()
    }

    /// Total snapshot bytes across both families.
    pub fn column_bytes(&self) -> usize {
        self.out_cols.column_bytes() + self.in_cols.column_bytes()
    }

    /// Bytes of the entry columns alone, both families.
    pub fn entry_column_bytes(&self) -> usize {
        self.out_cols.entry_column_bytes() + self.in_cols.entry_column_bytes()
    }

    /// `SPC(s → t)` against the snapshot.
    pub fn query(&self, s: VertexId, t: VertexId) -> QueryResult {
        self.query_with(&mut FlatScratch::new(), s, t)
    }

    /// [`DirectedFlatIndex::query`] reusing `scratch`.
    #[inline]
    pub fn query_with(&self, scratch: &mut FlatScratch, s: VertexId, t: VertexId) -> QueryResult {
        let mut sink = KernelCounters::new();
        let (dist, count) = merge_across::<false, false>(
            &self.out_cols,
            &self.in_cols,
            s,
            t,
            0,
            scratch,
            &mut sink,
        );
        QueryResult { dist, count }
    }

    /// `PreQUERY(s → t)`: hubs ranked strictly above `rank(s)` only.
    pub fn pre_query(&self, s: VertexId, t: VertexId) -> QueryResult {
        let mut sink = KernelCounters::new();
        let limit = self.ranks.rank(s).0;
        let (dist, count) = merge_across::<true, false>(
            &self.out_cols,
            &self.in_cols,
            s,
            t,
            limit,
            &mut FlatScratch::new(),
            &mut sink,
        );
        QueryResult { dist, count }
    }

    /// Counted [`DirectedFlatIndex::query_with`].
    pub fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        counters: &mut KernelCounters,
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        let (dist, count) =
            merge_across::<false, true>(&self.out_cols, &self.in_cols, s, t, 0, scratch, counters);
        QueryResult { dist, count }
    }
}

/// Merge between a slice of one column set and a slice of another (the
/// directed `L_out(s)` × `L_in(t)` shape).
#[inline]
fn merge_across<const LIMITED: bool, const COUNTED: bool>(
    a: &FlatColumns<u32>,
    b: &FlatColumns<u32>,
    s: VertexId,
    t: VertexId,
    limit: u32,
    scratch: &mut FlatScratch,
    counters: &mut KernelCounters,
) -> (u32, Count) {
    let (ha, da, ca) = a.slice(s.index());
    let (hb, db, cb) = b.slice(t.index());
    compare_phase::<LIMITED, COUNTED>(ha, hb, limit, &mut scratch.pairs, counters);
    accumulate_phase(da, ca, db, cb, &scratch.pairs)
}

/// A read-only flat snapshot of a [`WeightedSpcIndex`]: same CSR layout
/// with a `u64` distance column.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedFlatIndex {
    cols: FlatColumns<WDist>,
    ranks: RankMap,
}

impl WeightedFlatIndex {
    /// Freezes `index` into a flat snapshot in one pass.
    pub fn freeze(index: &WeightedSpcIndex) -> Self {
        let n = index.ranks().len();
        let cols = FlatColumns::build(
            n,
            index.num_entries(),
            (0..n).map(|v| {
                index
                    .label_set(VertexId(v as u32))
                    .entries()
                    .iter()
                    .map(|e| (e.hub.0, e.dist, e.count))
            }),
        );
        WeightedFlatIndex {
            cols,
            ranks: index.ranks().clone(),
        }
    }

    /// Rank of `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.ranks.rank(v)
    }

    /// Total label entries.
    pub fn num_entries(&self) -> usize {
        self.cols.num_entries()
    }

    /// Total snapshot bytes.
    pub fn column_bytes(&self) -> usize {
        self.cols.column_bytes()
    }

    /// Bytes of the entry columns alone (`20 × entries` here: the
    /// distance column is 8-byte).
    pub fn entry_column_bytes(&self) -> usize {
        self.cols.entry_column_bytes()
    }

    /// Weighted `SpcQUERY(s, t)` against the snapshot.
    pub fn query(&self, s: VertexId, t: VertexId) -> WQueryResult {
        self.query_with(&mut FlatScratch::new(), s, t)
    }

    /// [`WeightedFlatIndex::query`] reusing `scratch`.
    #[inline]
    pub fn query_with(&self, scratch: &mut FlatScratch, s: VertexId, t: VertexId) -> WQueryResult {
        let mut sink = KernelCounters::new();
        let (dist, count) =
            self.cols
                .merge::<false, false>(s.index(), t.index(), 0, scratch, &mut sink);
        WQueryResult { dist, count }
    }

    /// Weighted `PreQUERY(s, t)`: hubs ranked strictly above `rank(s)`.
    pub fn pre_query(&self, s: VertexId, t: VertexId) -> WQueryResult {
        let mut sink = KernelCounters::new();
        let limit = self.ranks.rank(s).0;
        let (dist, count) = self.cols.merge::<true, false>(
            s.index(),
            t.index(),
            limit,
            &mut FlatScratch::new(),
            &mut sink,
        );
        WQueryResult { dist, count }
    }

    /// Counted [`WeightedFlatIndex::query_with`].
    pub fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        counters: &mut KernelCounters,
        s: VertexId,
        t: VertexId,
    ) -> WQueryResult {
        let (dist, count) =
            self.cols
                .merge::<false, true>(s.index(), t.index(), 0, scratch, counters);
        WQueryResult { dist, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use crate::query::{pre_query, spc_query, spc_query_counted};
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flat_matches_live_on_table2() {
        let idx = crate::query::tests::table2_index();
        let flat = FlatIndex::freeze(&idx);
        assert_eq!(flat.num_entries(), idx.num_entries());
        let mut scratch = FlatScratch::new();
        for s in 0..12u32 {
            for t in 0..12u32 {
                let (s, t) = (VertexId(s), VertexId(t));
                assert_eq!(flat.query_with(&mut scratch, s, t), spc_query(&idx, s, t));
                assert_eq!(
                    flat.pre_query_with(&mut scratch, s, t),
                    pre_query(&idx, s, t),
                    "pre ({s:?}, {t:?})"
                );
            }
        }
    }

    #[test]
    fn counted_kernel_matches_and_counts() {
        let g = figure2_g();
        let idx = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&idx);
        let mut scratch = FlatScratch::new();
        let mut flat_c = KernelCounters::new();
        let mut live_c = KernelCounters::new();
        for s in 0..12u32 {
            for t in 0..12u32 {
                let (s, t) = (VertexId(s), VertexId(t));
                let f = flat.query_counted(&mut scratch, &mut flat_c, s, t);
                let l = spc_query_counted(&idx, &mut live_c, s, t);
                assert_eq!(f, l);
            }
        }
        assert_eq!(flat_c.queries, 144);
        assert!(flat_c.merge_steps > 0);
        assert!(flat_c.common_hubs > 0);
        // The flat compare loop visits exactly the live merge's positions.
        assert_eq!(flat_c, live_c);
    }

    #[test]
    fn thaw_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_gnm(50, 120, &mut rng);
        let idx = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&idx);
        let back = flat.thaw();
        assert_eq!(back, idx);
        back.check_invariants().unwrap();
        assert_eq!(FlatIndex::freeze(&back), flat);
    }

    #[test]
    fn byte_accounting() {
        let idx = crate::query::tests::table2_index();
        let flat = FlatIndex::freeze(&idx);
        let e = flat.num_entries();
        assert_eq!(flat.entry_column_bytes(), e * 16);
        assert_eq!(flat.column_bytes(), e * 16 + (flat.num_vertices() + 1) * 4);
    }

    #[test]
    fn empty_and_self_queries() {
        let g = dspc_graph::UndirectedGraph::with_vertices(3);
        let idx = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&idx);
        assert_eq!(
            flat.query(VertexId(0), VertexId(0)).as_option(),
            Some((0, 1))
        );
        assert!(!flat.query(VertexId(0), VertexId(2)).is_connected());

        let empty = build_index(
            &dspc_graph::UndirectedGraph::new(),
            OrderingStrategy::Degree,
        );
        let flat = FlatIndex::freeze(&empty);
        assert_eq!(flat.num_vertices(), 0);
        assert_eq!(flat.num_entries(), 0);
    }
}
