//! Index-guided shortest-path *retrieval*.
//!
//! The SPC-Index counts shortest paths; applications (route explanation,
//! betweenness drill-down, recommendation justification — "you share these
//! friends") frequently also need a *witness*. Because the index answers
//! `sd(·, ·)` in microseconds, a concrete path can be recovered by greedy
//! descent without any BFS: from `s`, repeatedly step to any neighbor `w`
//! with `sd(w, t) = sd(s, t) − 1`. Enumerating *all* shortest paths walks
//! the same tight-edge relation as a DFS, capped by a caller-supplied
//! limit (counts grow exponentially; that is the point of the paper).
//!
//! Everything here works on the *maintained* index — stale labels cannot
//! mislead the descent because `sd` queries always minimize over hubs.

use crate::index::SpcIndex;
use crate::query::spc_query;
use dspc_graph::{UndirectedGraph, VertexId};

/// Returns one shortest path from `s` to `t` (inclusive of both), or
/// `None` if disconnected. `O(sd · deg · l)` — no graph traversal state.
pub fn one_shortest_path(
    g: &UndirectedGraph,
    index: &SpcIndex,
    s: VertexId,
    t: VertexId,
) -> Option<Vec<VertexId>> {
    let total = spc_query(index, s, t);
    if !total.is_connected() {
        return None;
    }
    let mut path = Vec::with_capacity(total.dist as usize + 1);
    path.push(s);
    let mut cur = s;
    let mut remaining = total.dist;
    while remaining > 0 {
        let mut advanced = false;
        for &w in g.neighbors(cur) {
            let w = VertexId(w);
            let q = spc_query(index, w, t);
            if q.is_connected() && q.dist + 1 == remaining {
                path.push(w);
                cur = w;
                remaining -= 1;
                advanced = true;
                break;
            }
        }
        debug_assert!(advanced, "tight edge must exist on a shortest path");
        if !advanced {
            return None; // defensive: index/graph out of sync
        }
    }
    Some(path)
}

/// Enumerates shortest paths from `s` to `t`, stopping after `limit`
/// paths. Paths are returned in neighbor-id DFS order; each includes both
/// endpoints. Returns an empty vector when disconnected.
pub fn enumerate_shortest_paths(
    g: &UndirectedGraph,
    index: &SpcIndex,
    s: VertexId,
    t: VertexId,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    let total = spc_query(index, s, t);
    if !total.is_connected() || limit == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut stack = vec![s];
    dfs(g, index, t, total.dist, &mut stack, &mut out, limit);
    out
}

fn dfs(
    g: &UndirectedGraph,
    index: &SpcIndex,
    t: VertexId,
    remaining: u32,
    stack: &mut Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    let cur = *stack.last().expect("non-empty stack");
    if remaining == 0 {
        debug_assert_eq!(cur, t);
        out.push(stack.clone());
        return;
    }
    for &w in g.neighbors(cur) {
        if out.len() >= limit {
            return;
        }
        let w = VertexId(w);
        let q = spc_query(index, w, t);
        if q.is_connected() && q.dist + 1 == remaining {
            stack.push(w);
            dfs(g, index, t, remaining - 1, stack, out, limit);
            stack.pop();
        }
    }
}

/// Validates that `path` is a shortest `s`–`t` path in `g` according to
/// `index` — used by tests and as a debugging aid.
pub fn is_shortest_path(g: &UndirectedGraph, index: &SpcIndex, path: &[VertexId]) -> bool {
    if path.is_empty() {
        return false;
    }
    let (s, t) = (path[0], *path.last().unwrap());
    match spc_query(index, s, t).as_option() {
        Some((d, _)) if d as usize == path.len() - 1 => {}
        _ => return false,
    }
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use dspc_graph::generators::classic::grid_graph;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_path_on_figure2() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Identity);
        let p = one_shortest_path(&g, &index, VertexId(0), VertexId(9)).unwrap();
        assert_eq!(p.len(), 5); // sd = 4
        assert!(is_shortest_path(&g, &index, &p));
        assert_eq!(p[0], VertexId(0));
        assert_eq!(p[4], VertexId(9));
    }

    #[test]
    fn trivial_and_disconnected() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Identity);
        assert_eq!(
            one_shortest_path(&g, &index, VertexId(3), VertexId(3)),
            Some(vec![VertexId(3)])
        );
        let g2 = dspc_graph::UndirectedGraph::with_vertices(2);
        let idx2 = build_index(&g2, OrderingStrategy::Degree);
        assert_eq!(
            one_shortest_path(&g2, &idx2, VertexId(0), VertexId(1)),
            None
        );
        assert!(enumerate_shortest_paths(&g2, &idx2, VertexId(0), VertexId(1), 10).is_empty());
    }

    #[test]
    fn enumeration_matches_count_on_figure2() {
        let g = figure2_g();
        let index = build_index(&g, OrderingStrategy::Identity);
        // spc(v0, v9) = 4: enumeration must yield exactly 4 distinct paths.
        let paths = enumerate_shortest_paths(&g, &index, VertexId(0), VertexId(9), usize::MAX);
        assert_eq!(paths.len(), 4);
        let mut distinct = paths.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
        for p in &paths {
            assert!(is_shortest_path(&g, &index, p));
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        // 4x4 grid corner to corner: C(6,3) = 20 shortest paths.
        let g = grid_graph(4, 4);
        let index = build_index(&g, OrderingStrategy::Degree);
        let all = enumerate_shortest_paths(&g, &index, VertexId(0), VertexId(15), usize::MAX);
        assert_eq!(all.len(), 20);
        let some = enumerate_shortest_paths(&g, &index, VertexId(0), VertexId(15), 7);
        assert_eq!(some.len(), 7);
        assert_eq!(&all[..7], &some[..]);
    }

    #[test]
    fn enumeration_count_equals_spc_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..5 {
            let g = erdos_renyi_gnm(30, 70, &mut rng);
            let index = build_index(&g, OrderingStrategy::Degree);
            for _ in 0..30 {
                let s = VertexId(rng.gen_range(0..30));
                let t = VertexId(rng.gen_range(0..30));
                let expected = spc_query(&index, s, t);
                let paths = enumerate_shortest_paths(&g, &index, s, t, 10_000);
                if expected.is_connected() {
                    assert_eq!(paths.len() as u64, expected.count, "({s:?},{t:?})");
                    for p in &paths {
                        assert!(is_shortest_path(&g, &index, p));
                    }
                } else {
                    assert!(paths.is_empty());
                }
            }
        }
    }

    #[test]
    fn retrieval_works_on_maintained_index_with_stale_labels() {
        // After IncSPC keeps stale labels, retrieval must still navigate
        // correctly (queries minimize over hubs).
        let mut g = figure2_g();
        let mut index = build_index(&g, OrderingStrategy::Identity);
        let mut engine = crate::inc::IncSpc::new(g.capacity());
        g.insert_edge(VertexId(3), VertexId(9)).unwrap();
        engine.insert_edge(&g, &mut index, VertexId(3), VertexId(9));
        let p = one_shortest_path(&g, &index, VertexId(0), VertexId(9)).unwrap();
        assert_eq!(p.len(), 3); // sd dropped 4 → 2
        assert!(is_shortest_path(&g, &index, &p));
        let all = enumerate_shortest_paths(&g, &index, VertexId(0), VertexId(9), 100);
        assert_eq!(
            all.len() as u64,
            spc_query(&index, VertexId(0), VertexId(9)).count
        );
    }
}
