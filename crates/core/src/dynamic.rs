//! `DynamicSpc` — the user-facing facade: a graph and its SPC-Index kept in
//! lockstep under topological updates.
//!
//! This is the object the paper's experiments drive: build once (HP-SPC),
//! then stream edge/vertex insertions and deletions through IncSPC/DecSPC
//! while answering `spc` queries at index speed throughout. Every update
//! returns an [`UpdateStats`] with the label-operation counters behind
//! Figures 8–10.
//!
//! ## The epoch contract
//!
//! There are two write APIs with one consistency story:
//!
//! * **Streaming** ([`DynamicSpc::insert_edge`], [`DynamicSpc::delete_edge`],
//!   [`DynamicSpc::apply_stream`]) repairs the index after every single
//!   update — the index is exact after each call.
//! * **Epochs** ([`DynamicSpc::apply_batch`], [`DynamicSpc::delete_edges`])
//!   treat a whole update slice as one atomic step: ops fold to their net
//!   effect (an insert and a delete of the same edge cancel, a delete
//!   followed by a re-insert is a topological no-op), net deletions are
//!   grouped by their higher-ranked endpoint and repaired through the
//!   multi-edge `SrrSEARCH` path (one repair sweep per distinct affected
//!   hub per group), and the index is exact again when the call returns.
//!
//! The index is never observed mid-epoch: readers query either the
//! pre-batch or the post-batch state. That boundary is what makes query
//! fan-out safe — [`crate::parallel::par_batch_query_auto`] may spread a
//! read burst across threads against the immutable index *between*
//! epochs, with no locking anywhere.
//!
//! ```
//! use dspc::dynamic::GraphUpdate;
//! use dspc::{DynamicSpc, OrderingStrategy};
//! use dspc_graph::{UndirectedGraph, VertexId};
//!
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
//! assert_eq!(d.query(VertexId(0), VertexId(3)), Some((3, 1)));
//!
//! // One epoch: the insert + delete of (0, 3) cancels out entirely; only
//! // the shortcut (1, 3) survives coalescing and pays for index repair.
//! let stats = d
//!     .apply_batch(&[
//!         GraphUpdate::InsertEdge(VertexId(0), VertexId(3)),
//!         GraphUpdate::InsertEdge(VertexId(1), VertexId(3)),
//!         GraphUpdate::DeleteEdge(VertexId(0), VertexId(3)),
//!     ])
//!     .unwrap();
//! assert!(!d.graph().has_edge(VertexId(0), VertexId(3)));
//! assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 1))); // 0–1–3
//! assert_eq!(stats.kind, dspc::dynamic::UpdateKind::Batch);
//! ```

use crate::build::HpSpcBuilder;
use crate::dec::{DecSpc, SrrOutcome};
use crate::engine::{ordered_key, MaintenanceCounters};
use crate::flat::FlatIndex;
use crate::inc::{IncSpc, IncStats};
use crate::index::{IndexStats, SpcIndex};
use crate::label::Count;
use crate::order::OrderingStrategy;
use crate::parallel::{AgendaScope, MaintenanceOptions, MaintenanceThreads};
use crate::query::spc_query;
use dspc_graph::{Result, UndirectedGraph, VertexId};
use std::ops::{Deref, DerefMut};

/// What kind of update produced an [`UpdateStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// Edge insertion (IncSPC).
    InsertEdge,
    /// Edge deletion (DecSPC).
    DeleteEdge,
    /// Isolated vertex insertion (O(1)).
    InsertVertex,
    /// Vertex deletion (a DecSPC cascade over incident edges).
    DeleteVertex,
    /// Edge-weight change on the weighted facade (incremental machinery
    /// for decreases, decremental for increases).
    WeightChange,
    /// A coalesced batch ([`DynamicSpc::apply_batch`] and the directed and
    /// weighted equivalents).
    Batch,
}

/// Per-update label-operation counters: the unified
/// [`MaintenanceCounters`] tagged with which algorithm ran.
///
/// Derefs to [`MaintenanceCounters`], so every counter field
/// (`renew_count`, `classify_sweeps`, `agenda_hubs`, …) and derived metric
/// ([`MaintenanceCounters::total_ops`], [`MaintenanceCounters::total_sweeps`],
/// [`MaintenanceCounters::entry_delta`]) reads directly off an
/// `UpdateStats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateStats {
    /// Which algorithm ran.
    pub kind: UpdateKind,
    /// The unified engine counters.
    pub counters: MaintenanceCounters,
}

impl Deref for UpdateStats {
    type Target = MaintenanceCounters;

    fn deref(&self) -> &MaintenanceCounters {
        &self.counters
    }
}

impl DerefMut for UpdateStats {
    fn deref_mut(&mut self) -> &mut MaintenanceCounters {
        &mut self.counters
    }
}

impl UpdateStats {
    /// Zeroed counters tagged with `kind` — accumulation seed for cascades
    /// and batches.
    pub fn empty(kind: UpdateKind) -> Self {
        UpdateStats {
            kind,
            counters: MaintenanceCounters::default(),
        }
    }

    /// Wraps raw engine counters.
    pub(crate) fn from_counters(kind: UpdateKind, counters: MaintenanceCounters) -> Self {
        UpdateStats { kind, counters }
    }

    fn from_inc(s: IncStats) -> Self {
        UpdateStats {
            kind: UpdateKind::InsertEdge,
            counters: s.into(),
        }
    }

    fn from_dec(c: MaintenanceCounters) -> Self {
        UpdateStats::from_counters(UpdateKind::DeleteEdge, c)
    }

    /// Accumulates another update's counters (the kind keeps the
    /// receiver's value; see [`MaintenanceCounters::absorb`] for the
    /// per-field semantics).
    pub fn absorb(&mut self, other: &UpdateStats) {
        self.counters.absorb(&other.counters);
    }
}

/// A topological update, for batch/stream application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Insert edge `(a, b)`.
    InsertEdge(VertexId, VertexId),
    /// Delete edge `(a, b)`.
    DeleteEdge(VertexId, VertexId),
    /// Add an isolated vertex.
    InsertVertex,
    /// Delete a vertex and all incident edges.
    DeleteVertex(VertexId),
}

/// A dynamic graph with an always-consistent SPC-Index.
#[derive(Debug)]
pub struct DynamicSpc {
    graph: UndirectedGraph,
    index: SpcIndex,
    inc: IncSpc,
    dec: DecSpc,
    builder: HpSpcBuilder,
    strategy: OrderingStrategy,
    updates_since_build: usize,
    maintenance_threads: MaintenanceThreads,
    /// Cached flat snapshot of `index` for the current epoch; `None` until
    /// [`DynamicSpc::frozen_queries`] is called and again after any
    /// mutation.
    flat: Option<FlatIndex>,
}

impl DynamicSpc {
    /// Builds the index for `graph` under `strategy` and wraps both.
    pub fn build(graph: UndirectedGraph, strategy: OrderingStrategy) -> Self {
        let cap = graph.capacity();
        let mut builder = HpSpcBuilder::new(cap);
        let index = builder.build(&graph, strategy);
        DynamicSpc {
            graph,
            index,
            inc: IncSpc::new(cap),
            dec: DecSpc::new(cap),
            builder,
            strategy,
            updates_since_build: 0,
            maintenance_threads: MaintenanceThreads::default(),
            flat: None,
        }
    }

    /// Wraps an already-built `(graph, index)` pair — the warm-start path:
    /// a server boots from a serialized index
    /// ([`crate::serialize::load_flat`] + [`crate::flat::FlatIndex::thaw`])
    /// and resumes dynamic maintenance without paying a rebuild. `strategy`
    /// is what a later [`DynamicSpc::rebuild`] will re-rank with.
    ///
    /// The caller asserts `index` is exact for `graph`; the id spaces must
    /// at least agree (checked here).
    pub fn from_parts(graph: UndirectedGraph, index: SpcIndex, strategy: OrderingStrategy) -> Self {
        assert_eq!(
            index.num_vertices(),
            graph.capacity(),
            "index and graph id spaces disagree"
        );
        let cap = graph.capacity();
        DynamicSpc {
            graph,
            index,
            inc: IncSpc::new(cap),
            dec: DecSpc::new(cap),
            builder: HpSpcBuilder::new(cap),
            strategy,
            updates_since_build: 0,
            maintenance_threads: MaintenanceThreads::default(),
            flat: None,
        }
    }

    /// The read-optimized flat snapshot of the current epoch, freezing one
    /// on first use and reusing it until the next mutation. Between epochs
    /// the index is immutable (see the module docs), so handing the
    /// snapshot to [`crate::parallel::par_batch_query`] — or querying it
    /// directly — always answers exactly like [`DynamicSpc::query`].
    ///
    /// Any mutation through this facade (single updates, batches,
    /// rebuilds) drops the cached snapshot; the next call re-freezes
    /// against the repaired index.
    pub fn frozen_queries(&mut self) -> &FlatIndex {
        self.flat
            .get_or_insert_with(|| FlatIndex::freeze(&self.index))
    }

    /// Whether a flat snapshot is currently cached (it is dropped by every
    /// mutation — the invalidation tests key off this).
    pub fn has_frozen_snapshot(&self) -> bool {
        self.flat.is_some()
    }

    /// Sets the worker-thread budget for intra-batch repair
    /// ([`DynamicSpc::delete_edges_with`] and the deletion segments of
    /// [`DynamicSpc::apply_batch`]). [`MaintenanceThreads::Fixed`]`(1)`
    /// degenerates to the sequential repair path exactly; every thread
    /// count produces the same index, queries, and counters.
    pub fn set_maintenance_threads(&mut self, threads: MaintenanceThreads) {
        self.maintenance_threads = threads;
    }

    /// The configured maintenance thread budget.
    pub fn maintenance_threads(&self) -> MaintenanceThreads {
        self.maintenance_threads
    }

    /// The default [`MaintenanceOptions`] this facade applies batches with:
    /// the configured thread budget plus the default classification mode
    /// and agenda scope. Pass a modified copy to
    /// [`DynamicSpc::apply_batch_with`] / [`DynamicSpc::delete_edges_with`]
    /// to override per call.
    pub fn maintenance_options(&self) -> MaintenanceOptions {
        MaintenanceOptions::with_threads(self.maintenance_threads)
    }

    /// The underlying graph (read-only; mutations must flow through this
    /// facade to keep the index consistent).
    pub fn graph(&self) -> &UndirectedGraph {
        &self.graph
    }

    /// The maintained SPC-Index.
    pub fn index(&self) -> &SpcIndex {
        &self.index
    }

    /// Number of updates applied since the last (re)build.
    pub fn updates_since_build(&self) -> usize {
        self.updates_since_build
    }

    /// The ordering strategy a later [`DynamicSpc::rebuild`] re-ranks with.
    pub fn strategy(&self) -> OrderingStrategy {
        self.strategy
    }

    /// Restores the update-pressure counter after crash recovery, so a
    /// recovered facade triggers staleness policies exactly like the
    /// never-crashed one whose state was checkpointed. Not for general use:
    /// the counter is otherwise maintained by the mutators themselves.
    pub fn restore_update_pressure(&mut self, updates_since_build: usize) {
        self.updates_since_build = updates_since_build;
    }

    /// `SPC(s, t)`: `Some((sd, spc))`, or `None` when disconnected.
    pub fn query(&self, s: VertexId, t: VertexId) -> Option<(u32, Count)> {
        spc_query(&self.index, s, t).as_option()
    }

    /// Shortest distance only.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<u32> {
        self.query(s, t).map(|(d, _)| d)
    }

    /// Inserts edge `(a, b)` and repairs the index with IncSPC.
    pub fn insert_edge(&mut self, a: VertexId, b: VertexId) -> Result<UpdateStats> {
        self.graph.insert_edge(a, b)?;
        self.flat = None;
        let stats = self.inc.insert_edge(&self.graph, &mut self.index, a, b);
        self.updates_since_build += 1;
        Ok(UpdateStats::from_inc(stats))
    }

    /// Deletes edge `(a, b)` and repairs the index with DecSPC.
    pub fn delete_edge(&mut self, a: VertexId, b: VertexId) -> Result<UpdateStats> {
        self.delete_edge_with_sets(a, b).map(|(s, _)| s)
    }

    /// Deletes edge `(a, b)`, also returning the `SR`/`R` affected sets
    /// (Table 5's measurement hook).
    pub fn delete_edge_with_sets(
        &mut self,
        a: VertexId,
        b: VertexId,
    ) -> Result<(UpdateStats, SrrOutcome)> {
        let (stats, srr) = self
            .dec
            .delete_edge(&mut self.graph, &mut self.index, a, b)?;
        self.flat = None;
        self.updates_since_build += 1;
        Ok((UpdateStats::from_dec(stats), srr))
    }

    /// Deletes a *set* of edges as one epoch. Equivalent to
    /// [`DynamicSpc::delete_edges_with`] under this facade's
    /// [`DynamicSpc::maintenance_options`].
    #[deprecated(note = "use `delete_edges_with` (same behavior under `maintenance_options()`)")]
    pub fn delete_edges(&mut self, edges: &[(VertexId, VertexId)]) -> Result<UpdateStats> {
        self.delete_edges_with(edges, &self.maintenance_options())
    }

    /// Deletes a *set* of edges as one epoch through the multi-edge
    /// `SrrSEARCH` repair path ([`crate::dec::DecSpc::delete_edges_with`]):
    /// every edge is classified against the pre-mutation graph (one
    /// multi-far sweep per distinct endpoint under the default
    /// [`crate::parallel::ClassifyMode::MultiFar`]), the whole set is
    /// removed at once, and each distinct affected hub is repaired with a
    /// single sweep of the residual graph — strictly fewer engine sweeps
    /// than deleting the edges one by one whenever their affected hub sets
    /// overlap.
    ///
    /// All edges are validated present before the first mutation; on error
    /// nothing is applied. Returns aggregated counters tagged
    /// [`UpdateKind::Batch`].
    pub fn delete_edges_with(
        &mut self,
        edges: &[(VertexId, VertexId)],
        options: &MaintenanceOptions,
    ) -> Result<UpdateStats> {
        let stats = self
            .dec
            .delete_edges_with(&mut self.graph, &mut self.index, edges, options)?;
        self.flat = None;
        self.updates_since_build += edges.len();
        Ok(UpdateStats::from_counters(UpdateKind::Batch, stats))
    }

    /// Adds an isolated vertex: O(1) on the index (§3 — only an empty label
    /// set joins).
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.flat = None;
        self.index.add_isolated_vertex(v);
        self.updates_since_build += 1;
        v
    }

    /// Adds a vertex already connected to `neighbors` — modeled, per §3, as
    /// an isolated insertion followed by IncSPC per edge.
    pub fn add_vertex_connected(
        &mut self,
        neighbors: &[VertexId],
    ) -> Result<(VertexId, UpdateStats)> {
        let v = self.add_vertex();
        let mut total = UpdateStats::empty(UpdateKind::InsertVertex);
        for &u in neighbors {
            total.absorb(&self.insert_edge(v, u)?);
        }
        Ok((v, total))
    }

    /// Deletes vertex `v` — the incident edges are removed as one epoch
    /// through the multi-edge repair path (one global agenda instead of a
    /// per-edge DecSPC cascade), then the id is retired.
    pub fn delete_vertex(&mut self, v: VertexId) -> Result<UpdateStats> {
        if !self.graph.contains_vertex(v) {
            return Err(dspc_graph::GraphError::UnknownVertex(v));
        }
        let edges: Vec<(VertexId, VertexId)> = self
            .graph
            .neighbors(v)
            .iter()
            .map(|&u| (v, VertexId(u)))
            .collect();
        let mut total = self.delete_edges_with(&edges, &self.maintenance_options())?;
        total.kind = UpdateKind::DeleteVertex;
        // The batch's fast-path flag describes sub-deletions, not the
        // vertex deletion itself.
        total.counters.isolated_fast_path = false;
        // Retire the now-isolated vertex; its self label stays (harmless)
        // so that the id space and rank map remain aligned.
        self.graph.delete_vertex(v)?;
        self.flat = None;
        self.updates_since_build += 1;
        Ok(total)
    }

    /// Applies one update from a stream.
    pub fn apply(&mut self, update: GraphUpdate) -> Result<UpdateStats> {
        match update {
            GraphUpdate::InsertEdge(a, b) => self.insert_edge(a, b),
            GraphUpdate::DeleteEdge(a, b) => self.delete_edge(a, b),
            GraphUpdate::InsertVertex => {
                self.add_vertex();
                let mut s = UpdateStats::empty(UpdateKind::InsertVertex);
                s.inserted = 1;
                Ok(s)
            }
            GraphUpdate::DeleteVertex(v) => self.delete_vertex(v),
        }
    }

    /// Applies a whole stream, returning per-update stats.
    pub fn apply_stream(&mut self, updates: &[GraphUpdate]) -> Result<Vec<UpdateStats>> {
        updates.iter().map(|&u| self.apply(u)).collect()
    }

    /// Applies `updates` as one epoch: edge operations are deduplicated and
    /// coalesced (an insert and a delete of the same edge cancel; a delete
    /// followed by a re-insert is a topological no-op), the surviving net
    /// operations run through the engine in rank-friendly order, and the
    /// aggregated label-operation counters come back as one
    /// [`UpdateStats`].
    ///
    /// This is the write-side epoch boundary the serving story assumes:
    /// [`crate::parallel::par_batch_query`] fans queries out between
    /// batches, and the index is never observed mid-batch.
    ///
    /// Validation mirrors [`DynamicSpc::apply_stream`]: each edge op must
    /// be valid against the state left by the ops before it (inserting a
    /// present edge or deleting a missing one errors), and every edge op in
    /// a segment is validated before the first one is applied. Vertex
    /// operations act as barriers: pending edge ops flush first, then the
    /// vertex op applies, preserving sequential meaning.
    ///
    /// Equivalent to [`DynamicSpc::apply_batch_with`] under this facade's
    /// [`DynamicSpc::maintenance_options`].
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<UpdateStats> {
        self.apply_batch_with(updates, &self.maintenance_options())
    }

    /// [`DynamicSpc::apply_batch`] with explicit [`MaintenanceOptions`]:
    /// the thread budget, classification mode, and agenda scope of every
    /// deletion segment in the batch come from `options` instead of the
    /// facade defaults. Under [`AgendaScope::Global`] (the default) each
    /// segment's whole net-deletion set is repaired through ONE agenda —
    /// hubs and receivers deduplicated across former per-endpoint groups,
    /// waves spanning group boundaries; [`AgendaScope::PerGroup`] restores
    /// the legacy per-higher-ranked-endpoint grouping.
    pub fn apply_batch_with(
        &mut self,
        updates: &[GraphUpdate],
        options: &MaintenanceOptions,
    ) -> Result<UpdateStats> {
        let mut total = UpdateStats::empty(UpdateKind::Batch);
        let mut co: crate::engine::EdgeCoalescer<()> = crate::engine::EdgeCoalescer::new();
        for &u in updates {
            match u {
                GraphUpdate::InsertEdge(a, b) => {
                    let (graph, key) = (&self.graph, ordered_key(a, b));
                    crate::engine::check_endpoints(a, b, |v| graph.contains_vertex(v))?;
                    co.fold_insert(key, (), || graph.has_edge(a, b).then_some(()))?;
                }
                GraphUpdate::DeleteEdge(a, b) => {
                    let (graph, key) = (&self.graph, ordered_key(a, b));
                    crate::engine::check_endpoints(a, b, |v| graph.contains_vertex(v))?;
                    co.fold_remove(key, || graph.has_edge(a, b).then_some(()))?;
                }
                GraphUpdate::InsertVertex | GraphUpdate::DeleteVertex(_) => {
                    self.flush_batch_segment(&mut co, &mut total, options)?;
                    total.absorb(&self.apply(u)?);
                }
            }
        }
        self.flush_batch_segment(&mut co, &mut total, options)?;
        Ok(total)
    }

    /// Applies one coalesced segment: net deletions first — under
    /// [`AgendaScope::Global`] the whole net-deletion set goes to the
    /// multi-edge `SrrSEARCH` repair path as ONE batch (one global agenda);
    /// under [`AgendaScope::PerGroup`] it is split by higher-ranked
    /// endpoint with one agenda per group — then net insertions ordered by
    /// the higher-ranked endpoint (ascending rank position), a heuristic
    /// that settles the labels of top hubs before lower-ranked updates
    /// consult them, trimming repeat renewals. Per-call [`UpdateStats`]
    /// are aggregated into `total`.
    fn flush_batch_segment(
        &mut self,
        co: &mut crate::engine::EdgeCoalescer<()>,
        total: &mut UpdateStats,
        options: &MaintenanceOptions,
    ) -> Result<()> {
        if co.is_empty() {
            return Ok(());
        }
        let index = &self.index;
        let plan = crate::engine::NetPlan::build(co.drain(), |v| index.rank(VertexId(v)));
        match options.scope {
            AgendaScope::Global => {
                let deletions: Vec<(VertexId, VertexId)> = plan
                    .deletions
                    .iter()
                    .map(|&(a, b)| (VertexId(a), VertexId(b)))
                    .collect();
                if !deletions.is_empty() {
                    total.absorb(&self.delete_edges_with(&deletions, options)?);
                }
            }
            AgendaScope::PerGroup => {
                for group in plan.deletion_vertex_groups() {
                    total.absorb(&self.delete_edges_with(&group, options)?);
                }
            }
        }
        for op in plan.into_post_deletion_ops() {
            total.absorb(&match op {
                crate::engine::NetOp::Insert(a, b, ()) => self.insert_edge(a, b)?,
                crate::engine::NetOp::Rewrite(..) => {
                    unreachable!("unit payloads cannot rewrite")
                }
            });
        }
        total.counters.isolated_fast_path = false;
        Ok(())
    }

    /// Index size/shape statistics (Table 4's "L Size").
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Plans up to `budget` non-overlapping adjacent rank swaps against
    /// the current degree order, largest inversions first
    /// ([`crate::order::plan_adjacent_swaps`]).
    pub fn plan_rerank(&self, budget: usize) -> Vec<crate::label::Rank> {
        crate::order::plan_adjacent_swaps(&self.graph, self.index.ranks(), budget)
    }

    /// Applies a sorted, non-overlapping run of adjacent rank swaps and
    /// repairs the index in place ([`crate::reorder::rerank_adjacent`]) —
    /// the bounded middle ground between per-update repair and
    /// [`DynamicSpc::rebuild`]. The post-repair index is bit-identical to
    /// a fresh build at the swapped order; like every mutation, a
    /// non-empty re-rank drops the cached frozen snapshot.
    pub fn rerank_adjacent(
        &mut self,
        swaps: &[crate::label::Rank],
        threads: usize,
    ) -> MaintenanceCounters {
        if swaps.is_empty() {
            return MaintenanceCounters::default();
        }
        self.flat = None;
        crate::reorder::rerank_adjacent(&self.graph, &mut self.index, swaps, threads)
    }

    /// Rebuilds from scratch with a *fresh* ordering — the paper's lazy
    /// answer to ordering staleness (§6).
    pub fn rebuild(&mut self) {
        self.index = self.builder.build(&self.graph, self.strategy);
        self.flat = None;
        self.updates_since_build = 0;
    }

    /// Rebuilds from scratch keeping the current ordering — the
    /// reconstruction baseline the dynamic algorithms race against.
    pub fn rebuild_same_order(&mut self) {
        self.index = self
            .builder
            .build_with_ranks(&self.graph, self.index.ranks().clone());
        self.flat = None;
        self.updates_since_build = 0;
    }

    /// Consumes the facade, returning the graph and index.
    pub fn into_parts(self) -> (UndirectedGraph, SpcIndex) {
        (self.graph, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_all_pairs;
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_query_roundtrip() {
        let d = DynamicSpc::build(figure2_g(), OrderingStrategy::Identity);
        assert_eq!(d.query(VertexId(4), VertexId(6)), Some((3, 2)));
        assert_eq!(d.distance(VertexId(0), VertexId(9)), Some(4));
        assert_eq!(d.query(VertexId(0), VertexId(0)), Some((0, 1)));
    }

    #[test]
    fn insert_then_delete_roundtrip_preserves_queries() {
        let mut d = DynamicSpc::build(figure2_g(), OrderingStrategy::Identity);
        let before: Vec<_> = (0..12u32)
            .flat_map(|s| (0..12u32).map(move |t| (s, t)))
            .map(|(s, t)| d.query(VertexId(s), VertexId(t)))
            .collect();
        d.insert_edge(VertexId(3), VertexId(9)).unwrap();
        d.delete_edge(VertexId(3), VertexId(9)).unwrap();
        let after: Vec<_> = (0..12u32)
            .flat_map(|s| (0..12u32).map(move |t| (s, t)))
            .map(|(s, t)| d.query(VertexId(s), VertexId(t)))
            .collect();
        assert_eq!(before, after);
        verify_all_pairs(d.graph(), d.index()).unwrap();
    }

    #[test]
    fn vertex_lifecycle() {
        let mut d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        let (v, _) = d.add_vertex_connected(&[VertexId(0), VertexId(9)]).unwrap();
        assert_eq!(v, VertexId(12));
        verify_all_pairs(d.graph(), d.index()).unwrap();
        // New vertex creates a shortcut 0–9 of length 2.
        assert_eq!(d.distance(VertexId(0), VertexId(9)), Some(2));
        let stats = d.delete_vertex(v).unwrap();
        assert_eq!(stats.kind, UpdateKind::DeleteVertex);
        verify_all_pairs(d.graph(), d.index()).unwrap();
        assert_eq!(d.distance(VertexId(0), VertexId(9)), Some(4));
    }

    #[test]
    fn hybrid_stream_matches_reconstruction() {
        let mut rng = StdRng::seed_from_u64(10_000);
        let g = erdos_renyi_gnm(40, 100, &mut rng);
        let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
        for step in 0..40 {
            if rng.gen_bool(0.6) || d.graph().num_edges() == 0 {
                loop {
                    let a = rng.gen_range(0..40u32);
                    let b = rng.gen_range(0..40u32);
                    if a != b && !d.graph().has_edge(VertexId(a), VertexId(b)) {
                        d.insert_edge(VertexId(a), VertexId(b)).unwrap();
                        break;
                    }
                }
            } else {
                let m = d.graph().num_edges();
                let (a, b) = d.graph().nth_edge(rng.gen_range(0..m)).unwrap();
                d.delete_edge(a, b).unwrap();
            }
            if step % 10 == 9 {
                verify_all_pairs(d.graph(), d.index()).unwrap();
            }
        }
        verify_all_pairs(d.graph(), d.index()).unwrap();
        assert_eq!(d.updates_since_build(), 40);
    }

    #[test]
    fn apply_stream_counts() {
        let mut d = DynamicSpc::build(UndirectedGraph::with_vertices(3), OrderingStrategy::Degree);
        let stats = d
            .apply_stream(&[
                GraphUpdate::InsertEdge(VertexId(0), VertexId(1)),
                GraphUpdate::InsertEdge(VertexId(1), VertexId(2)),
                GraphUpdate::InsertVertex,
                GraphUpdate::InsertEdge(VertexId(3), VertexId(0)),
                GraphUpdate::DeleteEdge(VertexId(0), VertexId(1)),
            ])
            .unwrap();
        assert_eq!(stats.len(), 5);
        verify_all_pairs(d.graph(), d.index()).unwrap();
        // Deleting (0,1) stranded {1,2} from {0,3}.
        assert_eq!(d.query(VertexId(1), VertexId(3)), None);
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((1, 1)));
        assert_eq!(d.query(VertexId(1), VertexId(2)), Some((1, 1)));
    }

    #[test]
    fn apply_batch_coalesces_and_matches_sequential() {
        // Same ops, batch vs stream: identical final graphs and queries.
        let base = figure2_g();
        let ops = [
            GraphUpdate::InsertEdge(VertexId(3), VertexId(9)),
            GraphUpdate::DeleteEdge(VertexId(1), VertexId(2)),
            GraphUpdate::DeleteEdge(VertexId(3), VertexId(9)), // cancels the insert
            GraphUpdate::InsertEdge(VertexId(0), VertexId(10)),
        ];
        let mut batched = DynamicSpc::build(base.clone(), OrderingStrategy::Degree);
        let stats = batched.apply_batch(&ops).unwrap();
        assert_eq!(stats.kind, UpdateKind::Batch);
        let mut streamed = DynamicSpc::build(base, OrderingStrategy::Degree);
        streamed.apply_stream(&ops).unwrap();
        assert_eq!(batched.graph().num_edges(), streamed.graph().num_edges());
        for s in batched.graph().vertices() {
            for t in batched.graph().vertices() {
                assert_eq!(batched.query(s, t), streamed.query(s, t), "({s:?},{t:?})");
            }
        }
        verify_all_pairs(batched.graph(), batched.index()).unwrap();
        // The cancelled edge never exists in the batched graph.
        assert!(!batched.graph().has_edge(VertexId(3), VertexId(9)));
    }

    #[test]
    fn apply_batch_validates_like_the_stream() {
        let mut d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        // Inserting an existing edge fails even inside a batch…
        assert!(d
            .apply_batch(&[GraphUpdate::InsertEdge(VertexId(0), VertexId(1))])
            .is_err());
        // …unless a preceding batched delete removed it first.
        let stats = d
            .apply_batch(&[
                GraphUpdate::DeleteEdge(VertexId(0), VertexId(1)),
                GraphUpdate::InsertEdge(VertexId(0), VertexId(1)),
            ])
            .unwrap();
        // Delete + re-insert nets out: no maintenance ran at all.
        assert_eq!(stats.total_ops(), 0);
        assert!(d.graph().has_edge(VertexId(0), VertexId(1)));
        // Deleting a missing edge fails, and double-delete inside a batch
        // fails at fold time (before anything is applied).
        assert!(d
            .apply_batch(&[GraphUpdate::DeleteEdge(VertexId(0), VertexId(9))])
            .is_err());
        assert!(d
            .apply_batch(&[
                GraphUpdate::DeleteEdge(VertexId(0), VertexId(1)),
                GraphUpdate::DeleteEdge(VertexId(0), VertexId(1)),
            ])
            .is_err());
        verify_all_pairs(d.graph(), d.index()).unwrap();
    }

    #[test]
    fn apply_batch_rejects_bad_endpoints_before_applying_anything() {
        // Presence checks alone would let an unknown-vertex op through
        // folding and only fail mid-flush, after the reordered net plan
        // already deleted (0, 1). Endpoint validation must fire at fold
        // time, before any mutation.
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
        assert!(d
            .apply_batch(&[
                GraphUpdate::InsertEdge(VertexId(0), VertexId(99)),
                GraphUpdate::DeleteEdge(VertexId(0), VertexId(1)),
            ])
            .is_err());
        assert!(
            d.graph().has_edge(VertexId(0), VertexId(1)),
            "nothing applied"
        );
        assert!(d
            .apply_batch(&[GraphUpdate::InsertEdge(VertexId(2), VertexId(2))])
            .is_err());
        verify_all_pairs(d.graph(), d.index()).unwrap();
    }

    #[test]
    fn apply_batch_vertex_ops_are_barriers() {
        let mut d = DynamicSpc::build(UndirectedGraph::with_vertices(2), OrderingStrategy::Degree);
        let stats = d
            .apply_batch(&[
                GraphUpdate::InsertEdge(VertexId(0), VertexId(1)),
                GraphUpdate::InsertVertex, // v2 — flushes the pending insert
                GraphUpdate::InsertEdge(VertexId(1), VertexId(2)),
                GraphUpdate::DeleteVertex(VertexId(0)),
            ])
            .unwrap();
        assert!(stats.inserted >= 1);
        assert_eq!(d.graph().num_vertices(), 2);
        assert_eq!(d.query(VertexId(1), VertexId(2)), Some((1, 1)));
        verify_all_pairs(d.graph(), d.index()).unwrap();
    }

    #[test]
    fn isolated_vertex_fast_path_through_facade() {
        // Pendant off a triangle under degree order: deleting the pendant
        // edge must take the §3.2.3 fast path and leave an exact index
        // (exercises the one-pass LabelSet::reset_to_self).
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
        let stats = d.delete_edge(VertexId(2), VertexId(3)).unwrap();
        assert!(stats.isolated_fast_path);
        assert!(stats.removed >= 1);
        assert_eq!(d.index().label_set(VertexId(3)).len(), 1);
        assert_eq!(d.query(VertexId(3), VertexId(0)), None);
        assert_eq!(d.query(VertexId(3), VertexId(3)), Some((0, 1)));
        verify_all_pairs(d.graph(), d.index()).unwrap();
        d.index().check_invariants().unwrap();
    }

    #[test]
    fn rebuild_resets_counter_and_stays_correct() {
        let mut d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        d.insert_edge(VertexId(3), VertexId(9)).unwrap();
        assert_eq!(d.updates_since_build(), 1);
        d.rebuild();
        assert_eq!(d.updates_since_build(), 0);
        verify_all_pairs(d.graph(), d.index()).unwrap();
        d.rebuild_same_order();
        verify_all_pairs(d.graph(), d.index()).unwrap();
    }

    #[test]
    fn frozen_snapshot_caches_and_invalidates() {
        let mut d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        assert!(!d.has_frozen_snapshot());
        let r = d.frozen_queries().query(VertexId(4), VertexId(6));
        assert_eq!(r.as_option(), d.query(VertexId(4), VertexId(6)));
        assert!(d.has_frozen_snapshot());
        // Repeated access reuses the cached snapshot.
        d.frozen_queries();
        assert!(d.has_frozen_snapshot());

        // Every mutation path drops the cache…
        d.insert_edge(VertexId(3), VertexId(9)).unwrap();
        assert!(!d.has_frozen_snapshot());
        d.frozen_queries();
        d.delete_edge(VertexId(3), VertexId(9)).unwrap();
        assert!(!d.has_frozen_snapshot());
        d.frozen_queries();
        d.apply_batch(&[GraphUpdate::InsertEdge(VertexId(3), VertexId(9))])
            .unwrap();
        assert!(!d.has_frozen_snapshot());
        d.frozen_queries();
        d.add_vertex();
        assert!(!d.has_frozen_snapshot());
        d.frozen_queries();
        d.rebuild();
        assert!(!d.has_frozen_snapshot());

        // …and the re-frozen snapshot answers like the repaired index.
        let vs: Vec<VertexId> = d.graph().vertices().collect();
        for &s in &vs {
            for &t in &vs {
                let live = d.query(s, t);
                assert_eq!(d.frozen_queries().query(s, t).as_option(), live);
            }
        }
    }

    #[test]
    fn errors_do_not_corrupt_state() {
        let mut d = DynamicSpc::build(figure2_g(), OrderingStrategy::Degree);
        assert!(d.insert_edge(VertexId(0), VertexId(1)).is_err()); // duplicate
        assert!(d.delete_edge(VertexId(0), VertexId(9)).is_err()); // missing
        assert!(d.delete_vertex(VertexId(40)).is_err()); // unknown
        verify_all_pairs(d.graph(), d.index()).unwrap();
    }
}
