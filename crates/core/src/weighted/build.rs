//! Weighted HP-SPC: Dijkstra hub pushing (Appendix C.2).
//!
//! Identical structure to the unweighted build with Dijkstra in place of
//! BFS: vertices settle in weighted-distance order, the settle step carries
//! the strict prune (`query(h, v) < D[v]`), labels are emitted at settle
//! time when not pruned, and relaxations observe rank pruning.

use super::{WHubProbe, WLabelEntry, WLabelSet, WeightedSpcIndex};
use crate::label::{Count, Rank};
use crate::order::{OrderingStrategy, RankMap};
use dspc_graph::weighted::{WDist, WeightedGraph, WDIST_INF};
use dspc_graph::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable weighted construction engine.
#[derive(Debug)]
pub struct WeightedBuilder {
    dist: Vec<WDist>,
    count: Vec<Count>,
    settled: Vec<bool>,
    heap: BinaryHeap<Reverse<(WDist, u32)>>,
    touched: Vec<u32>,
    probe: WHubProbe,
}

impl WeightedBuilder {
    /// Creates a builder.
    pub fn new(capacity: usize) -> Self {
        WeightedBuilder {
            dist: vec![WDIST_INF; capacity],
            count: vec![0; capacity],
            settled: vec![false; capacity],
            heap: BinaryHeap::new(),
            touched: Vec::new(),
            probe: WHubProbe::new(capacity),
        }
    }

    pub(crate) fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, WDIST_INF);
            self.count.resize(capacity, 0);
            self.settled.resize(capacity, false);
        }
        self.probe.ensure_capacity(capacity);
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = WDIST_INF;
            self.count[v as usize] = 0;
            self.settled[v as usize] = false;
        }
        self.touched.clear();
        self.heap.clear();
    }

    /// Builds the weighted SPC-Index of `g`.
    pub fn build(&mut self, g: &WeightedGraph, strategy: OrderingStrategy) -> WeightedSpcIndex {
        let cap = g.capacity();
        self.ensure_capacity(cap);
        // Degree ordering uses structural degree (same heuristic the paper
        // inherits; weights don't change who the likely hubs are).
        let mut ids: Vec<u32> = (0..cap as u32).collect();
        match strategy {
            OrderingStrategy::Degree => {
                ids.sort_by_key(|&v| (std::cmp::Reverse(g.degree(VertexId(v))), v));
            }
            OrderingStrategy::Identity => {}
            OrderingStrategy::Random(seed) => {
                let key = |v: u32| -> u64 {
                    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15).wrapping_add(v as u64);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    z ^ (z >> 31)
                };
                ids.sort_by_key(|&v| (key(v), v));
            }
        }
        self.build_with_ranks(g, RankMap::from_rank_order(&ids, strategy))
    }

    /// Builds the weighted SPC-Index of `g` over an explicit rank map —
    /// the comparison target for [`crate::reorder`]'s weighted swap repair.
    pub fn build_with_ranks(&mut self, g: &WeightedGraph, ranks: RankMap) -> WeightedSpcIndex {
        let cap = g.capacity();
        assert_eq!(ranks.len(), cap, "rank map does not cover the graph");
        self.ensure_capacity(cap);
        let mut index = WeightedSpcIndex::new(vec![WLabelSet::default(); cap], ranks);
        for r in 0..cap as u32 {
            let h = index.vertex(Rank(r));
            if !g.contains_vertex(h) {
                continue;
            }
            self.push_hub(g, &mut index, h);
        }
        for v in 0..cap {
            let vid = VertexId(v as u32);
            if index.label_set(vid).is_empty() {
                let rank = index.rank(vid);
                index
                    .label_set_mut(vid)
                    .push_descending(WLabelEntry::new(rank, 0, 1));
            }
        }
        index
    }

    fn push_hub(&mut self, g: &WeightedGraph, index: &mut WeightedSpcIndex, h: VertexId) {
        let hr = index.rank(h);
        self.reset();
        self.probe.load(index, h);
        self.dist[h.index()] = 0;
        self.count[h.index()] = 1;
        self.touched.push(h.0);
        self.heap.push(Reverse((0, h.0)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if self.settled[v as usize] {
                continue;
            }
            self.settled[v as usize] = true;
            let q = self.probe.query_limited(index.label_set(VertexId(v)), None);
            if q.dist < d {
                continue;
            }
            index
                .label_set_mut(VertexId(v))
                .push_descending(WLabelEntry::new(hr, d, self.count[v as usize]));
            let cv = self.count[v as usize];
            for &(w, wt) in g.neighbors(VertexId(v)) {
                if index.rank(VertexId(w)) <= hr {
                    continue;
                }
                let nd = d + wt as WDist;
                let dw = self.dist[w as usize];
                if nd < dw {
                    if dw == WDIST_INF {
                        self.touched.push(w);
                    }
                    self.dist[w as usize] = nd;
                    self.count[w as usize] = cv;
                    self.heap.push(Reverse((nd, w)));
                } else if nd == dw {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
    }
}

/// One-shot weighted build.
pub fn build_weighted_index(g: &WeightedGraph, strategy: OrderingStrategy) -> WeightedSpcIndex {
    WeightedBuilder::new(g.capacity()).build(g, strategy)
}

/// One-shot weighted build over an explicit rank map.
pub fn rebuild_weighted_index(g: &WeightedGraph, ranks: RankMap) -> WeightedSpcIndex {
    WeightedBuilder::new(g.capacity()).build_with_ranks(g, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::weighted_spc_query;
    use dspc_graph::generators::random::{erdos_renyi_gnm, random_weights};
    use dspc_graph::traversal::dijkstra::DijkstraCounter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn assert_matches_dijkstra(g: &WeightedGraph, index: &WeightedSpcIndex) {
        let mut dj = DijkstraCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    weighted_spc_query(index, s, t).as_option(),
                    dj.count(g, s, t),
                    "pair ({s:?}, {t:?})"
                );
            }
        }
    }

    #[test]
    fn weighted_diamond() {
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1), (0, 3, 2)],
        );
        let idx = build_weighted_index(&g, OrderingStrategy::Degree);
        idx.check_invariants().unwrap();
        assert_eq!(
            weighted_spc_query(&idx, VertexId(0), VertexId(3)).as_option(),
            Some((2, 3))
        );
        assert_matches_dijkstra(&g, &idx);
    }

    #[test]
    fn random_weighted_graphs_match_oracle() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..6 {
            let base = erdos_renyi_gnm(30, 70, &mut rng);
            let g = random_weights(&base, 6, &mut rng);
            for strategy in [OrderingStrategy::Degree, OrderingStrategy::Random(2)] {
                let idx = build_weighted_index(&g, strategy);
                idx.check_invariants().unwrap();
                assert_matches_dijkstra(&g, &idx);
            }
        }
    }

    #[test]
    fn unit_weights_match_unweighted_index() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = erdos_renyi_gnm(25, 60, &mut rng);
        let g = random_weights(&base, 1, &mut rng);
        let widx = build_weighted_index(&g, OrderingStrategy::Degree);
        let uidx = crate::build::build_index(&base, OrderingStrategy::Degree);
        for s in base.vertices() {
            for t in base.vertices() {
                let w = weighted_spc_query(&widx, s, t).as_option();
                let u = crate::query::spc_query(&uidx, s, t)
                    .as_option()
                    .map(|(d, c)| (d as u64, c));
                assert_eq!(w, u);
            }
        }
    }
}
