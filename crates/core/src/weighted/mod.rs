//! Weighted SPC-Index — the Appendix C.2 extension.
//!
//! Labels store accumulated edge weights instead of hop counts; Dijkstra
//! (with a priority queue) replaces BFS everywhere. Edge-weight *decreases*
//! (and insertions) are incremental updates; *increases* (and deletions)
//! are decremental, with the affected-vertex condition becoming
//! `|sd(v, a) − sd(v, b)| = w_ab`.
//!
//! The weighted label machinery is a parallel implementation rather than a
//! generic one: the unweighted hot path keeps its compact `u32` distances,
//! while weighted labels carry `u64` accumulated weights.

pub mod build;
pub mod update;

pub use build::{build_weighted_index, WeightedBuilder};
pub use update::{WeightedDecSpc, WeightedIncSpc};

use crate::dynamic::{UpdateKind, UpdateStats};
use crate::engine::{ordered_key, EdgeCoalescer};
use crate::label::{Count, Rank};
use crate::order::OrderingStrategy;
use crate::parallel::{AgendaScope, MaintenanceOptions, MaintenanceThreads};
use dspc_graph::weighted::{WDist, Weight, WeightedGraph, WDIST_INF};
use dspc_graph::VertexId;
use serde::{Deserialize, Serialize};

/// One weighted hub label `(hub, dist, count)` with a `u64` distance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct WLabelEntry {
    /// Rank of the hub vertex.
    pub hub: Rank,
    /// Accumulated shortest-path weight from the hub.
    pub dist: WDist,
    /// `spc(ĥ, v)` under weighted shortest paths.
    pub count: Count,
}

impl WLabelEntry {
    /// Convenience constructor.
    pub fn new(hub: Rank, dist: WDist, count: Count) -> Self {
        WLabelEntry { hub, dist, count }
    }
}

/// A weighted label set, sorted by hub rank ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WLabelSet {
    entries: Vec<WLabelEntry>,
}

impl WLabelSet {
    /// Set with only the self label.
    pub fn self_only(rank: Rank) -> Self {
        WLabelSet {
            entries: vec![WLabelEntry::new(rank, 0, 1)],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted entries.
    pub fn entries(&self) -> &[WLabelEntry] {
        &self.entries
    }

    /// Entry for `hub`, if present.
    pub fn get(&self, hub: Rank) -> Option<&WLabelEntry> {
        self.entries
            .binary_search_by_key(&hub, |e| e.hub)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Whether `hub` labels this vertex.
    pub fn contains(&self, hub: Rank) -> bool {
        self.get(hub).is_some()
    }

    /// Inserts or replaces.
    pub fn upsert(&mut self, e: WLabelEntry) -> Option<WLabelEntry> {
        match self.entries.binary_search_by_key(&e.hub, |x| x.hub) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i], e)),
            Err(i) => {
                self.entries.insert(i, e);
                None
            }
        }
    }

    /// Removes the entry for `hub`.
    pub fn remove(&mut self, hub: Rank) -> Option<WLabelEntry> {
        match self.entries.binary_search_by_key(&hub, |x| x.hub) {
            Ok(i) => Some(self.entries.remove(i)),
            Err(_) => None,
        }
    }

    /// Append fast path (hub ranks arrive ascending during construction).
    pub fn push_descending(&mut self, e: WLabelEntry) {
        debug_assert!(self.entries.last().is_none_or(|l| l.hub < e.hub));
        self.entries.push(e);
    }

    /// Clears all entries.
    pub fn clear_all(&mut self) {
        self.entries.clear();
    }

    /// Strictly-sorted invariant.
    pub fn is_sorted_strict(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].hub < w[1].hub)
    }
}

/// The weighted SPC-Index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightedSpcIndex {
    labels: Vec<WLabelSet>,
    ranks: crate::order::RankMap,
}

impl WeightedSpcIndex {
    pub(crate) fn new(labels: Vec<WLabelSet>, ranks: crate::order::RankMap) -> Self {
        WeightedSpcIndex { labels, ranks }
    }

    /// The vertex total order.
    pub fn ranks(&self) -> &crate::order::RankMap {
        &self.ranks
    }

    /// Rank of `v`.
    pub fn rank(&self, v: VertexId) -> Rank {
        self.ranks.rank(v)
    }

    /// Vertex at `r`.
    pub fn vertex(&self, r: Rank) -> VertexId {
        self.ranks.vertex(r)
    }

    /// `L(v)`.
    pub fn label_set(&self, v: VertexId) -> &WLabelSet {
        &self.labels[v.index()]
    }

    /// Mutable `L(v)`.
    pub fn label_set_mut(&mut self, v: VertexId) -> &mut WLabelSet {
        &mut self.labels[v.index()]
    }

    /// Total label entries.
    pub fn num_entries(&self) -> usize {
        self.labels.iter().map(WLabelSet::len).sum()
    }

    /// Registers a freshly added isolated vertex at the lowest rank.
    pub fn append_vertex(&mut self, v: VertexId) -> Rank {
        let r = self.ranks.append_vertex(v);
        self.labels.push(WLabelSet::self_only(r));
        r
    }

    /// Swaps the vertices at ranks `r` and `r + 1` without touching the
    /// label sets — the weighted twin of
    /// [`crate::index::SpcIndex::swap_adjacent_ranks`]; the caller
    /// ([`crate::reorder`]) purges both ranks' entries around the remap.
    pub fn swap_adjacent_ranks(&mut self, r: Rank) {
        self.ranks.swap_adjacent(r);
    }

    /// Structural invariants (sorted, self labels, upward hubs).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (vi, ls) in self.labels.iter().enumerate() {
            let v = VertexId(vi as u32);
            if !ls.is_sorted_strict() {
                return Err(format!("L({v}) not sorted"));
            }
            let sr = self.ranks.rank(v);
            match ls.get(sr) {
                Some(e) if e.dist == 0 && e.count == 1 => {}
                _ => return Err(format!("self label of {v} missing/malformed")),
            }
            for e in ls.entries() {
                if e.hub > sr {
                    return Err(format!("L({v}) hub below owner"));
                }
                if e.count == 0 {
                    return Err(format!("L({v}) zero count"));
                }
            }
        }
        Ok(())
    }
}

/// Weighted query result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WQueryResult {
    /// Accumulated weight (`WDIST_INF` when disconnected).
    pub dist: WDist,
    /// Shortest-path count.
    pub count: Count,
}

impl WQueryResult {
    /// Whether connected.
    pub fn is_connected(&self) -> bool {
        self.dist != WDIST_INF
    }

    /// As `Option<(dist, count)>`.
    pub fn as_option(&self) -> Option<(WDist, Count)> {
        self.is_connected().then_some((self.dist, self.count))
    }
}

/// Weighted label-merge kernel, monomorphized over the `PreQUERY` rank
/// limit like the unweighted one in [`crate::query`].
#[inline]
fn merge_weighted<const LIMITED: bool>(
    a: &[WLabelEntry],
    b: &[WLabelEntry],
    limit: Rank,
) -> WQueryResult {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = WDIST_INF;
    let mut count: Count = 0;
    while i < a.len() && j < b.len() {
        let (ha, hb) = (a[i].hub, b[j].hub);
        if LIMITED && (ha >= limit || hb >= limit) {
            break;
        }
        if ha == hb {
            let d = a[i].dist.saturating_add(b[j].dist);
            if d < best {
                best = d;
                count = a[i].count.saturating_mul(b[j].count);
            } else if d == best && d != WDIST_INF {
                count = count.saturating_add(a[i].count.saturating_mul(b[j].count));
            }
            i += 1;
            j += 1;
        } else if ha < hb {
            i += 1;
        } else {
            j += 1;
        }
    }
    WQueryResult { dist: best, count }
}

/// Weighted `SpcQUERY(s, t)`.
pub fn weighted_spc_query(index: &WeightedSpcIndex, s: VertexId, t: VertexId) -> WQueryResult {
    merge_weighted::<false>(
        index.label_set(s).entries(),
        index.label_set(t).entries(),
        Rank(0),
    )
}

/// Weighted `PreQUERY(s, t)`: [`weighted_spc_query`] restricted to hubs
/// ranked strictly above `s`.
pub fn weighted_pre_query(index: &WeightedSpcIndex, s: VertexId, t: VertexId) -> WQueryResult {
    merge_weighted::<true>(
        index.label_set(s).entries(),
        index.label_set(t).entries(),
        index.rank(s),
    )
}

/// Rank-indexed probe for repeated weighted queries against one hub.
#[derive(Clone, Debug)]
pub struct WHubProbe {
    dist: Vec<WDist>,
    count: Vec<Count>,
    loaded: Vec<Rank>,
}

impl WHubProbe {
    /// Creates a probe.
    pub fn new(capacity: usize) -> Self {
        WHubProbe {
            dist: vec![WDIST_INF; capacity],
            count: vec![0; capacity],
            loaded: Vec::new(),
        }
    }

    /// Grows if needed.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, WDIST_INF);
            self.count.resize(capacity, 0);
        }
    }

    /// Pins `L(h)`.
    pub fn load(&mut self, index: &WeightedSpcIndex, h: VertexId) {
        self.ensure_capacity(index.ranks().len());
        for &r in &self.loaded {
            self.dist[r.index()] = WDIST_INF;
            self.count[r.index()] = 0;
        }
        self.loaded.clear();
        for e in index.label_set(h).entries() {
            self.dist[e.hub.index()] = e.dist;
            self.count[e.hub.index()] = e.count;
            self.loaded.push(e.hub);
        }
    }

    /// Weighted `SpcQUERY(h, v)` with optional rank limit (`PreQUERY`).
    pub fn query_limited(&self, lv: &WLabelSet, limit: Option<Rank>) -> WQueryResult {
        let mut best = WDIST_INF;
        let mut count: Count = 0;
        for e in lv.entries() {
            if let Some(lim) = limit {
                if e.hub >= lim {
                    break;
                }
            }
            let hd = self.dist[e.hub.index()];
            if hd == WDIST_INF {
                continue;
            }
            let d = hd.saturating_add(e.dist);
            if d < best {
                best = d;
                count = self.count[e.hub.index()].saturating_mul(e.count);
            } else if d == best && d != WDIST_INF {
                count = count.saturating_add(self.count[e.hub.index()].saturating_mul(e.count));
            }
        }
        WQueryResult { dist: best, count }
    }
}

/// Weighted facade keeping a [`WeightedGraph`] and its index in lockstep.
#[derive(Debug)]
pub struct DynamicWeightedSpc {
    graph: WeightedGraph,
    index: WeightedSpcIndex,
    inc: WeightedIncSpc,
    dec: WeightedDecSpc,
    maintenance_threads: MaintenanceThreads,
    /// Flat snapshot of the current epoch; dropped on any mutation.
    flat: Option<crate::flat::WeightedFlatIndex>,
}

impl DynamicWeightedSpc {
    /// Builds and wraps.
    pub fn build(graph: WeightedGraph, strategy: OrderingStrategy) -> Self {
        let index = build_weighted_index(&graph, strategy);
        let cap = graph.capacity();
        DynamicWeightedSpc {
            graph,
            index,
            inc: WeightedIncSpc::new(cap),
            dec: WeightedDecSpc::new(cap),
            maintenance_threads: MaintenanceThreads::default(),
            flat: None,
        }
    }

    /// The read-optimized flat snapshot of the current epoch (frozen on
    /// first use, reused until the next mutation drops it — same contract
    /// as [`crate::dynamic::DynamicSpc::frozen_queries`]).
    pub fn frozen_queries(&mut self) -> &crate::flat::WeightedFlatIndex {
        self.flat
            .get_or_insert_with(|| crate::flat::WeightedFlatIndex::freeze(&self.index))
    }

    /// Whether a flat snapshot is currently cached.
    pub fn has_frozen_snapshot(&self) -> bool {
        self.flat.is_some()
    }

    /// Sets the worker-thread budget for intra-batch repair
    /// ([`DynamicWeightedSpc::delete_edges_with`] and the deletion
    /// segments of [`DynamicWeightedSpc::apply_batch`]). Every thread
    /// count produces the same index, queries, and counters.
    pub fn set_maintenance_threads(&mut self, threads: MaintenanceThreads) {
        self.maintenance_threads = threads;
    }

    /// The configured maintenance thread budget.
    pub fn maintenance_threads(&self) -> MaintenanceThreads {
        self.maintenance_threads
    }

    /// The default [`MaintenanceOptions`] this facade applies batches
    /// with; pass a modified copy to
    /// [`DynamicWeightedSpc::apply_batch_with`] /
    /// [`DynamicWeightedSpc::delete_edges_with`] to override per call.
    pub fn maintenance_options(&self) -> MaintenanceOptions {
        MaintenanceOptions::with_threads(self.maintenance_threads)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// The maintained index.
    pub fn index(&self) -> &WeightedSpcIndex {
        &self.index
    }

    /// `SPC(s, t)` under weighted shortest paths.
    pub fn query(&self, s: VertexId, t: VertexId) -> Option<(WDist, Count)> {
        weighted_spc_query(&self.index, s, t).as_option()
    }

    /// Inserts edge `(a, b)` with weight `w` (incremental update).
    pub fn insert_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
        w: dspc_graph::Weight,
    ) -> dspc_graph::Result<UpdateStats> {
        self.graph.insert_edge(a, b, w)?;
        self.flat = None;
        let c = self.inc.apply(&self.graph, &mut self.index, a, b, w);
        Ok(UpdateStats::from_counters(UpdateKind::InsertEdge, c))
    }

    /// Deletes edge `(a, b)` (decremental update).
    pub fn delete_edge(&mut self, a: VertexId, b: VertexId) -> dspc_graph::Result<UpdateStats> {
        let c = self
            .dec
            .delete_edge(&mut self.graph, &mut self.index, a, b)?;
        self.flat = None;
        Ok(UpdateStats::from_counters(UpdateKind::DeleteEdge, c))
    }

    /// Deletes a *set* of edges as one epoch. Equivalent to
    /// [`DynamicWeightedSpc::delete_edges_with`] under this facade's
    /// [`DynamicWeightedSpc::maintenance_options`].
    #[deprecated(note = "use `delete_edges_with` (same behavior under `maintenance_options()`)")]
    pub fn delete_edges(
        &mut self,
        edges: &[(VertexId, VertexId)],
    ) -> dspc_graph::Result<UpdateStats> {
        self.delete_edges_with(edges, &self.maintenance_options())
    }

    /// Deletes a *set* of edges as one epoch through the multi-edge
    /// `SrrSEARCH` repair path ([`WeightedDecSpc::delete_edges_with`]):
    /// one rank-pruned Dijkstra per distinct affected hub against the
    /// residual graph with the whole set already absent. All edges are
    /// validated present before the first mutation.
    pub fn delete_edges_with(
        &mut self,
        edges: &[(VertexId, VertexId)],
        options: &MaintenanceOptions,
    ) -> dspc_graph::Result<UpdateStats> {
        let c = self
            .dec
            .delete_edges_with(&mut self.graph, &mut self.index, edges, options)?;
        self.flat = None;
        Ok(UpdateStats::from_counters(UpdateKind::Batch, c))
    }

    /// Adds an isolated vertex at the lowest rank (O(1) on the index).
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.flat = None;
        self.index.append_vertex(v);
        v
    }

    /// Deletes vertex `v` — the incident edges are removed as one epoch
    /// through the multi-edge repair path (one global agenda instead of a
    /// per-edge DecSPC cascade), then the id is retired.
    pub fn delete_vertex(&mut self, v: VertexId) -> dspc_graph::Result<()> {
        if !self.graph.contains_vertex(v) {
            return Err(dspc_graph::GraphError::UnknownVertex(v));
        }
        let edges: Vec<(VertexId, VertexId)> = self
            .graph
            .neighbors(v)
            .iter()
            .map(|&(n, _)| (v, VertexId(n)))
            .collect();
        self.delete_edges_with(&edges, &self.maintenance_options())?;
        self.graph.delete_vertex(v)?;
        self.flat = None;
        Ok(())
    }

    /// Changes the weight of `(a, b)`: decreases run the incremental
    /// machinery, increases the decremental one, equal weights are no-ops.
    pub fn set_weight(
        &mut self,
        a: VertexId,
        b: VertexId,
        w: dspc_graph::Weight,
    ) -> dspc_graph::Result<UpdateStats> {
        let old = self
            .graph
            .weight(a, b)
            .ok_or(dspc_graph::GraphError::MissingEdge(a, b))?;
        if w == old {
            return Ok(UpdateStats::empty(UpdateKind::WeightChange));
        }
        if w < old {
            self.graph.set_weight(a, b, w)?;
            self.flat = None;
            let c = self.inc.apply(&self.graph, &mut self.index, a, b, w);
            Ok(UpdateStats::from_counters(UpdateKind::WeightChange, c))
        } else {
            let c = self
                .dec
                .increase_weight(&mut self.graph, &mut self.index, a, b, w)?;
            self.flat = None;
            Ok(UpdateStats::from_counters(UpdateKind::WeightChange, c))
        }
    }

    /// Applies `updates` as one epoch: per-edge operations fold into their
    /// net effect (insert + delete cancels; consecutive weight changes
    /// collapse to the last; delete + re-insert at the original weight is
    /// a no-op, at a different weight a plain weight change), then the net
    /// operations run in rank-friendly order — deletions, then weight
    /// changes, then insertions, each ordered by the higher-ranked
    /// endpoint. Returns the aggregated [`UpdateStats`]. Validation
    /// mirrors applying the operations one by one.
    pub fn apply_batch(&mut self, updates: &[WeightedUpdate]) -> dspc_graph::Result<UpdateStats> {
        self.apply_batch_with(updates, &self.maintenance_options())
    }

    /// [`DynamicWeightedSpc::apply_batch`] with explicit
    /// [`MaintenanceOptions`]: `options.scope` selects whether the net
    /// deletion set repairs under one global agenda
    /// ([`AgendaScope::Global`], the default) or as per-component groups
    /// ([`AgendaScope::PerGroup`]); `options.threads` / `options.classify`
    /// flow through to the repair drivers.
    pub fn apply_batch_with(
        &mut self,
        updates: &[WeightedUpdate],
        options: &MaintenanceOptions,
    ) -> dspc_graph::Result<UpdateStats> {
        let mut co: EdgeCoalescer<Weight> = EdgeCoalescer::new();
        for &u in updates {
            match u {
                WeightedUpdate::InsertEdge(a, b, w) => {
                    let graph = &self.graph;
                    crate::engine::check_endpoints(a, b, |v| graph.contains_vertex(v))?;
                    co.fold_insert(ordered_key(a, b), w, || graph.weight(a, b))?;
                }
                WeightedUpdate::DeleteEdge(a, b) => {
                    let graph = &self.graph;
                    crate::engine::check_endpoints(a, b, |v| graph.contains_vertex(v))?;
                    co.fold_remove(ordered_key(a, b), || graph.weight(a, b))?;
                }
                WeightedUpdate::SetWeight(a, b, w) => {
                    let graph = &self.graph;
                    crate::engine::check_endpoints(a, b, |v| graph.contains_vertex(v))?;
                    co.fold_rewrite(ordered_key(a, b), w, || graph.weight(a, b))?;
                }
            }
        }
        let index = &self.index;
        let plan = crate::engine::NetPlan::build(co.drain(), |v| index.rank(VertexId(v)));
        let mut total = UpdateStats::empty(UpdateKind::Batch);
        match options.scope {
            AgendaScope::Global => {
                let deletions: Vec<(VertexId, VertexId)> = plan
                    .deletions
                    .iter()
                    .map(|&(a, b)| (VertexId(a), VertexId(b)))
                    .collect();
                if !deletions.is_empty() {
                    total.absorb(&self.delete_edges_with(&deletions, options)?);
                }
            }
            AgendaScope::PerGroup => {
                for group in plan.deletion_vertex_groups() {
                    total.absorb(&self.delete_edges_with(&group, options)?);
                }
            }
        }
        for op in plan.into_post_deletion_ops() {
            total.absorb(&match op {
                crate::engine::NetOp::Rewrite(a, b, w) => self.set_weight(a, b, w)?,
                crate::engine::NetOp::Insert(a, b, w) => self.insert_edge(a, b, w)?,
            });
        }
        Ok(total)
    }
}

/// A weighted topological update, for batch application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedUpdate {
    /// Insert edge `(a, b)` with the given weight.
    InsertEdge(VertexId, VertexId, Weight),
    /// Delete edge `(a, b)`.
    DeleteEdge(VertexId, VertexId),
    /// Change the weight of existing edge `(a, b)`.
    SetWeight(VertexId, VertexId, Weight),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::RankMap;
    use dspc_graph::generators::classic::path_graph;

    #[test]
    fn wlabel_set_ops() {
        let mut ls = WLabelSet::self_only(Rank(3));
        assert!(ls.contains(Rank(3)));
        ls.upsert(WLabelEntry::new(Rank(1), 5, 2));
        ls.upsert(WLabelEntry::new(Rank(0), 9, 1));
        assert!(ls.is_sorted_strict());
        assert_eq!(ls.len(), 3);
        assert_eq!(ls.remove(Rank(1)).unwrap().dist, 5);
        assert!(!ls.contains(Rank(1)));
    }

    #[test]
    fn empty_index_queries() {
        let g = path_graph(3);
        let ranks = RankMap::build(&g, OrderingStrategy::Identity);
        let labels = (0..3)
            .map(|v| WLabelSet::self_only(ranks.rank(VertexId(v))))
            .collect();
        let idx = WeightedSpcIndex::new(labels, ranks);
        idx.check_invariants().unwrap();
        assert_eq!(
            weighted_spc_query(&idx, VertexId(1), VertexId(1)).as_option(),
            Some((0, 1))
        );
        assert!(!weighted_spc_query(&idx, VertexId(0), VertexId(2)).is_connected());
    }
}
