//! Weighted IncSPC / DecSPC (Appendix C.2).
//!
//! * **Incremental** (`apply`): edge insertion, or weight decrease
//!   `w_ab → w'_ab`. For each hub `h ∈ L(a) ∪ L(b)` a partial Dijkstra
//!   starts across the edge with initial distance `d_{h,a} + w'_ab` and
//!   count `c_{h,a}`, renewing/inserting labels under the strict
//!   settle-time prune `query(h, v) < D[v]`.
//! * **Decremental** (`delete_edge` / `increase_weight`): the affected
//!   vertex condition becomes `sd_i(v, a) + w_ab = sd_i(v, b)` (weight, not
//!   hops). `SrrSEARCH` runs Dijkstra on the old graph; `DecUPDATE` runs
//!   rank-pruned Dijkstra from each `SR` hub on the new graph with
//!   `PreQUERY` pruning and the (unconditional — see [`crate::engine`])
//!   removal pass.

use super::{WHubProbe, WeightedSpcIndex};
use crate::engine::{
    aggregate_far_columns, build_endpoint_tasks, merge_affected, FarAggregator, FarColumn,
    MaintenanceCounters, RepairAgenda, UpdateEngine, WeightedTopo, MARK_A, MARK_B, REPAIR_PRIMARY,
};
use crate::label::Rank;
use crate::parallel::{ClassifyMode, MaintenanceOptions, MaintenanceThreads};
use dspc_graph::weighted::{WDist, Weight, WeightedGraph};
use dspc_graph::VertexId;

/// Weighted incremental driver: the insertion/weight-decrease policy over
/// the shared [`UpdateEngine`], running partial Dijkstras through
/// [`WeightedTopo`] views.
#[derive(Debug)]
pub struct WeightedIncSpc {
    engine: UpdateEngine<WDist>,
    probe: WHubProbe,
}

impl WeightedIncSpc {
    /// Creates an engine.
    pub fn new(capacity: usize) -> Self {
        WeightedIncSpc {
            engine: UpdateEngine::new(capacity),
            probe: WHubProbe::new(capacity),
        }
    }

    /// Repairs `index` after edge `(a, b)` was inserted with weight `w`, or
    /// after its weight *decreased* to `w`. `g` must already reflect the
    /// change. Returns the label-operation counters.
    pub fn apply(
        &mut self,
        g: &WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
        w: Weight,
    ) -> MaintenanceCounters {
        debug_assert_eq!(g.weight(a, b), Some(w));
        self.engine.ensure_capacity(g.capacity());
        let mut stats = MaintenanceCounters::default();
        let aff = merge_affected(index.label_set(a).entries(), index.label_set(b).entries());
        let (rank_a, rank_b) = (index.rank(a), index.rank(b));
        for (h_rank, in_a, in_b) in aff {
            let h = index.vertex(h_rank);
            stats.hubs_processed += 1;
            if in_a && h_rank <= rank_b {
                if let Some(seed) = index.label_set(a).get(h_rank).copied() {
                    let mut topo = WeightedTopo::new(g, index, &mut self.probe);
                    self.engine.inc_pass(
                        &mut topo,
                        h,
                        b,
                        seed.dist + w as WDist,
                        seed.count,
                        &mut stats,
                    );
                }
            }
            if in_b && h_rank <= rank_a {
                if let Some(seed) = index.label_set(b).get(h_rank).copied() {
                    let mut topo = WeightedTopo::new(g, index, &mut self.probe);
                    self.engine.inc_pass(
                        &mut topo,
                        h,
                        a,
                        seed.dist + w as WDist,
                        seed.count,
                        &mut stats,
                    );
                }
            }
        }
        stats
    }
}

/// Weighted decremental driver: the deletion/weight-increase policy over
/// the shared [`UpdateEngine`].
#[derive(Debug)]
pub struct WeightedDecSpc {
    engine: UpdateEngine<WDist>,
    probe: WHubProbe,
    probes: Vec<WHubProbe>,
    agenda: RepairAgenda,
    agg: FarAggregator,
}

impl WeightedDecSpc {
    /// Creates an engine.
    pub fn new(capacity: usize) -> Self {
        WeightedDecSpc {
            engine: UpdateEngine::new(capacity),
            probe: WHubProbe::new(capacity),
            probes: Vec::new(),
            agenda: RepairAgenda::new(capacity),
            agg: FarAggregator::new(capacity),
        }
    }

    /// Multi-edge `SrrSEARCH` repair, sequential. Equivalent to
    /// [`WeightedDecSpc::delete_edges_with`] with
    /// [`MaintenanceOptions::sequential`].
    #[deprecated(note = "use `delete_edges_with` with `MaintenanceOptions::sequential()`")]
    pub fn delete_edges(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        edges: &[(VertexId, VertexId)],
    ) -> dspc_graph::Result<MaintenanceCounters> {
        self.delete_edges_with(g, index, edges, &MaintenanceOptions::sequential())
    }

    /// Multi-edge deletion with an explicit thread budget. Equivalent to
    /// [`WeightedDecSpc::delete_edges_with`] with
    /// [`MaintenanceOptions::with_threads`].
    #[deprecated(note = "use `delete_edges_with` with `MaintenanceOptions::with_threads(..)`")]
    pub fn delete_edges_with_threads(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        edges: &[(VertexId, VertexId)],
        threads: usize,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        self.delete_edges_with(
            g,
            index,
            edges,
            &MaintenanceOptions::with_threads(MaintenanceThreads::Fixed(threads)),
        )
    }

    /// Multi-edge `SrrSEARCH` repair (the batch generalization of the
    /// weighted deletion): deletes every edge of `edges` from `g` and
    /// repairs `index` with one rank-pruned Dijkstra per distinct affected
    /// hub, instead of one per edge per hub.
    ///
    /// Classification runs on the group-pre graph with each edge's
    /// pre-deletion weight as the affected-condition length. Under the
    /// default [`ClassifyMode::MultiFar`] it costs one
    /// [`UpdateEngine::multi_far_pass`] Dijkstra per *distinct endpoint*
    /// of the set, with per-far count columns summed per shared far
    /// endpoint — fixing the mixed-frontier condition-**B** undercount
    /// when several doomed edges share a far endpoint. The repair sweeps
    /// then run against the residual graph with the whole set absent.
    ///
    /// A thread budget above 1 classifies endpoint tasks in parallel and
    /// runs the rank-pruned repair Dijkstras as rank-independent waves on
    /// a persistent worker pool. Deterministic at every thread count.
    ///
    /// All edges are validated present (and pairwise distinct) before the
    /// first mutation.
    pub fn delete_edges_with(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        edges: &[(VertexId, VertexId)],
        options: &MaintenanceOptions,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        match edges {
            [] => return Ok(MaintenanceCounters::default()),
            &[(a, b)] => return self.delete_edge(g, index, a, b),
            _ => {}
        }
        let mut weights: Vec<Weight> = Vec::with_capacity(edges.len());
        let mut keys: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            let w = g
                .weight(a, b)
                .ok_or(dspc_graph::GraphError::MissingEdge(a, b))?;
            weights.push(w);
            keys.push(crate::engine::ordered_key(a, b));
        }
        if let Some((x, y)) = crate::engine::duplicate_edge_key(&mut keys) {
            return Err(dspc_graph::GraphError::MissingEdge(
                VertexId(x),
                VertexId(y),
            ));
        }
        self.engine.ensure_capacity(g.capacity());
        self.agenda.ensure_capacity(g.capacity());
        self.agg.ensure_capacity(g.capacity());
        let threads = options.threads.resolve();
        let mut stats = MaintenanceCounters::default();

        if threads <= 1 {
            match options.classify {
                ClassifyMode::PerEdge => {
                    for (&(a, b), &w) in edges.iter().zip(&weights) {
                        let (sr_a, r_a) = {
                            let mut topo = WeightedTopo::new(g, index, &mut self.probe);
                            self.engine
                                .srr_pass(&mut topo, a, b, w as WDist, &mut stats)
                        };
                        let (sr_b, r_b) = {
                            let mut topo = WeightedTopo::new(g, index, &mut self.probe);
                            self.engine
                                .srr_pass(&mut topo, b, a, w as WDist, &mut stats)
                        };
                        self.agenda
                            .note_side(&sr_a, &r_a, REPAIR_PRIMARY, |v| index.rank(v));
                        self.agenda
                            .note_side(&sr_b, &r_b, REPAIR_PRIMARY, |v| index.rank(v));
                    }
                }
                ClassifyMode::MultiFar => {
                    use crate::engine::FrozenWeighted;
                    let tasks = build_endpoint_tasks(
                        edges
                            .iter()
                            .zip(&weights)
                            .flat_map(|(&(a, b), &w)| [(a, b, w as WDist), (b, a, w as WDist)]),
                    );
                    let mut columns: Vec<FarColumn> = Vec::new();
                    {
                        let (g_ref, index_ref): (&WeightedGraph, &WeightedSpcIndex) = (g, index);
                        let engine = &mut self.engine;
                        let probes = &mut self.probes;
                        for task in &tasks {
                            while probes.len() < task.fars.len() {
                                probes.push(WHubProbe::new(g_ref.capacity()));
                            }
                            let mut views: Vec<FrozenWeighted> = probes[..task.fars.len()]
                                .iter_mut()
                                .map(|p| FrozenWeighted::new(g_ref, index_ref, p))
                                .collect();
                            columns.extend(
                                engine
                                    .multi_far_pass(&mut views, task.near, &task.fars, &mut stats),
                            );
                        }
                    }
                    aggregate_far_columns(
                        &mut self.agg,
                        &columns,
                        &mut self.agenda,
                        REPAIR_PRIMARY,
                        |v| index.rank(v),
                    );
                }
            }
            self.engine
                .set_marks([self.agenda.receivers(), &[]], [&[], &[]]);

            for &(a, b) in edges {
                g.delete_edge(a, b)?;
            }

            let hubs = self.agenda.take_hubs();
            stats.agenda_hubs += hubs.len();
            for (h_rank, _) in hubs {
                let h = index.vertex(h_rank);
                stats.hubs_processed += 1;
                let mut topo = WeightedTopo::new(g, index, &mut self.probe);
                self.engine.dec_pass(
                    &mut topo,
                    h,
                    MARK_A,
                    [self.agenda.receivers(), &[]],
                    &mut stats,
                );
            }

            self.engine.clear_marks();
        } else {
            self.delete_group_parallel(
                g,
                index,
                edges,
                &weights,
                threads,
                options.classify,
                &mut stats,
            )?;
        }
        self.agenda.clear();
        Ok(stats)
    }

    /// Wave-parallel twin of the sequential multi-edge body: the
    /// classification Dijkstras fan out over the group's endpoint tasks
    /// (read-only on the pre-mutation graph), then the deduplicated hub
    /// agenda runs as rank-independent waves of frozen repair Dijkstras
    /// on the residual graph, on a persistent worker pool.
    #[allow(clippy::too_many_arguments)]
    fn delete_group_parallel(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        edges: &[(VertexId, VertexId)],
        weights: &[Weight],
        threads: usize,
        classify: ClassifyMode,
        stats: &mut MaintenanceCounters,
    ) -> dspc_graph::Result<()> {
        use crate::engine::parallel::{
            agenda_components, frozen_dec_sweep, note_schedule, plan_waves, run_wave_pool,
            Buffered, Interference, LabelWriteLog, WorkerScratch,
        };
        use crate::engine::FrozenWeighted;
        use crate::weighted::WLabelEntry;

        let cap = g.capacity();

        match classify {
            ClassifyMode::PerEdge => {
                let items: Vec<(VertexId, VertexId, Weight)> = edges
                    .iter()
                    .zip(weights)
                    .map(|(&(a, b), &w)| (a, b, w))
                    .collect();
                let outcomes = {
                    let (g_ref, index_ref): (&WeightedGraph, &WeightedSpcIndex) = (g, index);
                    crate::parallel::fan_out(
                        &items,
                        threads,
                        || {
                            (
                                UpdateEngine::<WDist>::new(cap),
                                WHubProbe::new(cap),
                                LabelWriteLog::<WDist>::new(),
                            )
                        },
                        |(engine, probe, log), &(a, b, w)| {
                            let mut c = MaintenanceCounters::default();
                            let (sr_a, r_a) = {
                                let mut topo = Buffered::new(
                                    FrozenWeighted::new(g_ref, index_ref, probe),
                                    log,
                                );
                                engine.srr_pass(&mut topo, a, b, w as WDist, &mut c)
                            };
                            let (sr_b, r_b) = {
                                let mut topo = Buffered::new(
                                    FrozenWeighted::new(g_ref, index_ref, probe),
                                    log,
                                );
                                engine.srr_pass(&mut topo, b, a, w as WDist, &mut c)
                            };
                            debug_assert!(log.is_empty(), "classification never writes");
                            (sr_a, r_a, sr_b, r_b, c)
                        },
                    )
                };
                for (sr_a, r_a, sr_b, r_b, c) in &outcomes {
                    stats.absorb(c);
                    self.agenda
                        .note_side(sr_a, r_a, REPAIR_PRIMARY, |v| index.rank(v));
                    self.agenda
                        .note_side(sr_b, r_b, REPAIR_PRIMARY, |v| index.rank(v));
                }
            }
            ClassifyMode::MultiFar => {
                let tasks = build_endpoint_tasks(
                    edges
                        .iter()
                        .zip(weights)
                        .flat_map(|(&(a, b), &w)| [(a, b, w as WDist), (b, a, w as WDist)]),
                );
                let outcomes = {
                    let (g_ref, index_ref): (&WeightedGraph, &WeightedSpcIndex) = (g, index);
                    crate::parallel::fan_out(
                        &tasks,
                        threads,
                        || (UpdateEngine::<WDist>::new(cap), Vec::<WHubProbe>::new()),
                        |(engine, probes), task| {
                            while probes.len() < task.fars.len() {
                                probes.push(WHubProbe::new(cap));
                            }
                            let mut c = MaintenanceCounters::default();
                            let mut views: Vec<FrozenWeighted> = probes[..task.fars.len()]
                                .iter_mut()
                                .map(|p| FrozenWeighted::new(g_ref, index_ref, p))
                                .collect();
                            let cols =
                                engine.multi_far_pass(&mut views, task.near, &task.fars, &mut c);
                            (cols, c)
                        },
                    )
                };
                let mut columns: Vec<FarColumn> = Vec::new();
                for (cols, c) in outcomes {
                    stats.absorb(&c);
                    columns.extend(cols);
                }
                aggregate_far_columns(
                    &mut self.agg,
                    &columns,
                    &mut self.agenda,
                    REPAIR_PRIMARY,
                    |v| index.rank(v),
                );
            }
        }

        for &(a, b) in edges {
            g.delete_edge(a, b)?;
        }

        let hubs = self.agenda.take_hubs();
        stats.agenda_hubs += hubs.len();
        let receivers = self.agenda.receivers();
        let schedule = if hubs.len() < 2 {
            plan_waves(hubs.len(), |_, _| false)
        } else {
            let (comp, probes) = agenda_components(
                cap,
                hubs.iter()
                    .map(|&(r, _)| index.vertex(r))
                    .chain(receivers.iter().copied()),
                |v, f| {
                    for &(w, _) in g.neighbors(VertexId(v)) {
                        f(w);
                    }
                },
            );
            stats.interference_probes += probes;
            let inter = Interference::build(
                &comp,
                &hubs,
                receivers,
                |r| index.vertex(r),
                |v, f| {
                    for e in index.label_set(v).entries() {
                        f(e.hub);
                    }
                },
            );
            plan_waves(hubs.len(), |i, j| inter.conflicts(i, j))
        };
        note_schedule(stats, &schedule);
        let items: Vec<Rank> = hubs.iter().map(|&(r, _)| r).collect();
        let waves: Vec<&[usize]> = schedule.iter().collect();
        let g_ref: &WeightedGraph = g;
        let index_lock = std::sync::RwLock::new(&mut *index);
        let steals = run_wave_pool(
            threads,
            &items,
            &waves,
            || WorkerScratch::for_group(cap, receivers, WHubProbe::new(cap)),
            |scratch, &h_rank| {
                let guard = index_lock.read().unwrap();
                let index: &WeightedSpcIndex = &guard;
                frozen_dec_sweep(
                    &mut scratch.engine,
                    FrozenWeighted::new(g_ref, index, &mut scratch.probe),
                    index.vertex(h_rank),
                    receivers,
                )
            },
            |results| {
                let mut guard = index_lock.write().unwrap();
                for (mut log, c) in results {
                    stats.absorb(&c);
                    for (v, hub, op) in log.drain() {
                        match op {
                            Some((d, cnt)) => {
                                guard.label_set_mut(v).upsert(WLabelEntry::new(hub, d, cnt));
                            }
                            None => {
                                guard.label_set_mut(v).remove(hub);
                            }
                        }
                    }
                }
            },
        );
        stats.steal_events += steals;
        Ok(())
    }

    /// Deletes edge `(a, b)` and repairs the index. Returns the counters.
    pub fn delete_edge(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        let w = g
            .weight(a, b)
            .ok_or(dspc_graph::GraphError::MissingEdge(a, b))?;
        self.decremental(g, index, a, b, w, None)
    }

    /// Increases the weight of `(a, b)` to `new_w` and repairs the index.
    /// Returns the counters.
    pub fn increase_weight(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
        new_w: Weight,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        let w = g
            .weight(a, b)
            .ok_or(dspc_graph::GraphError::MissingEdge(a, b))?;
        assert!(
            new_w > w,
            "increase_weight requires a strictly larger weight"
        );
        self.decremental(g, index, a, b, w, Some(new_w))
    }

    /// Shared decremental procedure: phase 1 on the old graph (weight
    /// `old_w`), then the mutation (delete, or raise to `new_w`), then
    /// phase 2 on the new graph.
    fn decremental(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
        old_w: Weight,
        new_w: Option<Weight>,
    ) -> dspc_graph::Result<MaintenanceCounters> {
        self.engine.ensure_capacity(g.capacity());
        let mut stats = MaintenanceCounters::default();

        // Phase 1 — SrrSEARCH with the weighted affected condition
        // (`D[v] + old_w = sd_i(v, far)` replaces the hop condition).
        let (sr_a, r_a) = {
            let mut topo = WeightedTopo::new(g, index, &mut self.probe);
            self.engine
                .srr_pass(&mut topo, a, b, old_w as WDist, &mut stats)
        };
        let (sr_b, r_b) = {
            let mut topo = WeightedTopo::new(g, index, &mut self.probe);
            self.engine
                .srr_pass(&mut topo, b, a, old_w as WDist, &mut stats)
        };
        self.engine.set_marks([&sr_a, &r_a], [&sr_b, &r_b]);

        match new_w {
            None => {
                g.delete_edge(a, b)?;
            }
            Some(w) => {
                g.set_weight(a, b, w)?;
            }
        }

        let mut sr: Vec<(Rank, bool)> = sr_a
            .iter()
            .map(|&v| (index.rank(v), true))
            .chain(sr_b.iter().map(|&v| (index.rank(v), false)))
            .collect();
        sr.sort_unstable_by_key(|&(r, _)| r);
        for &(h_rank, from_a) in &sr {
            let h = index.vertex(h_rank);
            stats.hubs_processed += 1;
            let (mask, removal) = if from_a {
                (MARK_B, [&sr_b[..], &r_b[..]])
            } else {
                (MARK_A, [&sr_a[..], &r_a[..]])
            };
            let mut topo = WeightedTopo::new(g, index, &mut self.probe);
            self.engine
                .dec_pass(&mut topo, h, mask, removal, &mut stats);
        }

        self.engine.clear_marks();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderingStrategy;
    use crate::weighted::{weighted_spc_query, DynamicWeightedSpc};
    use dspc_graph::generators::random::{erdos_renyi_gnm, random_weights};
    use dspc_graph::traversal::dijkstra::DijkstraCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_oracle(g: &WeightedGraph, index: &WeightedSpcIndex) {
        let mut dj = DijkstraCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    weighted_spc_query(index, s, t).as_option(),
                    dj.count(g, s, t),
                    "pair ({s:?}, {t:?})"
                );
            }
        }
    }

    #[test]
    fn insert_edge_incremental() {
        let g = WeightedGraph::from_weighted_edges(4, &[(0, 1, 2), (1, 2, 2), (2, 3, 2)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((6, 1)));
        d.insert_edge(VertexId(0), VertexId(3), 6).unwrap();
        // Equal-length alternative: counts accumulate.
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((6, 2)));
        assert_matches_oracle(d.graph(), d.index());
        d.insert_edge(VertexId(0), VertexId(2), 1).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn decrease_weight_is_incremental() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 20)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 1)));
        d.set_weight(VertexId(0), VertexId(2), 10).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 2)));
        d.set_weight(VertexId(0), VertexId(2), 3).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn increase_weight_is_decremental() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 3)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((3, 1)));
        d.set_weight(VertexId(0), VertexId(2), 10).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 2)));
        assert_matches_oracle(d.graph(), d.index());
        d.set_weight(VertexId(0), VertexId(2), 50).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn delete_edge_decremental() {
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 1), (0, 3, 2)],
        );
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 3)));
        d.delete_edge(VertexId(0), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 2)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_edge(VertexId(1), VertexId(3)).unwrap();
        d.delete_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), None);
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn vertex_lifecycle_weighted() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 2), (1, 2, 3)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        let v = d.add_vertex();
        d.insert_edge(v, VertexId(0), 1).unwrap();
        d.insert_edge(v, VertexId(2), 1).unwrap();
        // Shortcut through the new vertex: 0 → v → 2 costs 2 < 5.
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((2, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_vertex(v).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((5, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.index().check_invariants().unwrap();
    }

    #[test]
    fn random_weighted_update_streams() {
        let mut rng = StdRng::seed_from_u64(2718);
        for trial in 0..4 {
            let base = erdos_renyi_gnm(20 + trial * 4, 55, &mut rng);
            let g = random_weights(&base, 5, &mut rng);
            let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
            for step in 0..20 {
                let roll: f64 = rng.gen();
                if roll < 0.35 || d.graph().num_edges() == 0 {
                    loop {
                        let a = rng.gen_range(0..d.graph().capacity() as u32);
                        let b = rng.gen_range(0..d.graph().capacity() as u32);
                        if a != b && !d.graph().has_edge(VertexId(a), VertexId(b)) {
                            d.insert_edge(VertexId(a), VertexId(b), rng.gen_range(1..=5))
                                .unwrap();
                            break;
                        }
                    }
                } else if roll < 0.6 {
                    let edges: Vec<_> = d.graph().edges().collect();
                    let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                    d.delete_edge(a, b).unwrap();
                } else {
                    let edges: Vec<_> = d.graph().edges().collect();
                    let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                    d.set_weight(a, b, rng.gen_range(1..=8)).unwrap();
                }
                if step % 5 == 4 {
                    assert_matches_oracle(d.graph(), d.index());
                    d.index().check_invariants().unwrap();
                }
            }
            assert_matches_oracle(d.graph(), d.index());
        }
    }
}
