//! Weighted IncSPC / DecSPC (Appendix C.2).
//!
//! * **Incremental** (`apply`): edge insertion, or weight decrease
//!   `w_ab → w'_ab`. For each hub `h ∈ L(a) ∪ L(b)` a partial Dijkstra
//!   starts across the edge with initial distance `d_{h,a} + w'_ab` and
//!   count `c_{h,a}`, renewing/inserting labels under the strict
//!   settle-time prune `query(h, v) < D[v]`.
//! * **Decremental** (`delete_edge` / `increase_weight`): the affected
//!   vertex condition becomes `sd_i(v, a) + w_ab = sd_i(v, b)` (weight, not
//!   hops). `SrrSEARCH` runs Dijkstra on the old graph; `DecUPDATE` runs
//!   rank-pruned Dijkstra from each `SR` hub on the new graph with
//!   `PreQUERY` pruning and the common-hub removal pass.

use super::{WHubProbe, WLabelEntry, WeightedSpcIndex};
use crate::label::{Count, Rank};
use dspc_graph::weighted::{WDist, Weight, WeightedGraph, WDIST_INF};
use dspc_graph::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const MARK_A: u8 = 1;
const MARK_B: u8 = 2;

/// Shared Dijkstra workspace.
#[derive(Debug)]
struct Workspace {
    dist: Vec<WDist>,
    count: Vec<Count>,
    settled: Vec<bool>,
    heap: BinaryHeap<Reverse<(WDist, u32)>>,
    touched: Vec<u32>,
}

impl Workspace {
    fn new(capacity: usize) -> Self {
        Workspace {
            dist: vec![WDIST_INF; capacity],
            count: vec![0; capacity],
            settled: vec![false; capacity],
            heap: BinaryHeap::new(),
            touched: Vec::new(),
        }
    }

    fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, WDIST_INF);
            self.count.resize(capacity, 0);
            self.settled.resize(capacity, false);
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = WDIST_INF;
            self.count[v as usize] = 0;
            self.settled[v as usize] = false;
        }
        self.touched.clear();
        self.heap.clear();
    }

    fn seed(&mut self, v: VertexId, d: WDist, c: Count) {
        self.dist[v.index()] = d;
        self.count[v.index()] = c;
        self.touched.push(v.0);
        self.heap.push(Reverse((d, v.0)));
    }

    /// Relaxes `(w, weight)` from settled `v`; respects rank pruning via
    /// the `allow` predicate.
    fn relax<F: Fn(u32) -> bool>(&mut self, v: u32, w: u32, wt: Weight, allow: &F) {
        if !allow(w) {
            return;
        }
        let nd = self.dist[v as usize] + wt as WDist;
        let dw = self.dist[w as usize];
        if nd < dw {
            if dw == WDIST_INF {
                self.touched.push(w);
            }
            self.dist[w as usize] = nd;
            self.count[w as usize] = self.count[v as usize];
            self.heap.push(Reverse((nd, w)));
        } else if nd == dw {
            self.count[w as usize] =
                self.count[w as usize].saturating_add(self.count[v as usize]);
        }
    }
}

/// Weighted incremental engine.
#[derive(Debug)]
pub struct WeightedIncSpc {
    ws: Workspace,
    probe: WHubProbe,
}

impl WeightedIncSpc {
    /// Creates an engine.
    pub fn new(capacity: usize) -> Self {
        WeightedIncSpc {
            ws: Workspace::new(capacity),
            probe: WHubProbe::new(capacity),
        }
    }

    /// Repairs `index` after edge `(a, b)` was inserted with weight `w`, or
    /// after its weight *decreased* to `w`. `g` must already reflect the
    /// change.
    pub fn apply(
        &mut self,
        g: &WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
        w: Weight,
    ) {
        debug_assert_eq!(g.weight(a, b), Some(w));
        self.ws.ensure_capacity(g.capacity());
        self.probe.ensure_capacity(index.ranks().len());
        let mut aff: Vec<(Rank, bool, bool)> = Vec::new();
        {
            let la = index.label_set(a).entries();
            let lb = index.label_set(b).entries();
            let (mut i, mut j) = (0usize, 0usize);
            while i < la.len() || j < lb.len() {
                match (la.get(i), lb.get(j)) {
                    (Some(x), Some(y)) if x.hub == y.hub => {
                        aff.push((x.hub, true, true));
                        i += 1;
                        j += 1;
                    }
                    (Some(x), Some(y)) if x.hub < y.hub => {
                        aff.push((x.hub, true, false));
                        i += 1;
                    }
                    (Some(_), Some(y)) => {
                        aff.push((y.hub, false, true));
                        j += 1;
                    }
                    (Some(x), None) => {
                        aff.push((x.hub, true, false));
                        i += 1;
                    }
                    (None, Some(y)) => {
                        aff.push((y.hub, false, true));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        let (rank_a, rank_b) = (index.rank(a), index.rank(b));
        for (h_rank, in_a, in_b) in aff {
            let h = index.vertex(h_rank);
            if in_a && h_rank <= rank_b {
                self.inc_update(g, index, h, a, b, w);
            }
            if in_b && h_rank <= rank_a {
                self.inc_update(g, index, h, b, a, w);
            }
        }
    }

    fn inc_update(
        &mut self,
        g: &WeightedGraph,
        index: &mut WeightedSpcIndex,
        h: VertexId,
        va: VertexId,
        vb: VertexId,
        w: Weight,
    ) {
        let h_rank = index.rank(h);
        let Some(seed) = index.label_set(va).get(h_rank).copied() else {
            return;
        };
        self.ws.reset();
        self.probe.load(index, h);
        self.ws.seed(vb, seed.dist + w as WDist, seed.count);
        while let Some(Reverse((d, v))) = self.ws.heap.pop() {
            if self.ws.settled[v as usize] {
                continue;
            }
            self.ws.settled[v as usize] = true;
            let q = self
                .probe
                .query_limited(index.label_set(VertexId(v)), None);
            if q.dist < d {
                continue;
            }
            let cv = self.ws.count[v as usize];
            let ls = index.label_set_mut(VertexId(v));
            match ls.get(h_rank).copied() {
                Some(existing) if existing.dist == d => {
                    ls.upsert(WLabelEntry::new(
                        h_rank,
                        d,
                        cv.saturating_add(existing.count),
                    ));
                }
                _ => {
                    ls.upsert(WLabelEntry::new(h_rank, d, cv));
                }
            }
            let ranks = index.ranks();
            let allow = |w: u32| ranks.rank(VertexId(w)) > h_rank;
            let neighbors: Vec<(u32, Weight)> = g.neighbors(VertexId(v)).to_vec();
            for (nb, wt) in neighbors {
                self.ws.relax(v, nb, wt, &allow);
            }
        }
    }
}

/// Weighted decremental engine.
#[derive(Debug)]
pub struct WeightedDecSpc {
    ws: Workspace,
    probe: WHubProbe,
    marks: Vec<u8>,
    marked: Vec<u32>,
    updated: Vec<bool>,
}

impl WeightedDecSpc {
    /// Creates an engine.
    pub fn new(capacity: usize) -> Self {
        WeightedDecSpc {
            ws: Workspace::new(capacity),
            probe: WHubProbe::new(capacity),
            marks: vec![0; capacity],
            marked: Vec::new(),
            updated: vec![false; capacity],
        }
    }

    fn ensure_capacity(&mut self, capacity: usize) {
        self.ws.ensure_capacity(capacity);
        self.probe.ensure_capacity(capacity);
        if self.marks.len() < capacity {
            self.marks.resize(capacity, 0);
            self.updated.resize(capacity, false);
        }
    }

    /// Deletes edge `(a, b)` and repairs the index.
    pub fn delete_edge(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
    ) -> dspc_graph::Result<()> {
        let w = g
            .weight(a, b)
            .ok_or(dspc_graph::GraphError::MissingEdge(a, b))?;
        self.decremental(g, index, a, b, w, None)
    }

    /// Increases the weight of `(a, b)` to `new_w` and repairs the index.
    pub fn increase_weight(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
        new_w: Weight,
    ) -> dspc_graph::Result<()> {
        let w = g
            .weight(a, b)
            .ok_or(dspc_graph::GraphError::MissingEdge(a, b))?;
        assert!(new_w > w, "increase_weight requires a strictly larger weight");
        self.decremental(g, index, a, b, w, Some(new_w))
    }

    /// Shared decremental procedure: phase 1 on the old graph (weight
    /// `old_w`), then the mutation (delete, or raise to `new_w`), then
    /// phase 2 on the new graph.
    fn decremental(
        &mut self,
        g: &mut WeightedGraph,
        index: &mut WeightedSpcIndex,
        a: VertexId,
        b: VertexId,
        old_w: Weight,
        new_w: Option<Weight>,
    ) -> dspc_graph::Result<()> {
        self.ensure_capacity(g.capacity());

        // Phase 1 — SrrSEARCH with the weighted affected condition.
        let (sr_a, r_a) = self.srr_side(g, index, a, b, old_w);
        let (sr_b, r_b) = self.srr_side(g, index, b, a, old_w);
        for v in sr_a.iter().chain(&r_a) {
            if self.marks[v.index()] == 0 {
                self.marked.push(v.0);
            }
            self.marks[v.index()] |= MARK_A;
        }
        for v in sr_b.iter().chain(&r_b) {
            if self.marks[v.index()] == 0 {
                self.marked.push(v.0);
            }
            self.marks[v.index()] |= MARK_B;
        }

        match new_w {
            None => {
                g.delete_edge(a, b)?;
            }
            Some(w) => {
                g.set_weight(a, b, w)?;
            }
        }

        let common_hub = |index: &WeightedSpcIndex, r: Rank| {
            index.label_set(a).contains(r) && index.label_set(b).contains(r)
        };
        let mut sr: Vec<(Rank, bool)> = sr_a
            .iter()
            .map(|&v| (index.rank(v), true))
            .chain(sr_b.iter().map(|&v| (index.rank(v), false)))
            .collect();
        sr.sort_unstable_by_key(|&(r, _)| r);
        for &(h_rank, from_a) in &sr {
            let h = index.vertex(h_rank);
            let h_ab = common_hub(index, h_rank);
            let (mask, removal): (u8, Vec<VertexId>) = if from_a {
                (MARK_B, sr_b.iter().chain(&r_b).copied().collect())
            } else {
                (MARK_A, sr_a.iter().chain(&r_a).copied().collect())
            };
            self.dec_update(g, index, h, mask, h_ab, removal);
        }

        for &v in &self.marked {
            self.marks[v as usize] = 0;
        }
        self.marked.clear();
        Ok(())
    }

    /// One side of the weighted `SrrSEARCH`: Dijkstra from `near` on the
    /// old graph, pruning where `D[v] + old_w ≠ sd_i(v, far)`.
    fn srr_side(
        &mut self,
        g: &WeightedGraph,
        index: &WeightedSpcIndex,
        near: VertexId,
        far: VertexId,
        old_w: Weight,
    ) -> (Vec<VertexId>, Vec<VertexId>) {
        let mut sr = Vec::new();
        let mut r = Vec::new();
        self.ws.reset();
        self.probe.load(index, far);
        self.ws.seed(near, 0, 1);
        let (near_rank, far_rank) = (index.rank(near), index.rank(far));
        while let Some(Reverse((d, v))) = self.ws.heap.pop() {
            if self.ws.settled[v as usize] {
                continue;
            }
            self.ws.settled[v as usize] = true;
            let q = self
                .probe
                .query_limited(index.label_set(VertexId(v)), None);
            if q.dist == WDIST_INF || d + old_w as WDist != q.dist {
                continue;
            }
            let vr = index.rank(VertexId(v));
            let cond_a = (vr <= near_rank && vr <= far_rank)
                && index.label_set(near).contains(vr)
                && index.label_set(far).contains(vr);
            let cond_b = self.ws.count[v as usize] == q.count;
            if cond_a || cond_b {
                sr.push(VertexId(v));
            } else {
                r.push(VertexId(v));
            }
            let neighbors: Vec<(u32, Weight)> = g.neighbors(VertexId(v)).to_vec();
            for (nb, wt) in neighbors {
                self.ws.relax(v, nb, wt, &|_| true);
            }
        }
        (sr, r)
    }

    /// Weighted `DecUPDATE` for hub `h` on the post-mutation graph.
    fn dec_update(
        &mut self,
        g: &WeightedGraph,
        index: &mut WeightedSpcIndex,
        h: VertexId,
        opposite_mark: u8,
        h_ab: bool,
        removal_candidates: Vec<VertexId>,
    ) {
        let h_rank = index.rank(h);
        self.ws.reset();
        self.probe.load(index, h);
        self.ws.seed(h, 0, 1);
        let mut visited_marked: Vec<u32> = Vec::new();
        while let Some(Reverse((d, v))) = self.ws.heap.pop() {
            if self.ws.settled[v as usize] {
                continue;
            }
            self.ws.settled[v as usize] = true;
            let q = self
                .probe
                .query_limited(index.label_set(VertexId(v)), Some(h_rank));
            if q.dist < d {
                continue;
            }
            if self.marks[v as usize] & opposite_mark != 0 {
                let cv = self.ws.count[v as usize];
                let ls = index.label_set_mut(VertexId(v));
                match ls.get(h_rank).copied() {
                    Some(existing) if existing.dist == d && existing.count == cv => {}
                    _ => {
                        ls.upsert(WLabelEntry::new(h_rank, d, cv));
                    }
                }
                self.updated[v as usize] = true;
                visited_marked.push(v);
            }
            let ranks = index.ranks();
            let allow = |w: u32| ranks.rank(VertexId(w)) > h_rank;
            let neighbors: Vec<(u32, Weight)> = g.neighbors(VertexId(v)).to_vec();
            for (nb, wt) in neighbors {
                self.ws.relax(v, nb, wt, &allow);
            }
        }
        if h_ab {
            for u in removal_candidates {
                if !self.updated[u.index()] {
                    index.label_set_mut(u).remove(h_rank);
                }
            }
        }
        for v in visited_marked {
            self.updated[v as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderingStrategy;
    use crate::weighted::{weighted_spc_query, DynamicWeightedSpc};
    use dspc_graph::generators::random::{erdos_renyi_gnm, random_weights};
    use dspc_graph::traversal::dijkstra::DijkstraCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_oracle(g: &WeightedGraph, index: &WeightedSpcIndex) {
        let mut dj = DijkstraCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    weighted_spc_query(index, s, t).as_option(),
                    dj.count(g, s, t),
                    "pair ({s:?}, {t:?})"
                );
            }
        }
    }

    #[test]
    fn insert_edge_incremental() {
        let g = WeightedGraph::from_weighted_edges(4, &[(0, 1, 2), (1, 2, 2), (2, 3, 2)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((6, 1)));
        d.insert_edge(VertexId(0), VertexId(3), 6).unwrap();
        // Equal-length alternative: counts accumulate.
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((6, 2)));
        assert_matches_oracle(d.graph(), d.index());
        d.insert_edge(VertexId(0), VertexId(2), 1).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn decrease_weight_is_incremental() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 20)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 1)));
        d.set_weight(VertexId(0), VertexId(2), 10).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 2)));
        d.set_weight(VertexId(0), VertexId(2), 3).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((3, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn increase_weight_is_decremental() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 3)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((3, 1)));
        d.set_weight(VertexId(0), VertexId(2), 10).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 2)));
        assert_matches_oracle(d.graph(), d.index());
        d.set_weight(VertexId(0), VertexId(2), 50).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((10, 1)));
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn delete_edge_decremental() {
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 1), (0, 3, 2)],
        );
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 3)));
        d.delete_edge(VertexId(0), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), Some((2, 2)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_edge(VertexId(1), VertexId(3)).unwrap();
        d.delete_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(3)), None);
        assert_matches_oracle(d.graph(), d.index());
    }

    #[test]
    fn vertex_lifecycle_weighted() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 2), (1, 2, 3)]);
        let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
        let v = d.add_vertex();
        d.insert_edge(v, VertexId(0), 1).unwrap();
        d.insert_edge(v, VertexId(2), 1).unwrap();
        // Shortcut through the new vertex: 0 → v → 2 costs 2 < 5.
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((2, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.delete_vertex(v).unwrap();
        assert_eq!(d.query(VertexId(0), VertexId(2)), Some((5, 1)));
        assert_matches_oracle(d.graph(), d.index());
        d.index().check_invariants().unwrap();
    }

    #[test]
    fn random_weighted_update_streams() {
        let mut rng = StdRng::seed_from_u64(2718);
        for trial in 0..4 {
            let base = erdos_renyi_gnm(20 + trial * 4, 55, &mut rng);
            let g = random_weights(&base, 5, &mut rng);
            let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
            for step in 0..20 {
                let roll: f64 = rng.gen();
                if roll < 0.35 || d.graph().num_edges() == 0 {
                    loop {
                        let a = rng.gen_range(0..d.graph().capacity() as u32);
                        let b = rng.gen_range(0..d.graph().capacity() as u32);
                        if a != b && !d.graph().has_edge(VertexId(a), VertexId(b)) {
                            d.insert_edge(VertexId(a), VertexId(b), rng.gen_range(1..=5))
                                .unwrap();
                            break;
                        }
                    }
                } else if roll < 0.6 {
                    let edges: Vec<_> = d.graph().edges().collect();
                    let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                    d.delete_edge(a, b).unwrap();
                } else {
                    let edges: Vec<_> = d.graph().edges().collect();
                    let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                    d.set_weight(a, b, rng.gen_range(1..=8)).unwrap();
                }
                if step % 5 == 4 {
                    assert_matches_oracle(d.graph(), d.index());
                    d.index().check_invariants().unwrap();
                }
            }
            assert_matches_oracle(d.graph(), d.index());
        }
    }
}
