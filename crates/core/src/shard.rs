//! Shared-nothing sharding of flat snapshots, plus the epoch-stamped
//! snapshot wrapper the serving layer publishes.
//!
//! A [`crate::flat::FlatIndex`] is one contiguous CSR column set. For a
//! serving deployment that pins shards to cores (or ships them to separate
//! processes), [`ShardedFlatIndex`] splits the same columns by **vertex
//! range**: shard `i` owns the label slices of vertices
//! `bounds[i] .. bounds[i + 1]`, stored in its own rebased CSR columns with
//! no pointers into any other shard. A query `SPC(s, t)` reads the slice of
//! `s` from `shard_of(s)` and the slice of `t` from `shard_of(t)` and runs
//! the exact same two-phase merge kernel as the unsharded snapshot — so
//! answers (and the kernel's deterministic `merge_steps`) are
//! **bit-identical** to [`crate::flat::FlatIndex`], which is itself
//! bit-identical to the live label sets. The test suite
//! (`tests/shard_equivalence.rs`) enforces the whole chain.
//!
//! [`EpochSnapshot`] stamps any snapshot with the epoch that froze it. The
//! serving layer (`dspc-serve`) publishes `Arc<EpochSnapshot<_>>` values at
//! epoch boundaries; the stamp is what lets a concurrent test harness check
//! every answer against the exact epoch the reader observed.

use crate::flat::{
    accumulate_phase, compare_phase, FlatColumns, FlatIndex, FlatScratch, KernelCounters,
};
use crate::label::{Count, Rank};
use crate::order::RankMap;
use crate::query::QueryResult;
use dspc_graph::VertexId;

/// Evenly spaced shard boundaries over an `n`-vertex id space: `shards + 1`
/// non-decreasing values from `0` to `n`, ranges differing in size by at
/// most one vertex.
pub fn even_bounds(n: usize, shards: usize) -> Vec<u32> {
    let shards = shards.max(1);
    let base = n / shards;
    let extra = n % shards;
    let mut bounds = Vec::with_capacity(shards + 1);
    let mut at = 0usize;
    bounds.push(0);
    for i in 0..shards {
        at += base + usize::from(i < extra);
        bounds.push(at as u32);
    }
    bounds
}

/// A [`FlatIndex`] split into shared-nothing vertex-range shards.
///
/// Each shard holds its own rebased CSR columns; nothing is shared between
/// shards except the global rank map (needed for `PreQUERY` limits).
/// Queries spanning two shards read one slice from each — the merge kernel
/// itself is oblivious to sharding, so results are bit-identical to the
/// unsharded snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedFlatIndex {
    shards: Vec<FlatColumns<u32>>,
    bounds: Vec<u32>,
    ranks: RankMap,
}

impl ShardedFlatIndex {
    /// Splits `flat` into `shards` evenly sized vertex ranges.
    pub fn from_flat(flat: &FlatIndex, shards: usize) -> Self {
        Self::with_bounds(flat, &even_bounds(flat.num_vertices(), shards))
            .expect("even bounds are always valid")
    }

    /// Splits `flat` at explicit `bounds` (`bounds[0] = 0`, non-decreasing,
    /// last element = vertex count) — uneven ranges and empty shards are
    /// allowed. Errors on malformed bounds.
    pub fn with_bounds(flat: &FlatIndex, bounds: &[u32]) -> Result<Self, &'static str> {
        let n = flat.num_vertices();
        if bounds.len() < 2 {
            return Err("bounds need at least two entries");
        }
        if bounds[0] != 0 {
            return Err("bounds must start at 0");
        }
        if bounds.windows(2).any(|w| w[0] > w[1]) {
            return Err("bounds must be non-decreasing");
        }
        if *bounds.last().unwrap() as usize != n {
            return Err("bounds must end at the vertex count");
        }
        let cols = flat.columns();
        let (offsets, hubs, dists, counts) =
            (cols.offsets(), cols.hubs(), cols.dists(), cols.counts());
        let shards = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0] as usize, w[1] as usize);
                let base = offsets[lo];
                let local_offsets: Vec<u32> = offsets[lo..=hi].iter().map(|&o| o - base).collect();
                let (elo, ehi) = (offsets[lo] as usize, offsets[hi] as usize);
                FlatColumns::from_raw(
                    local_offsets,
                    hubs[elo..ehi].to_vec(),
                    dists[elo..ehi].to_vec(),
                    counts[elo..ehi].to_vec(),
                )
                .expect("rebased columns keep CSR shape")
            })
            .collect();
        Ok(ShardedFlatIndex {
            shards,
            bounds: bounds.to_vec(),
            ranks: flat.ranks().clone(),
        })
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices covered (all shards together).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        *self.bounds.last().unwrap() as usize
    }

    /// Total label entries across all shards.
    pub fn num_entries(&self) -> usize {
        self.shards.iter().map(|s| s.hubs().len()).sum()
    }

    /// The shard boundaries (`num_shards() + 1` values, first 0, last
    /// `num_vertices()`).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// The vertex total order (global — shared by every shard).
    #[inline]
    pub fn ranks(&self) -> &RankMap {
        &self.ranks
    }

    /// Rank of `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.ranks.rank(v)
    }

    /// Which shard owns vertex `v`'s label slice.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        debug_assert!((v.0 as usize) < self.num_vertices());
        self.bounds.partition_point(|&b| b <= v.0) - 1
    }

    /// Label entries held by shard `i`.
    pub fn shard_entries(&self, i: usize) -> usize {
        self.shards[i].hubs().len()
    }

    /// The three column slices of vertex `v`, read from its owning shard.
    #[inline]
    fn slice(&self, v: VertexId) -> (&[u32], &[u32], &[Count]) {
        let shard = self.shard_of(v);
        self.shards[shard].slice((v.0 - self.bounds[shard]) as usize)
    }

    #[inline]
    fn merge<const LIMITED: bool, const COUNTED: bool>(
        &self,
        s: VertexId,
        t: VertexId,
        limit: u32,
        scratch: &mut FlatScratch,
        counters: &mut KernelCounters,
    ) -> QueryResult {
        let (ha, da, ca) = self.slice(s);
        let (hb, db, cb) = self.slice(t);
        compare_phase::<LIMITED, COUNTED>(ha, hb, limit, &mut scratch.pairs, counters);
        let (dist, count) = accumulate_phase(da, ca, db, cb, &scratch.pairs);
        QueryResult { dist, count }
    }

    /// `SpcQUERY(s, t)` against the sharded snapshot. Allocates a transient
    /// scratch; batch callers should prefer [`ShardedFlatIndex::query_with`].
    pub fn query(&self, s: VertexId, t: VertexId) -> QueryResult {
        self.query_with(&mut FlatScratch::new(), s, t)
    }

    /// `SpcQUERY(s, t)` reusing `scratch` across calls.
    #[inline]
    pub fn query_with(&self, scratch: &mut FlatScratch, s: VertexId, t: VertexId) -> QueryResult {
        let mut sink = KernelCounters::new();
        self.merge::<false, false>(s, t, 0, scratch, &mut sink)
    }

    /// `PreQUERY(s, t)`: only hubs ranked strictly above `rank(s)`
    /// participate, matching [`crate::query::pre_query`].
    pub fn pre_query(&self, s: VertexId, t: VertexId) -> QueryResult {
        self.pre_query_with(&mut FlatScratch::new(), s, t)
    }

    /// [`ShardedFlatIndex::pre_query`] reusing `scratch`.
    #[inline]
    pub fn pre_query_with(
        &self,
        scratch: &mut FlatScratch,
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        let mut sink = KernelCounters::new();
        let limit = self.ranks.rank(s).0;
        self.merge::<true, false>(s, t, limit, scratch, &mut sink)
    }

    /// Counted [`ShardedFlatIndex::query_with`]: kernel work units are
    /// attributed to the shard owning `s` — `per_shard` must hold one
    /// counter per shard. This is the serving layer's per-shard
    /// `merge_steps` accounting.
    pub fn query_counted(
        &self,
        scratch: &mut FlatScratch,
        per_shard: &mut [KernelCounters],
        s: VertexId,
        t: VertexId,
    ) -> QueryResult {
        assert_eq!(per_shard.len(), self.num_shards(), "one counter per shard");
        self.merge::<false, true>(s, t, 0, scratch, &mut per_shard[self.shard_of(s)])
    }
}

impl crate::parallel::QueryEngine for ShardedFlatIndex {
    type Scratch = FlatScratch;

    fn make_scratch(&self) -> Self::Scratch {
        FlatScratch::new()
    }

    #[inline]
    fn query_one(&self, scratch: &mut Self::Scratch, s: VertexId, t: VertexId) -> QueryResult {
        self.query_with(scratch, s, t)
    }
}

/// A snapshot stamped with the epoch that froze it.
///
/// The serving layer publishes one of these per epoch boundary; readers
/// answer queries from whichever stamped snapshot they currently hold, so
/// every answer names the exact index state it was computed against.
#[derive(Clone, Debug)]
pub struct EpochSnapshot<S> {
    epoch: u64,
    index: S,
}

impl<S> EpochSnapshot<S> {
    /// Wraps `index` as the snapshot of `epoch`.
    pub fn new(epoch: u64, index: S) -> Self {
        EpochSnapshot { epoch, index }
    }

    /// The epoch this snapshot was frozen at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen index.
    #[inline]
    pub fn index(&self) -> &S {
        &self.index
    }

    /// Unwraps.
    pub fn into_inner(self) -> S {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::order::OrderingStrategy;
    use crate::query::{pre_query, spc_query};
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn even_bounds_cover_and_balance() {
        assert_eq!(even_bounds(10, 4), vec![0, 3, 6, 8, 10]);
        assert_eq!(even_bounds(3, 7), vec![0, 1, 2, 3, 3, 3, 3, 3]);
        assert_eq!(even_bounds(0, 2), vec![0, 0, 0]);
        assert_eq!(even_bounds(5, 1), vec![0, 5]);
    }

    #[test]
    fn sharded_matches_unsharded_and_live() {
        let g = barabasi_albert(120, 3, &mut StdRng::seed_from_u64(7));
        let idx = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&idx);
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedFlatIndex::from_flat(&flat, shards);
            assert_eq!(sharded.num_shards(), shards);
            assert_eq!(sharded.num_entries(), flat.num_entries());
            let mut scratch = FlatScratch::new();
            for s in 0..120u32 {
                for t in (0..120u32).step_by(7) {
                    let (s, t) = (VertexId(s), VertexId(t));
                    assert_eq!(
                        sharded.query_with(&mut scratch, s, t),
                        spc_query(&idx, s, t)
                    );
                    assert_eq!(
                        sharded.pre_query_with(&mut scratch, s, t),
                        pre_query(&idx, s, t)
                    );
                }
            }
        }
    }

    #[test]
    fn per_shard_counters_attribute_to_source_shard() {
        let g = barabasi_albert(40, 2, &mut StdRng::seed_from_u64(3));
        let idx = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&idx);
        let sharded = ShardedFlatIndex::from_flat(&flat, 4);
        let mut per_shard = vec![KernelCounters::new(); 4];
        let mut scratch = FlatScratch::new();
        // Queries sourced at vertex 0 land in shard 0's counters only.
        for t in 0..40u32 {
            sharded.query_counted(&mut scratch, &mut per_shard, VertexId(0), VertexId(t));
        }
        assert_eq!(per_shard[0].queries, 40);
        assert!(per_shard[1..].iter().all(|c| c.queries == 0));
        // Summed per-shard work equals the unsharded counted kernel's.
        let mut flat_c = KernelCounters::new();
        for t in 0..40u32 {
            flat.query_counted(&mut scratch, &mut flat_c, VertexId(0), VertexId(t));
        }
        assert_eq!(per_shard[0], flat_c);
    }

    #[test]
    fn uneven_and_empty_shards() {
        let g = barabasi_albert(30, 2, &mut StdRng::seed_from_u64(5));
        let idx = build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&idx);
        // Lopsided split with an empty middle shard.
        let sharded = ShardedFlatIndex::with_bounds(&flat, &[0, 1, 1, 29, 30]).unwrap();
        assert_eq!(sharded.shard_entries(1), 0);
        assert_eq!(sharded.shard_of(VertexId(0)), 0);
        assert_eq!(sharded.shard_of(VertexId(1)), 2);
        assert_eq!(sharded.shard_of(VertexId(29)), 3);
        for s in 0..30u32 {
            for t in 0..30u32 {
                let (s, t) = (VertexId(s), VertexId(t));
                assert_eq!(sharded.query(s, t), flat.query(s, t));
            }
        }
        // Malformed bounds are rejected.
        assert!(ShardedFlatIndex::with_bounds(&flat, &[0, 31]).is_err());
        assert!(ShardedFlatIndex::with_bounds(&flat, &[1, 30]).is_err());
        assert!(ShardedFlatIndex::with_bounds(&flat, &[0, 20, 10, 30]).is_err());
        assert!(ShardedFlatIndex::with_bounds(&flat, &[0]).is_err());
    }

    #[test]
    fn epoch_snapshot_stamps() {
        let g = dspc_graph::UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let idx = build_index(&g, OrderingStrategy::Degree);
        let snap = EpochSnapshot::new(7, FlatIndex::freeze(&idx));
        assert_eq!(snap.epoch(), 7);
        assert_eq!(
            snap.index().query(VertexId(0), VertexId(2)).as_option(),
            Some((2, 1))
        );
        let back = snap.into_inner();
        assert_eq!(back.num_vertices(), 3);
    }
}
