//! Vertex orderings and the rank map.
//!
//! §2.2: "vertices with larger degrees are considered to lie on more
//! shortest paths and thus are ranked higher so that the later searches in
//! HP-SPC can be pruned earlier. The degree-based ordering … is adopted in
//! our work." Identity and random orderings are provided for the ablation
//! benchmark (they inflate the index, demonstrating why the paper's choice
//! matters).
//!
//! Ranks are **append-only**: a vertex added after construction receives the
//! next (lowest) rank. The paper's §6 discusses why re-ranking in place is
//! an open problem; [`crate::policy`] implements the lazy-rebuild mitigation
//! it suggests.
//!
//! ## Measuring order decay
//!
//! Because ranks are frozen at build time, churn makes a degree order
//! drift away from the degrees it was computed from, and a stale order
//! inflates every later label set (low-degree "hubs" prune nothing).
//! [`degree_order_staleness`] quantifies the drift as the fraction of
//! *adjacent rank pairs* that are inverted with respect to current
//! degrees — `0.0` for a fresh degree order, approaching the ~`0.5` of a
//! random permutation as the order decays. [`crate::policy`] uses it to
//! decide when a lazy rebuild pays for itself:
//!
//! ```
//! use dspc::order::{degree_order_staleness, OrderingStrategy, RankMap};
//! use dspc_graph::generators::classic::star_graph;
//! use dspc_graph::VertexId;
//!
//! let mut g = star_graph(5); // vertex 0 is the hub
//! let ranks = RankMap::build(&g, OrderingStrategy::Degree);
//! assert_eq!(degree_order_staleness(&g, &ranks), 0.0);
//!
//! // Rewire until leaf 1 out-degrees the old hub: the frozen order decays.
//! for v in 2..5 {
//!     g.insert_edge(VertexId(1), VertexId(v)).unwrap();
//! }
//! g.delete_edge(VertexId(0), VertexId(2)).unwrap();
//! g.delete_edge(VertexId(0), VertexId(3)).unwrap();
//! assert!(degree_order_staleness(&g, &ranks) > 0.0);
//! ```

use crate::label::Rank;
use dspc_graph::{UndirectedGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Strategy for computing the initial total order over vertices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderingStrategy {
    /// Descending degree, ties broken by ascending vertex id — the paper's
    /// choice (and \[30\]'s).
    #[default]
    Degree,
    /// Ascending vertex id; baseline for the ordering ablation.
    Identity,
    /// Pseudo-random permutation from the given seed; worst-case baseline
    /// for the ordering ablation.
    Random(u64),
}

/// Bijection between vertex ids and rank positions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankMap {
    /// `rank_of[v]` = rank position of vertex id `v` (0 = highest).
    rank_of: Vec<u32>,
    /// `vertex_at[r]` = vertex id holding rank `r`.
    vertex_at: Vec<u32>,
    /// Strategy that produced the base order (before appends).
    strategy: OrderingStrategy,
}

impl RankMap {
    /// Computes the order of `g`'s id space under `strategy`.
    ///
    /// Deleted vertices still receive ranks (at the tail for `Degree`,
    /// since their degree is 0) — harmless, since nothing references them.
    pub fn build(g: &UndirectedGraph, strategy: OrderingStrategy) -> Self {
        let n = g.capacity();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        match strategy {
            OrderingStrategy::Degree => {
                ids.sort_by_key(|&v| (std::cmp::Reverse(g.degree(VertexId(v))), v));
            }
            OrderingStrategy::Identity => {}
            OrderingStrategy::Random(seed) => {
                // SplitMix64-keyed sort: deterministic, dependency-free.
                let key = |v: u32| -> u64 {
                    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15).wrapping_add(v as u64);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    z ^ (z >> 31)
                };
                ids.sort_by_key(|&v| (key(v), v));
            }
        }
        let mut rank_of = vec![0u32; n];
        for (r, &v) in ids.iter().enumerate() {
            rank_of[v as usize] = r as u32;
        }
        RankMap {
            rank_of,
            vertex_at: ids,
            strategy,
        }
    }

    /// Builds a map from an explicit rank order (`order[r]` = vertex id at
    /// rank `r`); must be a permutation of `0..order.len()`.
    pub fn from_rank_order(order: &[u32], strategy: OrderingStrategy) -> Self {
        let n = order.len();
        let mut rank_of = vec![u32::MAX; n];
        for (r, &v) in order.iter().enumerate() {
            assert!(
                (v as usize) < n && rank_of[v as usize] == u32::MAX,
                "not a permutation"
            );
            rank_of[v as usize] = r as u32;
        }
        RankMap {
            rank_of,
            vertex_at: order.to_vec(),
            strategy,
        }
    }

    /// Rank of vertex `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        Rank(self.rank_of[v.index()])
    }

    /// Vertex holding rank `r`.
    #[inline]
    pub fn vertex(&self, r: Rank) -> VertexId {
        VertexId(self.vertex_at[r.index()])
    }

    /// Size of the rank space (== graph id capacity at last sync).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertex_at.len()
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertex_at.is_empty()
    }

    /// Strategy used for the base order.
    #[inline]
    pub fn strategy(&self) -> OrderingStrategy {
        self.strategy
    }

    /// Appends a fresh vertex at the lowest rank; returns its rank.
    ///
    /// `v` must be the next unused id (graphs allocate ids densely).
    pub fn append_vertex(&mut self, v: VertexId) -> Rank {
        assert_eq!(
            v.index(),
            self.rank_of.len(),
            "append_vertex must receive the next dense id"
        );
        let r = Rank(self.vertex_at.len() as u32);
        self.rank_of.push(r.0);
        self.vertex_at.push(v.0);
        r
    }

    /// The paper's `v ≤ u` relation: does `a` rank at least as high as `b`?
    #[inline]
    pub fn ranks_at_least(&self, a: VertexId, b: VertexId) -> bool {
        self.rank_of[a.index()] <= self.rank_of[b.index()]
    }

    /// Swaps the vertices at ranks `r` and `r + 1` — the primitive
    /// [`crate::reorder`] repairs around. The map stays a bijection; only
    /// the two adjacent positions change.
    pub fn swap_adjacent(&mut self, r: Rank) {
        let hi = r.index();
        let lo = hi + 1;
        assert!(lo < self.vertex_at.len(), "swap_adjacent out of range");
        self.vertex_at.swap(hi, lo);
        self.rank_of[self.vertex_at[hi] as usize] = hi as u32;
        self.rank_of[self.vertex_at[lo] as usize] = lo as u32;
    }

    /// Validates the bijection.
    pub fn validate(&self) -> bool {
        self.rank_of.len() == self.vertex_at.len()
            && self
                .vertex_at
                .iter()
                .enumerate()
                .all(|(r, &v)| self.rank_of[v as usize] == r as u32)
    }
}

/// Measures how stale a degree-based order has become after updates:
/// the fraction of adjacent rank pairs that are inverted w.r.t. current
/// degrees. Drives [`crate::policy::MaintenancePolicy`].
pub fn degree_order_staleness(g: &UndirectedGraph, ranks: &RankMap) -> f64 {
    let n = ranks.len();
    if n < 2 {
        return 0.0;
    }
    let mut inversions = 0usize;
    let mut pairs = 0usize;
    for r in 0..n - 1 {
        let u = ranks.vertex(Rank(r as u32));
        let v = ranks.vertex(Rank(r as u32 + 1));
        if u.index() >= g.capacity() || v.index() >= g.capacity() {
            continue;
        }
        pairs += 1;
        if g.degree(u) < g.degree(v) {
            inversions += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        inversions as f64 / pairs as f64
    }
}

/// Enumerates the adjacent rank pairs currently inverted w.r.t. degree:
/// every `r` with `deg(vertex(r)) < deg(vertex(r + 1))`, together with the
/// degree gap. These are exactly the pairs [`degree_order_staleness`]
/// counts, and the candidate set [`plan_adjacent_swaps`] chooses from.
pub fn adjacent_inversions(g: &UndirectedGraph, ranks: &RankMap) -> Vec<(Rank, usize)> {
    let n = ranks.len();
    let mut out = Vec::new();
    for r in 0..n.saturating_sub(1) {
        let u = ranks.vertex(Rank(r as u32));
        let v = ranks.vertex(Rank(r as u32 + 1));
        if u.index() >= g.capacity() || v.index() >= g.capacity() {
            continue;
        }
        let (du, dv) = (g.degree(u), g.degree(v));
        if du < dv {
            out.push((Rank(r as u32), dv - du));
        }
    }
    out
}

/// Picks up to `budget` **non-overlapping** adjacent swaps, greedily by
/// largest degree gap (ties to the higher rank position). Non-overlap —
/// no two chosen positions differ by less than 2 — makes the swaps
/// mutually independent: each touches only its own pair of ranks, so a
/// batched repair can run them under one agenda. Returned sorted by rank.
pub fn plan_adjacent_swaps(g: &UndirectedGraph, ranks: &RankMap, budget: usize) -> Vec<Rank> {
    if budget == 0 {
        return Vec::new();
    }
    let mut candidates = adjacent_inversions(g, ranks);
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut chosen: Vec<Rank> = Vec::new();
    for (r, _) in candidates {
        if chosen.len() >= budget {
            break;
        }
        if chosen.iter().all(|&c| c.0.abs_diff(r.0) >= 2) {
            chosen.push(r);
        }
    }
    chosen.sort();
    chosen
}

/// Incremental twin of [`degree_order_staleness`]: caches the degree
/// sequence and the per-pair inversion flags so a policy check is O(1)
/// and an update refreshes only the ≤ 2 rank pairs each touched vertex
/// participates in — instead of walking all `n` pairs on every
/// `apply_batch` the way the one-shot function does.
///
/// The tracker reports **exactly** the same value as the one-shot scan as
/// long as it is told about every vertex whose degree may have changed
/// ([`StalenessTracker::note_vertex`]), every executed swap
/// ([`StalenessTracker::note_swap`]), and every rank-space growth
/// ([`StalenessTracker::sync`]); spurious notifications are harmless.
#[derive(Clone, Debug)]
pub struct StalenessTracker {
    /// Cached `degree(vertex)` by vertex id; 0 for ids outside the graph.
    degrees: Vec<usize>,
    /// `inverted[r]` = is the pair `(r, r + 1)` inverted? One slot per
    /// adjacent pair (`len = n - 1` for `n ≥ 1` ranks).
    inverted: Vec<bool>,
    /// Running count of `true` flags in `inverted`.
    inversions: usize,
}

impl StalenessTracker {
    /// Builds the tracker from the current graph + order (one full scan).
    pub fn new(g: &UndirectedGraph, ranks: &RankMap) -> Self {
        let mut t = StalenessTracker {
            degrees: Vec::new(),
            inverted: Vec::new(),
            inversions: 0,
        };
        t.rebuild(g, ranks);
        t
    }

    /// Re-seeds from scratch (after a full index rebuild with a new order).
    pub fn rebuild(&mut self, g: &UndirectedGraph, ranks: &RankMap) {
        let n = ranks.len();
        self.degrees.clear();
        self.degrees.extend((0..n).map(|v| {
            if v < g.capacity() {
                g.degree(VertexId(v as u32))
            } else {
                0
            }
        }));
        self.inverted.clear();
        self.inverted.resize(n.saturating_sub(1), false);
        self.inversions = 0;
        for r in 0..n.saturating_sub(1) {
            self.refresh_pair(ranks, r);
        }
    }

    /// Current staleness — same definition as [`degree_order_staleness`]:
    /// inverted adjacent pairs over total adjacent pairs.
    pub fn staleness(&self) -> f64 {
        if self.inverted.is_empty() {
            0.0
        } else {
            self.inversions as f64 / self.inverted.len() as f64
        }
    }

    /// Re-reads `degree(v)` from the graph and refreshes the two rank
    /// pairs `v` participates in. Call for every endpoint of an applied
    /// update (including former neighbors of a deleted vertex).
    pub fn note_vertex(&mut self, g: &UndirectedGraph, ranks: &RankMap, v: VertexId) {
        if v.index() >= self.degrees.len() {
            return; // not yet synced; `sync` will pick it up
        }
        let deg = if v.index() < g.capacity() {
            g.degree(v)
        } else {
            0
        };
        if self.degrees[v.index()] == deg {
            return;
        }
        self.degrees[v.index()] = deg;
        let r = ranks.rank(v).index();
        if r > 0 {
            self.refresh_pair(ranks, r - 1);
        }
        self.refresh_pair(ranks, r);
    }

    /// Refreshes the pairs around an executed adjacent swap at `r`
    /// (positions `r - 1`, `r`, `r + 1`): degrees are unchanged, but the
    /// occupants of the two positions traded places.
    pub fn note_swap(&mut self, ranks: &RankMap, r: Rank) {
        let r = r.index();
        if r > 0 {
            self.refresh_pair(ranks, r - 1);
        }
        self.refresh_pair(ranks, r);
        self.refresh_pair(ranks, r + 1);
    }

    /// Grows the tracker to cover ranks appended since the last call
    /// (vertex insertion extends the order at the tail).
    pub fn sync(&mut self, g: &UndirectedGraph, ranks: &RankMap) {
        let n = ranks.len();
        let old_n = self.degrees.len();
        if old_n == n {
            return;
        }
        for v in old_n..n {
            self.degrees.push(if v < g.capacity() {
                g.degree(VertexId(v as u32))
            } else {
                0
            });
        }
        self.inverted.resize(n.saturating_sub(1), false);
        // Appends extend the order at the tail: the affected pairs are the
        // one joining the old last rank to the first new one, plus every
        // pair among the new tail ranks.
        for r in old_n.saturating_sub(1)..n.saturating_sub(1) {
            self.refresh_pair(ranks, r);
        }
    }

    /// Recomputes the inversion flag of pair `(r, r + 1)` from cached
    /// degrees, adjusting the running count.
    fn refresh_pair(&mut self, ranks: &RankMap, r: usize) {
        if r >= self.inverted.len() {
            return;
        }
        let u = ranks.vertex(Rank(r as u32));
        let v = ranks.vertex(Rank(r as u32 + 1));
        let du = self.degrees.get(u.index()).copied().unwrap_or(0);
        let dv = self.degrees.get(v.index()).copied().unwrap_or(0);
        let now = du < dv;
        if now != self.inverted[r] {
            self.inverted[r] = now;
            if now {
                self.inversions += 1;
            } else {
                self.inversions -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspc_graph::generators::classic::star_graph;
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_order_puts_hub_first() {
        let g = star_graph(6);
        let rm = RankMap::build(&g, OrderingStrategy::Degree);
        assert_eq!(rm.rank(VertexId(0)), Rank(0));
        assert_eq!(rm.vertex(Rank(0)), VertexId(0));
        assert!(rm.validate());
        // Leaves tie-break by id.
        assert_eq!(rm.vertex(Rank(1)), VertexId(1));
        assert_eq!(rm.vertex(Rank(5)), VertexId(5));
    }

    #[test]
    fn identity_order() {
        let g = star_graph(4);
        let rm = RankMap::build(&g, OrderingStrategy::Identity);
        for v in 0..4 {
            assert_eq!(rm.rank(VertexId(v)), Rank(v));
        }
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let g = barabasi_albert(50, 2, &mut StdRng::seed_from_u64(1));
        let a = RankMap::build(&g, OrderingStrategy::Random(7));
        let b = RankMap::build(&g, OrderingStrategy::Random(7));
        let c = RankMap::build(&g, OrderingStrategy::Random(8));
        assert_eq!(a, b);
        assert_ne!(a.vertex_at, c.vertex_at);
        assert!(a.validate() && c.validate());
    }

    #[test]
    fn ranks_at_least_matches_paper_relation() {
        let g = star_graph(3);
        let rm = RankMap::build(&g, OrderingStrategy::Degree);
        // Center (0) ranks highest: 0 ≤ 1 and 0 ≤ 2.
        assert!(rm.ranks_at_least(VertexId(0), VertexId(1)));
        assert!(!rm.ranks_at_least(VertexId(2), VertexId(0)));
        assert!(rm.ranks_at_least(VertexId(1), VertexId(1)));
    }

    #[test]
    fn append_assigns_lowest_rank() {
        let mut g = star_graph(3);
        let mut rm = RankMap::build(&g, OrderingStrategy::Degree);
        let v = g.add_vertex();
        let r = rm.append_vertex(v);
        assert_eq!(r, Rank(3));
        assert_eq!(rm.vertex(r), v);
        assert!(rm.validate());
    }

    #[test]
    #[should_panic(expected = "next dense id")]
    fn append_rejects_gaps() {
        let g = star_graph(3);
        let mut rm = RankMap::build(&g, OrderingStrategy::Degree);
        rm.append_vertex(VertexId(10));
    }

    #[test]
    fn staleness_zero_on_fresh_degree_order() {
        let g = barabasi_albert(80, 2, &mut StdRng::seed_from_u64(3));
        let rm = RankMap::build(&g, OrderingStrategy::Degree);
        assert_eq!(degree_order_staleness(&g, &rm), 0.0);
    }

    #[test]
    fn staleness_rises_after_updates() {
        let mut g = star_graph(8);
        let rm = RankMap::build(&g, OrderingStrategy::Degree);
        // Make a leaf the new hub.
        for v in 2..8 {
            g.insert_edge(VertexId(1), VertexId(v)).unwrap();
        }
        g.delete_edge(VertexId(0), VertexId(2)).unwrap();
        g.delete_edge(VertexId(0), VertexId(3)).unwrap();
        assert!(degree_order_staleness(&g, &rm) > 0.0);
    }
}
