//! Directed dynamic graph — substrate for the Appendix C.1 extension.
//!
//! Stores both out- and in-adjacency so the directed SPC-Index can run
//! forward BFSs (populating `L_in` of reached vertices) and backward BFSs
//! (populating `L_out`) symmetrically.

use crate::{GraphError, Result, VertexId};

/// A directed, unweighted, simple dynamic graph with stable vertex ids.
#[derive(Clone, Debug, Default)]
pub struct DirectedGraph {
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    alive: Vec<bool>,
    n_alive: usize,
    m: usize,
}

impl DirectedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DirectedGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            alive: vec![true; n],
            n_alive: n,
            m: 0,
        }
    }

    /// Bulk-builds from arcs `(u, v)` meaning `u → v`. Duplicates and self
    /// loops are dropped.
    pub fn from_arcs(n: usize, arcs: &[(u32, u32)]) -> Self {
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for &(u, v) in arcs {
            if u == v {
                continue;
            }
            assert!(
                (u as usize) < n && (v as usize) < n,
                "arc endpoint out of range"
            );
            out_adj[u as usize].push(v);
            in_adj[v as usize].push(u);
        }
        let mut m = 0;
        for list in &mut out_adj {
            list.sort_unstable();
            list.dedup();
            m += list.len();
        }
        for list in &mut in_adj {
            list.sort_unstable();
            list.dedup();
        }
        DirectedGraph {
            out_adj,
            in_adj,
            alive: vec![true; n],
            n_alive: n,
            m,
        }
    }

    /// Total id space, including deleted vertices.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of alive vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n_alive
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.m
    }

    /// Whether `v` is a valid, alive vertex.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.alive.len() && self.alive[v.index()]
    }

    /// Adds a fresh isolated vertex.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from_index(self.out_adj.len());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.alive.push(true);
        self.n_alive += 1;
        id
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Sorted out-neighbors (`v → w`).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[u32] {
        &self.out_adj[v.index()]
    }

    /// Sorted in-neighbors (`w → v`).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[u32] {
        &self.in_adj[v.index()]
    }

    /// Whether arc `u → v` exists.
    #[inline]
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        if u.index() >= self.out_adj.len() || v.index() >= self.out_adj.len() {
            return false;
        }
        self.out_adj[u.index()].binary_search(&v.0).is_ok()
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if self.contains_vertex(v) {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(v))
        }
    }

    /// Inserts arc `u → v`.
    pub fn insert_arc(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos = match self.out_adj[u.index()].binary_search(&v.0) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u, v)),
            Err(p) => p,
        };
        self.out_adj[u.index()].insert(pos, v.0);
        let pos_in = self.in_adj[v.index()]
            .binary_search(&u.0)
            .expect_err("in/out adjacency out of sync");
        self.in_adj[v.index()].insert(pos_in, u.0);
        self.m += 1;
        Ok(())
    }

    /// Deletes arc `u → v`.
    pub fn delete_arc(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos = self.out_adj[u.index()]
            .binary_search(&v.0)
            .map_err(|_| GraphError::MissingEdge(u, v))?;
        self.out_adj[u.index()].remove(pos);
        let pos_in = self.in_adj[v.index()]
            .binary_search(&u.0)
            .expect("in/out adjacency out of sync");
        self.in_adj[v.index()].remove(pos_in);
        self.m -= 1;
        Ok(())
    }

    /// Deletes vertex `v` and all incident arcs. Returns `(in_neighbors,
    /// out_neighbors)` so callers can replay the arc deletions through the
    /// decremental index update.
    pub fn delete_vertex(&mut self, v: VertexId) -> Result<(Vec<VertexId>, Vec<VertexId>)> {
        self.check_vertex(v)?;
        let outs = std::mem::take(&mut self.out_adj[v.index()]);
        let ins = std::mem::take(&mut self.in_adj[v.index()]);
        for &w in &outs {
            let pos = self.in_adj[w as usize]
                .binary_search(&v.0)
                .expect("in/out adjacency out of sync");
            self.in_adj[w as usize].remove(pos);
        }
        for &w in &ins {
            let pos = self.out_adj[w as usize]
                .binary_search(&v.0)
                .expect("in/out adjacency out of sync");
            self.out_adj[w as usize].remove(pos);
        }
        self.m -= outs.len() + ins.len();
        self.alive[v.index()] = false;
        self.n_alive -= 1;
        Ok((
            ins.into_iter().map(VertexId).collect(),
            outs.into_iter().map(VertexId).collect(),
        ))
    }

    /// Iterates alive vertices in increasing id order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::from_index(i))
    }

    /// Iterates all arcs `(u, v)` meaning `u → v`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.out_adj.iter().enumerate().flat_map(|(u, list)| {
            list.iter()
                .map(move |&v| (VertexId::from_index(u), VertexId(v)))
        })
    }

    /// Structural validation: in/out symmetry, sortedness, arc count.
    pub fn validate(&self) -> Result<()> {
        let mut arcs = 0usize;
        for (u, list) in self.out_adj.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &v in list {
                if v as usize == u {
                    return Err(GraphError::SelfLoop(VertexId::from_index(u)));
                }
                if let Some(p) = prev {
                    if p >= v {
                        return Err(GraphError::Parse {
                            line: 0,
                            message: format!("out-adjacency of v{u} not sorted"),
                        });
                    }
                }
                prev = Some(v);
                if self.in_adj[v as usize].binary_search(&(u as u32)).is_err() {
                    return Err(GraphError::MissingEdge(
                        VertexId::from_index(u),
                        VertexId(v),
                    ));
                }
                arcs += 1;
            }
        }
        let in_count: usize = self.in_adj.iter().map(Vec::len).sum();
        if arcs != self.m || in_count != self.m {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "arc count mismatch: out={arcs}, in={in_count}, m={}",
                    self.m
                ),
            });
        }
        Ok(())
    }

    /// Builds the undirected symmetrization — the paper converts its directed
    /// datasets to undirected this way (§4.1.1).
    pub fn to_undirected(&self) -> crate::UndirectedGraph {
        let arcs: Vec<(u32, u32)> = self.arcs().map(|(u, v)| (u.0, v.0)).collect();
        crate::UndirectedGraph::from_edges(self.capacity(), &arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_arcs() {
        let mut g = DirectedGraph::with_vertices(3);
        g.insert_arc(VertexId(0), VertexId(1)).unwrap();
        g.insert_arc(VertexId(1), VertexId(2)).unwrap();
        assert!(g.has_arc(VertexId(0), VertexId(1)));
        assert!(!g.has_arc(VertexId(1), VertexId(0)));
        assert_eq!(g.out_degree(VertexId(1)), 1);
        assert_eq!(g.in_degree(VertexId(1)), 1);
        assert_eq!(g.num_arcs(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn asymmetric_pair_allowed() {
        let mut g = DirectedGraph::with_vertices(2);
        g.insert_arc(VertexId(0), VertexId(1)).unwrap();
        g.insert_arc(VertexId(1), VertexId(0)).unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert!(matches!(
            g.insert_arc(VertexId(0), VertexId(1)),
            Err(GraphError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn delete_arc() {
        let mut g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]);
        g.delete_arc(VertexId(1), VertexId(2)).unwrap();
        assert!(!g.has_arc(VertexId(1), VertexId(2)));
        assert_eq!(g.num_arcs(), 2);
        assert!(g.delete_arc(VertexId(1), VertexId(2)).is_err());
        g.validate().unwrap();
    }

    #[test]
    fn delete_vertex_returns_both_sides() {
        let mut g = DirectedGraph::from_arcs(4, &[(0, 1), (1, 2), (3, 1)]);
        let (ins, outs) = g.delete_vertex(VertexId(1)).unwrap();
        assert_eq!(ins, vec![VertexId(0), VertexId(3)]);
        assert_eq!(outs, vec![VertexId(2)]);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.num_vertices(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn from_arcs_dedups() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (0, 1), (1, 1), (2, 1)]);
        assert_eq!(g.num_arcs(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn to_undirected_symmetrizes() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 0), (1, 2)]);
        let u = g.to_undirected();
        assert_eq!(u.num_edges(), 2);
        assert!(u.has_edge(VertexId(1), VertexId(2)));
    }

    #[test]
    fn arcs_iterator() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(
            arcs,
            vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))]
        );
    }
}
