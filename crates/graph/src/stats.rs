//! Graph statistics — backing for the paper's Table 3 and the dataset
//! registry's sanity reports.

use crate::{UndirectedGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Connected-component decomposition result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `component[v]` is the component index of vertex `v` (undefined for
    /// deleted vertices).
    pub component: Vec<u32>,
    /// Number of components among alive vertices.
    pub num_components: usize,
    /// Size of the largest component.
    pub largest: usize,
}

/// Computes connected components over alive vertices with iterative BFS.
pub fn connected_components(g: &UndirectedGraph) -> Components {
    let cap = g.capacity();
    let mut component = vec![u32::MAX; cap];
    let mut num = 0u32;
    let mut largest = 0usize;
    let mut queue = VecDeque::new();
    for s in g.vertices() {
        if component[s.index()] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        component[s.index()] = num;
        queue.push_back(s.0);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &w in g.neighbors(VertexId(v)) {
                if component[w as usize] == u32::MAX {
                    component[w as usize] = num;
                    queue.push_back(w);
                }
            }
        }
        largest = largest.max(size);
        num += 1;
    }
    Components {
        component,
        num_components: num as usize,
        largest,
    }
}

/// Whether `s` and `t` are connected.
pub fn connected(g: &UndirectedGraph, s: VertexId, t: VertexId) -> bool {
    if s == t {
        return true;
    }
    let comps = connected_components(g);
    comps.component[s.index()] == comps.component[t.index()]
}

/// Summary statistics in the shape of the paper's Table 3, extended with
/// degree and connectivity diagnostics.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct GraphStats {
    /// Number of vertices (paper's `n`).
    pub n: usize,
    /// Number of edges (paper's `m`).
    pub m: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Number of connected components.
    pub num_components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &UndirectedGraph) -> Self {
        let comps = connected_components(g);
        let n = g.num_vertices();
        GraphStats {
            n,
            m: g.num_edges(),
            max_degree: g.max_degree(),
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * g.num_edges() as f64 / n as f64
            },
            num_components: comps.num_components,
            largest_component: comps.largest,
        }
    }
}

/// Exact eccentricity-based diameter of the largest component — exponential
/// in nothing but still `O(n·m)`; intended for the small graphs used in
/// tests and examples.
pub fn diameter(g: &UndirectedGraph) -> u32 {
    let mut best = 0u32;
    let mut dist = vec![u32::MAX; g.capacity()];
    let mut queue = VecDeque::new();
    for s in g.vertices() {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[s.index()] = 0;
        queue.clear();
        queue.push_back(s.0);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(VertexId(v)) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    best = best.max(dist[w as usize]);
                    queue.push_back(w);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = path_graph(6);
        g.delete_edge(VertexId(2), VertexId(3)).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 2);
        assert_eq!(c.largest, 3);
        assert!(connected(&g, VertexId(0), VertexId(2)));
        assert!(!connected(&g, VertexId(0), VertexId(3)));
    }

    #[test]
    fn components_skip_deleted_vertices() {
        let mut g = path_graph(5);
        g.delete_vertex(VertexId(2)).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 2);
    }

    #[test]
    fn stats_shape() {
        let g = star_graph(5);
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 4);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 1.6).abs() < 1e-9);
        assert_eq!(s.num_components, 1);
        assert_eq!(s.largest_component, 5);
    }

    #[test]
    fn diameter_of_classics() {
        assert_eq!(diameter(&path_graph(7)), 6);
        assert_eq!(diameter(&cycle_graph(8)), 4);
        assert_eq!(diameter(&complete_graph(5)), 1);
        assert_eq!(diameter(&grid_graph(3, 4)), 5);
    }

    #[test]
    fn empty_graph_stats() {
        let g = UndirectedGraph::new();
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(diameter(&g), 0);
    }
}
