//! Synthetic graph generators.
//!
//! The paper evaluates on ten web-scale SNAP/Konect/LAW graphs that cannot be
//! downloaded in this environment, so the benchmark harness substitutes
//! synthetic generators whose structural properties (scale-free degree skew,
//! small diameter, dense cores) drive the same algorithmic behaviour — see
//! DESIGN.md §3 for the substitution argument.
//!
//! Three families are provided:
//!
//! * [`classic`] — deterministic topologies (paths, cycles, stars, grids,
//!   complete graphs, trees) used heavily by unit and property tests,
//! * [`random`] — Erdős–Rényi, Barabási–Albert, Watts–Strogatz, and
//!   power-law configuration models used by the experiment harness,
//! * [`paper`] — the exact example graphs from the paper's figures, used as
//!   golden fixtures (Figure 2's graph `G` together with its published
//!   SPC-Index in Table 2).

pub mod classic;
pub mod paper;
pub mod random;

pub use classic::{
    complete_graph, cycle_graph, grid_graph, path_graph, star_graph, two_cliques_bridge,
};
pub use paper::{figure1_h, figure2_g, figure4_toy, figure5_chain};
pub use random::{
    barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, powerlaw_configuration, random_tree,
    random_weights, watts_strogatz,
};
