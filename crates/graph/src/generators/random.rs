//! Random graph models — synthetic stand-ins for the paper's datasets.
//!
//! All generators take an explicit `Rng` so experiments are reproducible
//! from a seed; the benchmark harness records the seed per dataset.

use crate::{UndirectedGraph, WeightedGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// Uses the skip-sampling technique (geometric jumps) so the cost is
/// `O(n + m)` rather than `O(n²)` for sparse graphs.
pub fn erdos_renyi_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> UndirectedGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p <= 0.0 || n < 2 {
        return UndirectedGraph::with_vertices(n);
    }
    if p >= 1.0 {
        return super::classic::complete_graph(n);
    }
    let mut edges = Vec::new();
    let lp = (1.0 - p).ln();
    // Iterate pairs (v, w) with w < v in lexicographic order, skipping
    // geometrically many non-edges at a time (Batagelj–Brandes).
    let (mut v, mut w) = (1i64, -1i64);
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / lp).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            edges.push((w as u32, v as u32));
        }
    }
    UndirectedGraph::from_edges(n as usize, &edges)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges sampled uniformly.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> UndirectedGraph {
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(m <= max_m, "too many edges requested");
    let mut g = UndirectedGraph::with_vertices(n);
    let mut inserted = 0;
    while inserted < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        if g.insert_edge(crate::VertexId(u), crate::VertexId(v))
            .is_ok()
        {
            inserted += 1;
        }
    }
    g
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices with probability proportional to degree.
///
/// This is the primary stand-in for the paper's scale-free web/social
/// graphs: it produces the heavy-tailed degree distribution and small
/// diameter that make degree-ordered hub labeling effective.
pub fn barabasi_albert<R: Rng>(n: usize, m_attach: usize, rng: &mut R) -> UndirectedGraph {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need more vertices than the attachment count");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m_attach);
    // `targets` holds one entry per half-edge: sampling uniformly from it is
    // sampling proportional to degree.
    let mut half_edges: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    // Seed: a star over the first m_attach + 1 vertices so every seed vertex
    // has nonzero degree.
    for v in 1..=m_attach as u32 {
        edges.push((0, v));
        half_edges.push(0);
        half_edges.push(v);
    }
    for v in (m_attach as u32 + 1)..n as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while chosen.len() < m_attach {
            let &t = half_edges
                .as_slice()
                .choose(rng)
                .expect("half-edge list cannot be empty");
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * m_attach {
                // Extremely unlikely fallback: pick any remaining vertex.
                for u in 0..v {
                    if !chosen.contains(&u) {
                        chosen.push(u);
                        break;
                    }
                }
            }
        }
        for t in chosen {
            edges.push((t, v));
            half_edges.push(t);
            half_edges.push(v);
        }
    }
    UndirectedGraph::from_edges(n, &edges)
}

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// each edge rewired with probability `beta`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> UndirectedGraph {
    assert!(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
    assert!((0.0..=1.0).contains(&beta));
    let mut g = UndirectedGraph::with_vertices(n);
    for u in 0..n as u32 {
        for j in 1..=k as u32 {
            let v = (u + j) % n as u32;
            let (mut a, mut b) = (u, v);
            if rng.gen_bool(beta) {
                // Rewire endpoint b to a uniform random vertex.
                let mut tries = 0;
                loop {
                    let c = rng.gen_range(0..n as u32);
                    if c != a && !g.has_edge(crate::VertexId(a), crate::VertexId(c)) {
                        b = c;
                        break;
                    }
                    tries += 1;
                    if tries > 32 {
                        break; // keep the lattice edge
                    }
                }
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            let _ = g.insert_edge(crate::VertexId(a), crate::VertexId(b));
        }
    }
    g
}

/// Power-law configuration model: degrees drawn from a discrete power law
/// with exponent `gamma` in `[min_deg, max_deg]`, stubs matched randomly,
/// multi-edges and self loops dropped.
pub fn powerlaw_configuration<R: Rng>(
    n: usize,
    gamma: f64,
    min_deg: usize,
    max_deg: usize,
    rng: &mut R,
) -> UndirectedGraph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(min_deg >= 1 && min_deg <= max_deg && max_deg < n);
    // Inverse-CDF sampling of the truncated discrete power law.
    let weights: Vec<f64> = (min_deg..=max_deg)
        .map(|d| (d as f64).powf(-gamma))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut stubs: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        let mut x = rng.gen_range(0.0..total);
        let mut deg = max_deg;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                deg = min_deg + i;
                break;
            }
            x -= w;
        }
        for _ in 0..deg {
            stubs.push(v);
        }
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    stubs.shuffle(rng);
    let edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    UndirectedGraph::from_edges(n, &edges)
}

/// Uniform random labelled tree (random attachment), guaranteeing
/// connectivity — useful for tests that need a connected sparse base.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> UndirectedGraph {
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n as u32 {
        let parent = rng.gen_range(0..v);
        edges.push((parent, v));
    }
    UndirectedGraph::from_edges(n, &edges)
}

/// Orients each edge of an undirected graph randomly, keeping both
/// directions with probability `both` — produces the directed substrate for
/// Appendix C.1 (web graphs are directed with many reciprocal links).
pub fn random_orientation<R: Rng>(
    g: &UndirectedGraph,
    both: f64,
    rng: &mut R,
) -> crate::DirectedGraph {
    assert!((0.0..=1.0).contains(&both));
    let mut arcs = Vec::with_capacity(g.num_edges() * 2);
    for (u, v) in g.edges() {
        if rng.gen_bool(both) {
            arcs.push((u.0, v.0));
            arcs.push((v.0, u.0));
        } else if rng.gen_bool(0.5) {
            arcs.push((u.0, v.0));
        } else {
            arcs.push((v.0, u.0));
        }
    }
    crate::DirectedGraph::from_arcs(g.capacity(), &arcs)
}

/// Assigns uniform random integer weights in `1..=max_w` to the edges of an
/// unweighted graph, producing the weighted substrate for Appendix C.2.
pub fn random_weights<R: Rng>(g: &UndirectedGraph, max_w: u32, rng: &mut R) -> WeightedGraph {
    assert!(max_w >= 1);
    let triples: Vec<(u32, u32, u32)> = g
        .edges()
        .map(|(u, v)| (u.0, v.0, rng.gen_range(1..=max_w)))
        .collect();
    WeightedGraph::from_weighted_edges(g.capacity(), &triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD5BC)
    }

    #[test]
    fn gnp_density_is_plausible() {
        let g = erdos_renyi_gnp(500, 0.02, &mut rng());
        let expected = 0.02 * (500.0 * 499.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "m={m}, expected≈{expected}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, &mut rng()).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(5, 1.0, &mut rng()).num_edges(), 10);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, &mut rng());
        assert_eq!(g.num_edges(), 250);
        g.validate().unwrap();
    }

    #[test]
    fn ba_shape() {
        let g = barabasi_albert(300, 3, &mut rng());
        assert_eq!(g.num_vertices(), 300);
        // Seed star has m_attach edges; every later vertex adds m_attach.
        assert_eq!(g.num_edges(), 3 + (300 - 4) * 3);
        // Scale-free: max degree far above the mean.
        assert!(g.max_degree() > 3 * (2 * g.num_edges() / 300));
        g.validate().unwrap();
    }

    #[test]
    fn ws_shape() {
        let g = watts_strogatz(200, 3, 0.1, &mut rng());
        assert_eq!(g.num_vertices(), 200);
        // Rewiring can only drop edges in rare dead-ends.
        assert!(g.num_edges() > 550 && g.num_edges() <= 600);
        g.validate().unwrap();
    }

    #[test]
    fn powerlaw_degrees_within_bounds_before_dedup() {
        let g = powerlaw_configuration(400, 2.5, 2, 50, &mut rng());
        assert_eq!(g.num_vertices(), 400);
        assert!(g.max_degree() <= 50 + 1);
        assert!(g.num_edges() > 300);
        g.validate().unwrap();
    }

    #[test]
    fn tree_is_connected_and_acyclic() {
        let g = random_tree(64, &mut rng());
        assert_eq!(g.num_edges(), 63);
        let comps = crate::stats::connected_components(&g);
        assert_eq!(comps.num_components, 1);
    }

    #[test]
    fn random_orientation_arc_counts() {
        let base = erdos_renyi_gnm(60, 150, &mut rng());
        let all_single = random_orientation(&base, 0.0, &mut rng());
        assert_eq!(all_single.num_arcs(), 150);
        let all_both = random_orientation(&base, 1.0, &mut rng());
        assert_eq!(all_both.num_arcs(), 300);
        all_single.validate().unwrap();
        all_both.validate().unwrap();
    }

    #[test]
    fn random_weights_cover_edges() {
        let base = erdos_renyi_gnm(50, 120, &mut rng());
        let wg = random_weights(&base, 10, &mut rng());
        assert_eq!(wg.num_edges(), 120);
        for (u, v, w) in wg.edges() {
            assert!((1..=10).contains(&w));
            assert!(base.has_edge(u, v));
        }
        wg.validate().unwrap();
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(7));
        let b = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(7));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
