//! The exact example graphs from the paper's figures.
//!
//! These are golden fixtures: the paper publishes the full SPC-Index of
//! Figure 2's graph (Table 2) and walks both update algorithms through it
//! (Figures 3 and 6), so tests can compare this reproduction's behaviour
//! against the paper line by line.

use crate::UndirectedGraph;

/// Figure 1's toy social network `H`.
///
/// Vertices: `a = 0`, `v2 = 1`, `v4 = 2`, `b = 3`, `c = 4`. Both `b` and `c`
/// are at distance 2 from `a`, but `spc(a, c) = 2 > spc(a, b) = 1` — the
/// paper's motivating example for counting over pure distance.
pub fn figure1_h() -> UndirectedGraph {
    UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 4)])
}

/// Figure 2's 12-vertex example graph `G`, whose SPC-Index under the
/// identity ordering (`v0 ≤ v1 ≤ … ≤ v11`) is published in Table 2.
///
/// The edge set is reconstructed from Table 2's distance-1 canonical labels
/// and verified against every worked example in the paper (Examples 2.1,
/// 2.2, 3.5, 3.6, 3.13, 3.15).
pub fn figure2_g() -> UndirectedGraph {
    UndirectedGraph::from_edges(
        12,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 8),
            (0, 11),
            (1, 2),
            (1, 5),
            (1, 6),
            (2, 3),
            (2, 5),
            (3, 7),
            (3, 8),
            (4, 5),
            (4, 7),
            (4, 9),
            (6, 10),
            (9, 10),
        ],
    )
}

/// Figure 4's toy graph for the decremental discussion.
///
/// Vertices (rank order): `h = 0 ≤ w = 1 ≤ a = 2 ≤ b = 3 ≤ u = 4 ≤ w1 = 5 ≤
/// w2 = 6 ≤ w3 = 7 ≤ w4 = 8`. Deleting `(a, b)` reroutes `h → u` through the
/// long `w`-chain: label `(h, 3, 1) ∈ L(u)` must become `(h, 6, 1)` and a new
/// label `(w, 5, 1)` must appear even though `w` was a hub of neither `a` nor
/// `b` (condition B of Definition 3.10).
pub fn figure4_toy() -> UndirectedGraph {
    UndirectedGraph::from_edges(
        9,
        &[
            (0, 1), // h - w
            (0, 2), // h - a
            (2, 3), // a - b
            (3, 4), // b - u
            (1, 5), // w - w1
            (5, 6), // w1 - w2
            (6, 7), // w2 - w3
            (7, 8), // w3 - w4
            (8, 4), // w4 - u
        ],
    )
}

/// Figure 5's chain for the `SR` examples.
///
/// Vertices (rank order): `v1 = 0 ≤ v2 = 1 ≤ v3 = 2 ≤ a = 3 ≤ b = 4 ≤ u = 5`.
/// Edges: `v1-a`, `a-b`, `b-u`, and the detour `a-v2`, `v2-v3`, `v3-b`.
/// Deleting `(a, b)` changes `L(u)`: `(v1, 3, 1) → (v1, 5, 1)` and
/// `(v2, 3, 2) → (v2, 3, 1)` — both `v1` and `v2` are in `SR_a` by
/// condition A.
pub fn figure5_chain() -> UndirectedGraph {
    UndirectedGraph::from_edges(6, &[(0, 3), (3, 4), (4, 5), (3, 1), (1, 2), (2, 4)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs::BfsCounter;
    use crate::VertexId;

    #[test]
    fn figure1_motivating_counts() {
        let g = figure1_h();
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(3)), Some((2, 1)));
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(4)), Some((2, 2)));
    }

    #[test]
    fn figure2_shape() {
        let g = figure2_g();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 17);
        g.validate().unwrap();
    }

    #[test]
    fn figure2_example_2_1() {
        // SPC(v4, v6) = 2 with sd = 3 (paper Example 2.1).
        let g = figure2_g();
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(4), VertexId(6)), Some((3, 2)));
    }

    #[test]
    fn figure2_table2_distances_and_counts_from_v0() {
        // Cross-check Table 2's canonical labels with hub v0 against BFS.
        let g = figure2_g();
        let mut bfs = BfsCounter::new(g.capacity());
        let expect = [
            (1, 1, 1), // v1: (v0,1,1)
            (2, 1, 1),
            (3, 1, 1),
            (4, 3, 3),
            (5, 2, 2),
            (6, 2, 1),
            (7, 2, 1),
            (8, 1, 1),
            (9, 4, 4),
            (10, 3, 1),
            (11, 1, 1),
        ];
        for (v, d, c) in expect {
            assert_eq!(
                bfs.count(&g, VertexId(0), VertexId(v)),
                Some((d, c)),
                "v0 → v{v}"
            );
        }
    }

    #[test]
    fn figure4_rerouting_counts() {
        let mut g = figure4_toy();
        let mut bfs = BfsCounter::new(g.capacity());
        // Before deletion: h → u at distance 3 via a-b.
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(4)), Some((3, 1)));
        g.delete_edge(VertexId(2), VertexId(3)).unwrap();
        // After: rerouted through the w-chain at distance 6.
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(4)), Some((6, 1)));
        // And w → u at distance 5.
        assert_eq!(bfs.count(&g, VertexId(1), VertexId(4)), Some((5, 1)));
    }

    #[test]
    fn figure5_label_changes() {
        let mut g = figure5_chain();
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(5)), Some((3, 1)));
        assert_eq!(bfs.count(&g, VertexId(1), VertexId(5)), Some((3, 2)));
        g.delete_edge(VertexId(3), VertexId(4)).unwrap();
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(5)), Some((5, 1)));
        assert_eq!(bfs.count(&g, VertexId(1), VertexId(5)), Some((3, 1)));
    }
}
