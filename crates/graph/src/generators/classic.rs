//! Deterministic classic topologies.
//!
//! These have closed-form shortest-path counts, which makes them ideal
//! oracles for tests: e.g. on a `p × q` grid the number of shortest paths
//! between opposite corners is the binomial coefficient `C(p+q-2, p-1)`.

use crate::UndirectedGraph;

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path_graph(n: usize) -> UndirectedGraph {
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    UndirectedGraph::from_edges(n, &edges)
}

/// Cycle graph on `n ≥ 3` vertices.
pub fn cycle_graph(n: usize) -> UndirectedGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    edges.push((n as u32 - 1, 0));
    UndirectedGraph::from_edges(n, &edges)
}

/// Star graph: center `0` connected to `1..n`.
pub fn star_graph(n: usize) -> UndirectedGraph {
    assert!(n >= 1);
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    UndirectedGraph::from_edges(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> UndirectedGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    UndirectedGraph::from_edges(n, &edges)
}

/// `rows × cols` grid graph; vertex `(r, c)` has id `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> UndirectedGraph {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                edges.push((id, id + 1));
            }
            if r + 1 < rows {
                edges.push((id, id + cols as u32));
            }
        }
    }
    UndirectedGraph::from_edges(rows * cols, &edges)
}

/// Two cliques of size `k` joined by a single bridge edge — a worst case for
/// decremental updates (deleting the bridge disconnects the halves and
/// forces label removals).
pub fn two_cliques_bridge(k: usize) -> UndirectedGraph {
    assert!(k >= 1);
    let n = 2 * k;
    let mut edges = Vec::new();
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            edges.push((u, v));
        }
    }
    for u in k as u32..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    // Bridge between vertex 0 of each clique.
    edges.push((0, k as u32));
    UndirectedGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn path_counts() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn single_vertex_path() {
        let g = path_graph(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle_graph(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(VertexId(5), VertexId(0)));
        g.validate().unwrap();
    }

    #[test]
    fn star_counts() {
        let g = star_graph(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(VertexId(0)), 6);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn complete_counts() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 5);
        }
        g.validate().unwrap();
    }

    #[test]
    fn grid_counts() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // 3*3 horizontal rows of edges + 2*4 vertical
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        g.validate().unwrap();
    }

    #[test]
    fn two_cliques_counts() {
        let g = two_cliques_bridge(4);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2 * 6 + 1);
        assert!(g.has_edge(VertexId(0), VertexId(4)));
        g.validate().unwrap();
    }
}
