//! Vertex identifiers.
//!
//! The DSPC index relabels vertices by rank internally, so the substrate
//! exposes plain dense `u32` identifiers wrapped in a newtype for type
//! safety. A `u32` id space matches the paper's packed label encoding (25
//! bits for the vertex field) while comfortably covering the laptop-scale
//! graphs this reproduction targets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense vertex identifier.
///
/// Graphs hand out ids `0..capacity`; deleting a vertex retires its id —
/// ids are never reused, so a `VertexId` remains a stable handle across
/// topology updates, exactly what a long-lived hub labeling needs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The maximum representable id.
    pub const MAX: VertexId = VertexId(u32::MAX);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        VertexId(u32::try_from(i).expect("vertex index exceeds u32 range"))
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    fn from(v: VertexId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn ordering_is_by_id() {
        assert!(VertexId(1) < VertexId(2));
        assert_eq!(VertexId(7), VertexId(7));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", VertexId(3)), "v3");
        assert_eq!(format!("{}", VertexId(3)), "3");
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds u32 range")]
    fn from_index_overflow_panics() {
        let _ = VertexId::from_index(u32::MAX as usize + 1);
    }
}
