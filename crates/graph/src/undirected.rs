//! The paper's primary substrate: an undirected, unweighted, *simple*
//! dynamic graph.
//!
//! Design notes:
//!
//! * Adjacency lists are kept **sorted by vertex id**, so `has_edge` is a
//!   binary search and neighbor iteration is deterministic — determinism
//!   matters because the DSPC update algorithms are compared against full
//!   reconstruction and both must see identical graphs.
//! * Deleting a vertex retires its id rather than renumbering: the SPC-Index
//!   stores per-vertex label sets indexed by id, so ids must be stable under
//!   deletion (the paper models vertex deletion as deleting all incident
//!   edges, §3).
//! * Parallel edges and self loops are rejected: shortest path counting is
//!   defined on simple graphs (§2.1).

use crate::{GraphError, Result, VertexId};

/// An undirected, unweighted dynamic graph with stable vertex ids.
#[derive(Clone, Debug, Default)]
pub struct UndirectedGraph {
    /// `adj[v]` is the sorted list of neighbors of `v`.
    adj: Vec<Vec<u32>>,
    /// `alive[v]` is false once `v` has been deleted.
    alive: Vec<bool>,
    /// Number of alive vertices.
    n_alive: usize,
    /// Number of edges.
    m: usize,
}

impl UndirectedGraph {
    /// Creates an empty graph with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices, ids `0..n`.
    pub fn with_vertices(n: usize) -> Self {
        UndirectedGraph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            n_alive: n,
            m: 0,
        }
    }

    /// Bulk-builds a graph from an edge list over vertices `0..n`.
    ///
    /// Duplicate edges and self loops are silently dropped, mirroring the
    /// paper's preprocessing of the SNAP datasets (directed inputs are
    /// symmetrized, multi-edges collapsed).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            let (ui, vi) = (u as usize, v as usize);
            assert!(ui < n && vi < n, "edge endpoint out of range");
            adj[ui].push(v);
            adj[vi].push(u);
        }
        let mut m = 0;
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            m += list.len();
        }
        debug_assert!(m % 2 == 0);
        UndirectedGraph {
            adj,
            alive: vec![true; n],
            n_alive: n,
            m: m / 2,
        }
    }

    /// Total id space (`0..capacity()`), including deleted vertices.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Number of alive vertices (the paper's `n`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n_alive
    }

    /// Number of edges (the paper's `m`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether `v` is a valid, alive vertex.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.alive.len() && self.alive[v.index()]
    }

    /// Adds a fresh isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from_index(self.adj.len());
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.n_alive += 1;
        id
    }

    /// Degree of `v` (the paper's `deg(v)`).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Sorted neighbor slice of `v` (the paper's `nbr(v)`).
    ///
    /// This is the hot accessor used by every BFS in the reproduction, so it
    /// returns the raw `u32` slice without wrapping.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        &self.adj[v.index()]
    }

    /// Whether edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u.index() >= self.adj.len() || v.index() >= self.adj.len() {
            return false;
        }
        self.adj[u.index()].binary_search(&v.0).is_ok()
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if self.contains_vertex(v) {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(v))
        }
    }

    /// Inserts edge `(u, v)`.
    ///
    /// Rejects self loops, unknown endpoints, and duplicates.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos_u = match self.adj[u.index()].binary_search(&v.0) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u, v)),
            Err(p) => p,
        };
        self.adj[u.index()].insert(pos_u, v.0);
        let pos_v = self.adj[v.index()]
            .binary_search(&u.0)
            .expect_err("adjacency symmetry violated");
        self.adj[v.index()].insert(pos_v, u.0);
        self.m += 1;
        Ok(())
    }

    /// Deletes edge `(u, v)`.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos_u = self.adj[u.index()]
            .binary_search(&v.0)
            .map_err(|_| GraphError::MissingEdge(u, v))?;
        self.adj[u.index()].remove(pos_u);
        let pos_v = self.adj[v.index()]
            .binary_search(&u.0)
            .expect("adjacency symmetry violated");
        self.adj[v.index()].remove(pos_v);
        self.m -= 1;
        Ok(())
    }

    /// Deletes vertex `v`, removing its incident edges.
    ///
    /// Returns the former neighbors — the paper treats vertex deletion as a
    /// sequence of edge deletions (§3), and callers replay exactly this list
    /// through `DecSPC`.
    pub fn delete_vertex(&mut self, v: VertexId) -> Result<Vec<VertexId>> {
        self.check_vertex(v)?;
        let neighbors = std::mem::take(&mut self.adj[v.index()]);
        for &u in &neighbors {
            let pos = self.adj[u as usize]
                .binary_search(&v.0)
                .expect("adjacency symmetry violated");
            self.adj[u as usize].remove(pos);
        }
        self.m -= neighbors.len();
        self.alive[v.index()] = false;
        self.n_alive -= 1;
        Ok(neighbors.into_iter().map(VertexId).collect())
    }

    /// Iterates alive vertex ids in increasing order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::from_index(i))
    }

    /// Iterates every edge once as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u32u = u as u32;
            list.iter()
                .take_while(move |&&v| v < u32u)
                .map(move |&v| (VertexId(v), VertexId(u32u)))
        })
    }

    /// Picks an arbitrary existing edge by dense index, useful for sampling
    /// deletion workloads. `i` must be `< num_edges()`.
    pub fn nth_edge(&self, i: usize) -> Option<(VertexId, VertexId)> {
        self.edges().nth(i)
    }

    /// Maximum degree over alive vertices.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sum of degrees (== 2m); sanity hook for tests.
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Debug-time structural validation: symmetry, sortedness, no self
    /// loops, edge count consistency, no edges at dead vertices.
    pub fn validate(&self) -> Result<()> {
        let mut half_edges = 0usize;
        for (u, list) in self.adj.iter().enumerate() {
            if !self.alive[u] && !list.is_empty() {
                return Err(GraphError::UnknownVertex(VertexId::from_index(u)));
            }
            let mut prev: Option<u32> = None;
            for &v in list {
                if v as usize == u {
                    return Err(GraphError::SelfLoop(VertexId::from_index(u)));
                }
                if let Some(p) = prev {
                    if p >= v {
                        return Err(GraphError::Parse {
                            line: 0,
                            message: format!("adjacency of v{u} not strictly sorted"),
                        });
                    }
                }
                prev = Some(v);
                if self.adj[v as usize].binary_search(&(u as u32)).is_err() {
                    return Err(GraphError::MissingEdge(
                        VertexId::from_index(u),
                        VertexId(v),
                    ));
                }
                half_edges += 1;
            }
        }
        if half_edges != 2 * self.m {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "edge count mismatch: {} half-edges, m={}",
                    half_edges, self.m
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> UndirectedGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        UndirectedGraph::from_edges(n, &edges)
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.capacity(), 0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.edges().count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn insert_and_query_edges() {
        let mut g = UndirectedGraph::with_vertices(4);
        g.insert_edge(VertexId(0), VertexId(1)).unwrap();
        g.insert_edge(VertexId(2), VertexId(1)).unwrap();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(g.has_edge(VertexId(1), VertexId(2)));
        assert!(!g.has_edge(VertexId(0), VertexId(2)));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert_eq!(g.neighbors(VertexId(1)), &[0, 2]);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = UndirectedGraph::with_vertices(2);
        g.insert_edge(VertexId(0), VertexId(1)).unwrap();
        assert!(matches!(
            g.insert_edge(VertexId(1), VertexId(0)),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = UndirectedGraph::with_vertices(1);
        assert!(matches!(
            g.insert_edge(VertexId(0), VertexId(0)),
            Err(GraphError::SelfLoop(_))
        ));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut g = UndirectedGraph::with_vertices(2);
        assert!(matches!(
            g.insert_edge(VertexId(0), VertexId(5)),
            Err(GraphError::UnknownVertex(_))
        ));
    }

    #[test]
    fn delete_edge() {
        let mut g = path(3);
        g.delete_edge(VertexId(0), VertexId(1)).unwrap();
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        assert_eq!(g.num_edges(), 1);
        assert!(matches!(
            g.delete_edge(VertexId(0), VertexId(1)),
            Err(GraphError::MissingEdge(_, _))
        ));
        g.validate().unwrap();
    }

    #[test]
    fn delete_vertex_removes_incident_edges() {
        let mut g = path(5);
        let removed = g.delete_vertex(VertexId(2)).unwrap();
        assert_eq!(removed, vec![VertexId(1), VertexId(3)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 4);
        assert!(!g.contains_vertex(VertexId(2)));
        assert!(matches!(
            g.insert_edge(VertexId(2), VertexId(0)),
            Err(GraphError::UnknownVertex(_))
        ));
        assert_eq!(g.vertices().count(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn add_vertex_after_delete_gets_fresh_id() {
        let mut g = path(3);
        g.delete_vertex(VertexId(1)).unwrap();
        let v = g.add_vertex();
        assert_eq!(v, VertexId(3));
        assert_eq!(g.num_vertices(), 3);
        g.insert_edge(v, VertexId(0)).unwrap();
        assert!(g.has_edge(VertexId(3), VertexId(0)));
        g.validate().unwrap();
    }

    #[test]
    fn from_edges_dedups_and_drops_loops() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(VertexId(1)), &[0, 2]);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in &edges {
            assert!(u < v);
        }
        assert_eq!(g.degree_sum(), 8);
    }

    #[test]
    fn nth_edge_matches_iterator() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.nth_edge(0), g.edges().next());
        assert_eq!(g.nth_edge(2), g.edges().nth(2));
        assert_eq!(g.nth_edge(3), None);
    }

    #[test]
    fn max_degree() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn validate_catches_m_mismatch() {
        let mut g = path(3);
        g.m = 5;
        assert!(g.validate().is_err());
    }
}
