//! Counting breadth-first search — the paper's §1 baseline and the
//! ground-truth oracle.
//!
//! During the BFS rooted at `s`, `D[v]` tracks the shortest distance and
//! `C[v]` the number of shortest paths: discovering `w` through `v` sets
//! `D[w] = D[v] + 1, C[w] = C[v]`; re-reaching `w` at the same level adds
//! `C[w] += C[v]`.
//!
//! The workspace is reusable: arrays are allocated once and reset lazily via
//! a touched list, so repeated queries on a large graph cost `O(visited)`,
//! not `O(n)` — the same engineering the paper's C++ baselines use.

use super::INF;
use crate::{UndirectedGraph, VertexId};
use std::collections::VecDeque;

/// Reusable counting-BFS workspace.
#[derive(Clone, Debug)]
pub struct BfsCounter {
    dist: Vec<u32>,
    count: Vec<u64>,
    queue: VecDeque<u32>,
    touched: Vec<u32>,
}

impl BfsCounter {
    /// Creates a workspace for graphs with id space `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BfsCounter {
            dist: vec![INF; capacity],
            count: vec![0; capacity],
            queue: VecDeque::new(),
            touched: Vec::new(),
        }
    }

    /// Grows the workspace if the graph gained vertices since construction.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, INF);
            self.count.resize(capacity, 0);
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Point-to-point query: returns `(sd(s, t), spc(s, t))`, or `None` if
    /// `t` is unreachable from `s`. `(0, 1)` when `s == t`.
    pub fn count(&mut self, g: &UndirectedGraph, s: VertexId, t: VertexId) -> Option<(u32, u64)> {
        self.ensure_capacity(g.capacity());
        self.reset();
        if s == t {
            return Some((0, 1));
        }
        self.dist[s.index()] = 0;
        self.count[s.index()] = 1;
        self.touched.push(s.0);
        self.queue.push_back(s.0);
        let mut found: Option<u32> = None;
        while let Some(v) = self.queue.pop_front() {
            let dv = self.dist[v as usize];
            if let Some(ft) = found {
                // Every vertex at distance ft-1 has been expanded once we
                // dequeue anything at distance >= ft, so C[t] is final.
                if dv >= ft {
                    break;
                }
            }
            let cv = self.count[v as usize];
            for &w in g.neighbors(VertexId(v)) {
                let dw = self.dist[w as usize];
                if dw == INF {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push_back(w);
                    if w == t.0 {
                        found = Some(dv + 1);
                    }
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        found.map(|d| (d, self.count[t.index()]))
    }

    /// Single-source sweep: fills internal arrays with `sd(s, ·)` and
    /// `spc(s, ·)` for every reachable vertex and returns views.
    ///
    /// Unreachable vertices read `(INF, 0)`.
    pub fn sssp(&mut self, g: &UndirectedGraph, s: VertexId) -> (&[u32], &[u64]) {
        self.sssp_restricted(g, s, |_| true)
    }

    /// Single-source sweep restricted to vertices accepted by `allow`
    /// (the source is always allowed).
    ///
    /// The DSPC verification oracle uses this with `allow = rank(w) below
    /// rank(h)` to compute the paper's `spc(ĥ, ·)` — shortest-path counts
    /// over paths on which `h` is the highest-ranked vertex.
    pub fn sssp_restricted<F: Fn(u32) -> bool>(
        &mut self,
        g: &UndirectedGraph,
        s: VertexId,
        allow: F,
    ) -> (&[u32], &[u64]) {
        self.ensure_capacity(g.capacity());
        self.reset();
        self.dist[s.index()] = 0;
        self.count[s.index()] = 1;
        self.touched.push(s.0);
        self.queue.push_back(s.0);
        while let Some(v) = self.queue.pop_front() {
            let dv = self.dist[v as usize];
            let cv = self.count[v as usize];
            for &w in g.neighbors(VertexId(v)) {
                if !allow(w) {
                    continue;
                }
                let dw = self.dist[w as usize];
                if dw == INF {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push_back(w);
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        (&self.dist, &self.count)
    }

    /// Distance-only view after a sweep (`INF` when unreached).
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Count view after a sweep (0 when unreached).
    pub fn counts(&self) -> &[u64] {
        &self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    #[test]
    fn same_vertex() {
        let g = path_graph(3);
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(1), VertexId(1)), Some((0, 1)));
    }

    #[test]
    fn path_has_single_shortest_path() {
        let g = path_graph(6);
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(5)), Some((5, 1)));
    }

    #[test]
    fn even_cycle_has_two_paths_to_antipode() {
        let g = cycle_graph(8);
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(4)), Some((4, 2)));
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(3)), Some((3, 1)));
    }

    #[test]
    fn grid_counts_are_binomial() {
        // 3x4 grid: corner-to-corner shortest paths = C(2+3, 2) = 10.
        let g = grid_graph(3, 4);
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(11)), Some((5, 10)));
    }

    #[test]
    fn complete_graph_distance_one() {
        let g = complete_graph(5);
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(4)), Some((1, 1)));
        // Distance-2 pairs don't exist in K5.
    }

    #[test]
    fn disconnected_returns_none() {
        let g = UndirectedGraph::with_vertices(4);
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(3)), None);
    }

    #[test]
    fn star_center_counts() {
        let g = star_graph(6);
        let mut bfs = BfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(1), VertexId(2)), Some((2, 1)));
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(3)), Some((1, 1)));
    }

    #[test]
    fn sssp_matches_point_queries() {
        let g = grid_graph(4, 4);
        let mut bfs = BfsCounter::new(g.capacity());
        let (dist, count) = {
            let (d, c) = bfs.sssp(&g, VertexId(0));
            (d.to_vec(), c.to_vec())
        };
        let mut bfs2 = BfsCounter::new(g.capacity());
        for v in g.vertices() {
            let got = bfs2.count(&g, VertexId(0), v);
            if v == VertexId(0) {
                assert_eq!(dist[0], 0);
                assert_eq!(count[0], 1);
            } else {
                assert_eq!(got, Some((dist[v.index()], count[v.index()])));
            }
        }
    }

    #[test]
    fn restricted_sweep_blocks_paths() {
        // Path 0-1-2 where vertex 1 is disallowed: 2 unreachable.
        let g = path_graph(3);
        let mut bfs = BfsCounter::new(g.capacity());
        let (dist, _) = bfs.sssp_restricted(&g, VertexId(0), |w| w != 1);
        assert_eq!(dist[2], INF);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = cycle_graph(10);
        let mut bfs = BfsCounter::new(g.capacity());
        let a = bfs.count(&g, VertexId(0), VertexId(5));
        let b = bfs.count(&g, VertexId(1), VertexId(6));
        let a2 = bfs.count(&g, VertexId(0), VertexId(5));
        assert_eq!(a, a2);
        assert_eq!(a, Some((5, 2)));
        assert_eq!(b, Some((5, 2)));
    }

    #[test]
    fn ensure_capacity_growth() {
        let mut g = path_graph(3);
        let mut bfs = BfsCounter::new(g.capacity());
        let v = g.add_vertex();
        g.insert_edge(VertexId(2), v).unwrap();
        assert_eq!(bfs.count(&g, VertexId(0), v), Some((3, 1)));
    }
}
