//! Bidirectional counting BFS — the paper's query baseline (**BiBFS**,
//! §4.1.2).
//!
//! Two BFS frontiers grow from `s` and `t`; at each step the side with the
//! smaller frontier expands one level (the paper: "selects the side with the
//! smaller queue size to continue each iteration"). Once the expanded depths
//! `a + b` reach the best meeting distance μ no shorter path can exist, and
//! the count is accumulated over a *single split level* — every shortest
//! path of length μ crosses exactly one vertex at distance `ℓ` from `s`
//! (with `ℓ ≤ a` and `μ - ℓ ≤ b`), so
//! `spc(s, t) = Σ_{w : d_s(w) = ℓ, d_t(w) = μ-ℓ} c_s(w) · c_t(w)`
//! counts each path exactly once.

use super::INF;
use crate::{UndirectedGraph, VertexId};

/// One directional half of the bidirectional search.
#[derive(Clone, Debug)]
struct Side {
    dist: Vec<u32>,
    count: Vec<u64>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    touched: Vec<u32>,
    /// Levels fully expanded: every vertex at distance <= depth has final
    /// distance and count.
    depth: u32,
}

impl Side {
    fn new(capacity: usize) -> Self {
        Side {
            dist: vec![INF; capacity],
            count: vec![0; capacity],
            frontier: Vec::new(),
            next: Vec::new(),
            touched: Vec::new(),
            depth: 0,
        }
    }

    fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, INF);
            self.count.resize(capacity, 0);
        }
    }

    fn reset(&mut self, root: u32) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.frontier.clear();
        self.next.clear();
        self.depth = 0;
        self.dist[root as usize] = 0;
        self.count[root as usize] = 1;
        self.touched.push(root);
        self.frontier.push(root);
    }

    /// Expands one level; afterwards `depth` increases by one. Returns the
    /// best (smallest) `dist_here + dist_other` seen among vertices newly
    /// discovered or re-relaxed that are also labeled by the other side.
    fn expand(&mut self, g: &UndirectedGraph, other: &Side) -> u32 {
        let mut best = INF;
        self.next.clear();
        for &v in &self.frontier {
            let dv = self.dist[v as usize];
            let cv = self.count[v as usize];
            for &w in g.neighbors(VertexId(v)) {
                let dw = self.dist[w as usize];
                if dw == INF {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.next.push(w);
                    let od = other.dist[w as usize];
                    if od != INF {
                        best = best.min(dv + 1 + od);
                    }
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        std::mem::swap(&mut self.frontier, &mut self.next);
        self.depth += 1;
        best
    }
}

/// Reusable bidirectional-BFS workspace.
#[derive(Clone, Debug)]
pub struct BiBfsCounter {
    fwd: Side,
    bwd: Side,
}

impl BiBfsCounter {
    /// Creates a workspace for graphs with id space `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BiBfsCounter {
            fwd: Side::new(capacity),
            bwd: Side::new(capacity),
        }
    }

    /// Returns `(sd(s, t), spc(s, t))`, or `None` if disconnected.
    pub fn count(&mut self, g: &UndirectedGraph, s: VertexId, t: VertexId) -> Option<(u32, u64)> {
        self.fwd.ensure_capacity(g.capacity());
        self.bwd.ensure_capacity(g.capacity());
        if s == t {
            return Some((0, 1));
        }
        self.fwd.reset(s.0);
        self.bwd.reset(t.0);
        let mut mu = INF;
        loop {
            if self.fwd.frontier.is_empty() && self.bwd.frontier.is_empty() {
                break;
            }
            // Once a+b >= mu, no undiscovered meeting can improve on mu.
            if mu != INF && self.fwd.depth + self.bwd.depth >= mu {
                break;
            }
            // Expand the smaller frontier (ties go forward); an empty side
            // can no longer improve anything, expand the other.
            let fwd_turn = if self.fwd.frontier.is_empty() {
                false
            } else if self.bwd.frontier.is_empty() {
                true
            } else {
                self.fwd.frontier.len() <= self.bwd.frontier.len()
            };
            let best = if fwd_turn {
                self.fwd.expand(g, &self.bwd)
            } else {
                self.bwd.expand(g, &self.fwd)
            };
            mu = mu.min(best);
        }
        if mu == INF {
            return None;
        }
        // Pick a split level l with l <= depth_s and mu - l <= depth_t so
        // both sides' counts at the split are complete.
        let l = mu.saturating_sub(self.bwd.depth).min(self.fwd.depth);
        debug_assert!(mu - l <= self.bwd.depth);
        let mut total: u64 = 0;
        // Iterate the smaller touched set.
        let (a, b, la, lb) = if self.fwd.touched.len() <= self.bwd.touched.len() {
            (&self.fwd, &self.bwd, l, mu - l)
        } else {
            (&self.bwd, &self.fwd, mu - l, l)
        };
        for &w in &a.touched {
            if a.dist[w as usize] == la && b.dist[w as usize] == lb {
                total =
                    total.saturating_add(a.count[w as usize].saturating_mul(b.count[w as usize]));
            }
        }
        Some((mu, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;
    use crate::generators::random::*;
    use crate::traversal::bfs::BfsCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn trivial_cases() {
        let g = path_graph(4);
        let mut bi = BiBfsCounter::new(g.capacity());
        assert_eq!(bi.count(&g, VertexId(2), VertexId(2)), Some((0, 1)));
        assert_eq!(bi.count(&g, VertexId(0), VertexId(1)), Some((1, 1)));
        assert_eq!(bi.count(&g, VertexId(0), VertexId(3)), Some((3, 1)));
    }

    #[test]
    fn disconnected() {
        let g = UndirectedGraph::with_vertices(5);
        let mut bi = BiBfsCounter::new(g.capacity());
        assert_eq!(bi.count(&g, VertexId(0), VertexId(4)), None);
    }

    #[test]
    fn grid_corner_to_corner() {
        let g = grid_graph(4, 4);
        let mut bi = BiBfsCounter::new(g.capacity());
        // C(6,3) = 20 monotone lattice paths.
        assert_eq!(bi.count(&g, VertexId(0), VertexId(15)), Some((6, 20)));
    }

    #[test]
    fn even_cycle_antipode() {
        let g = cycle_graph(10);
        let mut bi = BiBfsCounter::new(g.capacity());
        assert_eq!(bi.count(&g, VertexId(0), VertexId(5)), Some((5, 2)));
    }

    #[test]
    fn matches_unidirectional_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let g = erdos_renyi_gnm(60, 120, &mut rng);
            let mut bfs = BfsCounter::new(g.capacity());
            let mut bi = BiBfsCounter::new(g.capacity());
            for _ in 0..50 {
                let s = VertexId(rng.gen_range(0..60));
                let t = VertexId(rng.gen_range(0..60));
                assert_eq!(
                    bi.count(&g, s, t),
                    bfs.count(&g, s, t),
                    "trial {trial}, {s:?}→{t:?}"
                );
            }
        }
    }

    #[test]
    fn matches_unidirectional_on_scale_free() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(150, 2, &mut rng);
        let mut bfs = BfsCounter::new(g.capacity());
        let mut bi = BiBfsCounter::new(g.capacity());
        for _ in 0..200 {
            let s = VertexId(rng.gen_range(0..150));
            let t = VertexId(rng.gen_range(0..150));
            assert_eq!(bi.count(&g, s, t), bfs.count(&g, s, t));
        }
    }

    #[test]
    fn workspace_reuse() {
        let g = grid_graph(3, 3);
        let mut bi = BiBfsCounter::new(g.capacity());
        let first = bi.count(&g, VertexId(0), VertexId(8));
        for _ in 0..5 {
            assert_eq!(bi.count(&g, VertexId(0), VertexId(8)), first);
        }
        assert_eq!(first, Some((4, 6)));
    }
}
