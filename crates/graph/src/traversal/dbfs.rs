//! Counting BFS over directed graphs — oracle and baseline for the
//! Appendix C.1 extension.

use super::INF;
use crate::{DirectedGraph, VertexId};
use std::collections::VecDeque;

/// Direction of a sweep over a [`DirectedGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow arcs `v → w` (distances *from* the source).
    Forward,
    /// Follow arcs `w → v` backwards (distances *to* the source).
    Backward,
}

/// Reusable counting-BFS workspace for directed graphs.
#[derive(Clone, Debug)]
pub struct DirectedBfsCounter {
    dist: Vec<u32>,
    count: Vec<u64>,
    queue: VecDeque<u32>,
    touched: Vec<u32>,
}

impl DirectedBfsCounter {
    /// Creates a workspace for graphs with id space `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        DirectedBfsCounter {
            dist: vec![INF; capacity],
            count: vec![0; capacity],
            queue: VecDeque::new(),
            touched: Vec::new(),
        }
    }

    /// Grows the workspace if needed.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, INF);
            self.count.resize(capacity, 0);
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Point query: `(sd(s → t), spc(s → t))`, `None` if `t` is not
    /// reachable from `s`.
    pub fn count(&mut self, g: &DirectedGraph, s: VertexId, t: VertexId) -> Option<(u32, u64)> {
        if s == t {
            return Some((0, 1));
        }
        let (dist, count) = self.sweep(g, s, Direction::Forward, |_| true);
        if dist[t.index()] == INF {
            None
        } else {
            Some((dist[t.index()], count[t.index()]))
        }
    }

    /// Full sweep from `s` in `dir`, restricted to vertices accepted by
    /// `allow` (source always allowed). Returns `(distances, counts)`.
    pub fn sweep<F: Fn(u32) -> bool>(
        &mut self,
        g: &DirectedGraph,
        s: VertexId,
        dir: Direction,
        allow: F,
    ) -> (&[u32], &[u64]) {
        self.ensure_capacity(g.capacity());
        self.reset();
        self.dist[s.index()] = 0;
        self.count[s.index()] = 1;
        self.touched.push(s.0);
        self.queue.push_back(s.0);
        while let Some(v) = self.queue.pop_front() {
            let dv = self.dist[v as usize];
            let cv = self.count[v as usize];
            let neighbors = match dir {
                Direction::Forward => g.out_neighbors(VertexId(v)),
                Direction::Backward => g.in_neighbors(VertexId(v)),
            };
            for &w in neighbors {
                if !allow(w) {
                    continue;
                }
                let dw = self.dist[w as usize];
                if dw == INF {
                    self.dist[w as usize] = dv + 1;
                    self.count[w as usize] = cv;
                    self.touched.push(w);
                    self.queue.push_back(w);
                } else if dw == dv + 1 {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        (&self.dist, &self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_diamond() {
        // 0→1→3, 0→2→3: two shortest 0→3 paths; none backwards.
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(3)), Some((2, 2)));
        assert_eq!(bfs.count(&g, VertexId(3), VertexId(0)), None);
    }

    #[test]
    fn backward_sweep_counts_into_source() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        let (dist, count) = bfs.sweep(&g, VertexId(3), Direction::Backward, |_| true);
        assert_eq!(dist[0], 2);
        assert_eq!(count[0], 2);
        assert_eq!(dist[1], 1);
    }

    #[test]
    fn cycle_distances_are_directional() {
        let g = DirectedGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(0), VertexId(3)), Some((3, 1)));
        assert_eq!(bfs.count(&g, VertexId(3), VertexId(0)), Some((1, 1)));
    }

    #[test]
    fn restricted_sweep() {
        let g = DirectedGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        let (dist, _) = bfs.sweep(&g, VertexId(0), Direction::Forward, |w| w != 1);
        assert_eq!(dist[2], INF);
    }

    #[test]
    fn self_query() {
        let g = DirectedGraph::with_vertices(2);
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        assert_eq!(bfs.count(&g, VertexId(1), VertexId(1)), Some((0, 1)));
    }
}
