//! Online shortest-path-counting algorithms — the paper's baselines.
//!
//! * [`bfs`] — the textbook counting BFS from §1 of the paper, also the
//!   ground-truth oracle for every test in this repository,
//! * [`bibfs`] — bidirectional BFS, the query baseline of §4.1.2,
//! * [`dijkstra`] — Dijkstra counting for the weighted extension.

pub mod bfs;
pub mod bibfs;
pub mod dbfs;
pub mod dijkstra;

/// Distance sentinel meaning "unreached".
pub const INF: u32 = u32::MAX;
