//! Dijkstra-based shortest-path counting for weighted graphs — the oracle
//! and online baseline for the Appendix C.2 extension.
//!
//! Identical in spirit to the counting BFS: settle vertices in distance
//! order; a relaxation that *improves* a tentative distance overwrites the
//! count, one that *ties* accumulates it. Integer weights keep tie
//! comparisons exact.

use crate::weighted::{WDist, WeightedGraph, WDIST_INF};
use crate::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable counting-Dijkstra workspace.
#[derive(Clone, Debug)]
pub struct DijkstraCounter {
    dist: Vec<WDist>,
    count: Vec<u64>,
    settled: Vec<bool>,
    heap: BinaryHeap<Reverse<(WDist, u32)>>,
    touched: Vec<u32>,
}

impl DijkstraCounter {
    /// Creates a workspace for graphs with id space `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        DijkstraCounter {
            dist: vec![WDIST_INF; capacity],
            count: vec![0; capacity],
            settled: vec![false; capacity],
            heap: BinaryHeap::new(),
            touched: Vec::new(),
        }
    }

    /// Grows the workspace if needed.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.dist.len() < capacity {
            self.dist.resize(capacity, WDIST_INF);
            self.count.resize(capacity, 0);
            self.settled.resize(capacity, false);
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = WDIST_INF;
            self.count[v as usize] = 0;
            self.settled[v as usize] = false;
        }
        self.touched.clear();
        self.heap.clear();
    }

    /// Point query: `(weighted sd(s,t), spc(s,t))`, `None` if disconnected.
    pub fn count(&mut self, g: &WeightedGraph, s: VertexId, t: VertexId) -> Option<(WDist, u64)> {
        let (dist, count) = self.sssp_until(g, s, Some(t));
        if dist[t.index()] == WDIST_INF {
            None
        } else {
            Some((dist[t.index()], count[t.index()]))
        }
    }

    /// Full single-source sweep; returns `(distances, counts)` views.
    pub fn sssp(&mut self, g: &WeightedGraph, s: VertexId) -> (&[WDist], &[u64]) {
        self.sssp_until(g, s, None)
    }

    fn sssp_until(
        &mut self,
        g: &WeightedGraph,
        s: VertexId,
        stop_at: Option<VertexId>,
    ) -> (&[WDist], &[u64]) {
        self.ensure_capacity(g.capacity());
        self.reset();
        self.dist[s.index()] = 0;
        self.count[s.index()] = 1;
        self.touched.push(s.0);
        self.heap.push(Reverse((0, s.0)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if self.settled[v as usize] {
                continue;
            }
            self.settled[v as usize] = true;
            // A settled vertex has final distance AND final count: every
            // tying predecessor has strictly smaller distance (positive
            // weights) and was settled earlier.
            if stop_at == Some(VertexId(v)) {
                break;
            }
            let cv = self.count[v as usize];
            for &(w, wt) in g.neighbors(VertexId(v)) {
                let nd = d + wt as WDist;
                let dw = self.dist[w as usize];
                if nd < dw {
                    if dw == WDIST_INF {
                        self.touched.push(w);
                    }
                    self.dist[w as usize] = nd;
                    self.count[w as usize] = cv;
                    self.heap.push(Reverse((nd, w)));
                } else if nd == dw {
                    self.count[w as usize] = self.count[w as usize].saturating_add(cv);
                }
            }
        }
        (&self.dist, &self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::{erdos_renyi_gnm, random_weights};
    use crate::traversal::bfs::BfsCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn simple_weighted_counts() {
        // Diamond: 0-1 (1), 0-2 (1), 1-3 (1), 2-3 (1), plus direct 0-3 (2).
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1), (0, 3, 2)],
        );
        let mut dj = DijkstraCounter::new(g.capacity());
        assert_eq!(dj.count(&g, VertexId(0), VertexId(3)), Some((2, 3)));
    }

    #[test]
    fn same_vertex_and_disconnected() {
        let g = WeightedGraph::with_vertices(3);
        let mut dj = DijkstraCounter::new(g.capacity());
        assert_eq!(dj.count(&g, VertexId(1), VertexId(1)), Some((0, 1)));
        assert_eq!(dj.count(&g, VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn weight_changes_alter_counts() {
        let mut g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 2)]);
        let mut dj = DijkstraCounter::new(g.capacity());
        assert_eq!(dj.count(&g, VertexId(0), VertexId(2)), Some((2, 2)));
        g.set_weight(VertexId(0), VertexId(2), 1).unwrap();
        assert_eq!(dj.count(&g, VertexId(0), VertexId(2)), Some((1, 1)));
        g.set_weight(VertexId(0), VertexId(2), 5).unwrap();
        assert_eq!(dj.count(&g, VertexId(0), VertexId(2)), Some((2, 1)));
    }

    #[test]
    fn unit_weights_match_bfs() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = erdos_renyi_gnm(80, 200, &mut rng);
        let wg = random_weights(&base, 1, &mut rng); // all weights 1
        let mut dj = DijkstraCounter::new(wg.capacity());
        let mut bfs = BfsCounter::new(base.capacity());
        for _ in 0..100 {
            let s = VertexId(rng.gen_range(0..80));
            let t = VertexId(rng.gen_range(0..80));
            let expect = bfs.count(&base, s, t).map(|(d, c)| (d as WDist, c));
            assert_eq!(dj.count(&wg, s, t), expect);
        }
    }

    #[test]
    fn sssp_settles_all_reachable() {
        let g =
            WeightedGraph::from_weighted_edges(5, &[(0, 1, 2), (1, 2, 2), (0, 2, 4), (2, 3, 1)]);
        let mut dj = DijkstraCounter::new(g.capacity());
        let (dist, count) = dj.sssp(&g, VertexId(0));
        assert_eq!(dist[2], 4);
        assert_eq!(count[2], 2); // via 1 and direct
        assert_eq!(dist[3], 5);
        assert_eq!(count[3], 2);
        assert_eq!(dist[4], WDIST_INF);
        assert_eq!(count[4], 0);
    }

    #[test]
    fn workspace_reuse() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 3), (1, 2, 4)]);
        let mut dj = DijkstraCounter::new(g.capacity());
        for _ in 0..3 {
            assert_eq!(dj.count(&g, VertexId(0), VertexId(2)), Some((7, 1)));
        }
    }
}
