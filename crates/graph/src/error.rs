//! Error types for graph mutation and I/O.

use crate::VertexId;
use std::fmt;

/// Errors produced by graph mutations and edge-list I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// The vertex id is out of range or has been deleted.
    UnknownVertex(VertexId),
    /// The edge already exists (simple graphs reject parallel edges).
    DuplicateEdge(VertexId, VertexId),
    /// The edge does not exist.
    MissingEdge(VertexId, VertexId),
    /// Self loops are not allowed — shortest path counting is defined on
    /// simple graphs.
    SelfLoop(VertexId),
    /// A non-positive or non-finite weight was supplied.
    InvalidWeight(f64),
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown or deleted vertex {v:?}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u:?}, {v:?}) already exists"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u:?}, {v:?}) does not exist"),
            GraphError::SelfLoop(v) => write!(f, "self loop at {v:?} rejected"),
            GraphError::InvalidWeight(w) => write!(f, "invalid edge weight {w}"),
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::UnknownVertex(VertexId(9));
        assert!(e.to_string().contains("v9"));
        let e = GraphError::DuplicateEdge(VertexId(1), VertexId(2));
        assert!(e.to_string().contains("already exists"));
        let e = GraphError::SelfLoop(VertexId(3));
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
