//! # dspc-graph — dynamic graph substrate
//!
//! This crate provides every graph-side building block the DSPC paper
//! (Feng et al., *“DSPC: Efficiently Answering Shortest Path Counting on
//! Dynamic Graphs”*, EDBT 2024) depends on:
//!
//! * [`UndirectedGraph`] — the paper's primary object: an undirected,
//!   unweighted dynamic graph supporting edge/vertex insertion and deletion,
//! * [`DirectedGraph`] and [`WeightedGraph`] — the substrates of the paper's
//!   Appendix C extensions,
//! * [`generators`] — synthetic stand-ins for the paper's SNAP/Konect/LAW
//!   datasets (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, power-law
//!   configuration model, and classic topologies),
//! * [`traversal`] — the online baselines: BFS shortest-path counting
//!   (Brandes-style), bidirectional BFS (**BiBFS**, the paper's query
//!   baseline), and Dijkstra counting for weighted graphs,
//! * [`io`] — SNAP-compatible edge-list reading and writing.
//!
//! Everything is deliberately free of `unsafe` and of external graph crates:
//! the DSPC algorithms need tight control over adjacency iteration order and
//! over vertex identity under deletion, so the representations are purpose
//! built.
//!
//! ## Quick example
//!
//! ```
//! use dspc_graph::{UndirectedGraph, VertexId};
//! use dspc_graph::traversal::bfs::BfsCounter;
//!
//! // The example graph H from Figure 1 of the paper.
//! let mut g = UndirectedGraph::with_vertices(5);
//! let (a, v2, b, v4, c) = (VertexId(0), VertexId(1), VertexId(2), VertexId(3), VertexId(4));
//! g.insert_edge(a, v2).unwrap();
//! g.insert_edge(v2, b).unwrap();
//! g.insert_edge(a, v4).unwrap();
//! g.insert_edge(v4, c).unwrap();
//! g.insert_edge(v2, c).unwrap();
//!
//! let mut bfs = BfsCounter::new(g.capacity());
//! // b and c are both at distance 2 from a, but c is reached by two
//! // shortest paths — the paper's motivating observation.
//! assert_eq!(bfs.count(&g, a, b), Some((2, 1)));
//! assert_eq!(bfs.count(&g, a, c), Some((2, 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directed;
pub mod error;
pub mod generators;
pub mod ids;
pub mod io;
pub mod stats;
pub mod traversal;
pub mod undirected;
pub mod weighted;

pub use directed::DirectedGraph;
pub use error::GraphError;
pub use ids::VertexId;
pub use stats::GraphStats;
pub use undirected::UndirectedGraph;
pub use weighted::{Weight, WeightedGraph};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
