//! Weighted undirected dynamic graph — substrate for the Appendix C.2
//! extension.
//!
//! Weights are positive integers (`u32`), accumulated into `u64` distances.
//! Integer weights keep shortest-path *counting* exact: with floats, two
//! paths of equal length can compare unequal after accumulation error, which
//! would silently corrupt counts. The paper's weighted extension only needs
//! comparable, additive weights, so this loses no generality.

use crate::{GraphError, Result, VertexId};

/// Edge weight type (positive integer).
pub type Weight = u32;

/// Weighted path length type.
pub type WDist = u64;

/// Sentinel for "unreachable" weighted distance.
pub const WDIST_INF: WDist = WDist::MAX;

/// An undirected, weighted, simple dynamic graph with stable vertex ids.
#[derive(Clone, Debug, Default)]
pub struct WeightedGraph {
    /// `adj[v]` sorted by neighbor id; parallel `w[v][i]` weight.
    adj: Vec<Vec<(u32, Weight)>>,
    alive: Vec<bool>,
    n_alive: usize,
    m: usize,
}

impl WeightedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        WeightedGraph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            n_alive: n,
            m: 0,
        }
    }

    /// Bulk-builds from `(u, v, w)` triples. Later duplicates overwrite
    /// earlier ones; self loops and zero weights are rejected by assertion.
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32, Weight)]) -> Self {
        let mut g = WeightedGraph::with_vertices(n);
        for &(u, v, w) in edges {
            assert!(w > 0, "zero weight");
            assert!(u != v, "self loop");
            match g.insert_edge(VertexId(u), VertexId(v), w) {
                Ok(()) => {}
                Err(GraphError::DuplicateEdge(..)) => {
                    g.set_weight(VertexId(u), VertexId(v), w).unwrap();
                }
                Err(e) => panic!("from_weighted_edges: {e}"),
            }
        }
        g
    }

    /// Total id space.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Number of alive vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n_alive
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Whether `v` is alive.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.alive.len() && self.alive[v.index()]
    }

    /// Adds a fresh isolated vertex.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from_index(self.adj.len());
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.n_alive += 1;
        id
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Sorted `(neighbor, weight)` slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(u32, Weight)] {
        &self.adj[v.index()]
    }

    /// Weight of edge `(u, v)`, if present.
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if u.index() >= self.adj.len() {
            return None;
        }
        self.adj[u.index()]
            .binary_search_by_key(&v.0, |&(n, _)| n)
            .ok()
            .map(|i| self.adj[u.index()][i].1)
    }

    /// Whether edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.weight(u, v).is_some()
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if self.contains_vertex(v) {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(v))
        }
    }

    /// Inserts edge `(u, v)` with weight `w > 0`.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<()> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if w == 0 {
            return Err(GraphError::InvalidWeight(0.0));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos = match self.adj[u.index()].binary_search_by_key(&v.0, |&(n, _)| n) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u, v)),
            Err(p) => p,
        };
        self.adj[u.index()].insert(pos, (v.0, w));
        let pos_v = self.adj[v.index()]
            .binary_search_by_key(&u.0, |&(n, _)| n)
            .expect_err("weighted adjacency symmetry violated");
        self.adj[v.index()].insert(pos_v, (u.0, w));
        self.m += 1;
        Ok(())
    }

    /// Changes the weight of an existing edge; returns the old weight.
    pub fn set_weight(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<Weight> {
        if w == 0 {
            return Err(GraphError::InvalidWeight(0.0));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos = self.adj[u.index()]
            .binary_search_by_key(&v.0, |&(n, _)| n)
            .map_err(|_| GraphError::MissingEdge(u, v))?;
        let old = self.adj[u.index()][pos].1;
        self.adj[u.index()][pos].1 = w;
        let pos_v = self.adj[v.index()]
            .binary_search_by_key(&u.0, |&(n, _)| n)
            .expect("weighted adjacency symmetry violated");
        self.adj[v.index()][pos_v].1 = w;
        Ok(old)
    }

    /// Deletes edge `(u, v)`; returns its weight.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<Weight> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos = self.adj[u.index()]
            .binary_search_by_key(&v.0, |&(n, _)| n)
            .map_err(|_| GraphError::MissingEdge(u, v))?;
        let (_, w) = self.adj[u.index()].remove(pos);
        let pos_v = self.adj[v.index()]
            .binary_search_by_key(&u.0, |&(n, _)| n)
            .expect("weighted adjacency symmetry violated");
        self.adj[v.index()].remove(pos_v);
        self.m -= 1;
        Ok(w)
    }

    /// Deletes vertex `v`; returns `(neighbor, weight)` pairs removed.
    pub fn delete_vertex(&mut self, v: VertexId) -> Result<Vec<(VertexId, Weight)>> {
        self.check_vertex(v)?;
        let list = std::mem::take(&mut self.adj[v.index()]);
        for &(u, _) in &list {
            let pos = self.adj[u as usize]
                .binary_search_by_key(&v.0, |&(n, _)| n)
                .expect("weighted adjacency symmetry violated");
            self.adj[u as usize].remove(pos);
        }
        self.m -= list.len();
        self.alive[v.index()] = false;
        self.n_alive -= 1;
        Ok(list.into_iter().map(|(u, w)| (VertexId(u), w)).collect())
    }

    /// Iterates alive vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::from_index(i))
    }

    /// Iterates edges once as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u32u = u as u32;
            list.iter()
                .take_while(move |&&(v, _)| v < u32u)
                .map(move |&(v, w)| (VertexId(v), VertexId(u32u), w))
        })
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<()> {
        let mut half = 0usize;
        for (u, list) in self.adj.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &(v, w) in list {
                if v as usize == u {
                    return Err(GraphError::SelfLoop(VertexId::from_index(u)));
                }
                if w == 0 {
                    return Err(GraphError::InvalidWeight(0.0));
                }
                if let Some(p) = prev {
                    if p >= v {
                        return Err(GraphError::Parse {
                            line: 0,
                            message: format!("weighted adjacency of v{u} not sorted"),
                        });
                    }
                }
                prev = Some(v);
                match self.adj[v as usize].binary_search_by_key(&(u as u32), |&(n, _)| n) {
                    Ok(i) if self.adj[v as usize][i].1 == w => {}
                    _ => {
                        return Err(GraphError::MissingEdge(
                            VertexId::from_index(u),
                            VertexId(v),
                        ))
                    }
                }
                half += 1;
            }
        }
        if half != 2 * self.m {
            return Err(GraphError::Parse {
                line: 0,
                message: "weighted edge count mismatch".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_weights() {
        let mut g = WeightedGraph::with_vertices(3);
        g.insert_edge(VertexId(0), VertexId(1), 5).unwrap();
        g.insert_edge(VertexId(1), VertexId(2), 3).unwrap();
        assert_eq!(g.weight(VertexId(0), VertexId(1)), Some(5));
        assert_eq!(g.weight(VertexId(1), VertexId(0)), Some(5));
        assert_eq!(g.weight(VertexId(0), VertexId(2)), None);
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn zero_weight_rejected() {
        let mut g = WeightedGraph::with_vertices(2);
        assert!(matches!(
            g.insert_edge(VertexId(0), VertexId(1), 0),
            Err(GraphError::InvalidWeight(_))
        ));
    }

    #[test]
    fn set_weight_updates_both_sides() {
        let mut g = WeightedGraph::with_vertices(2);
        g.insert_edge(VertexId(0), VertexId(1), 5).unwrap();
        let old = g.set_weight(VertexId(1), VertexId(0), 2).unwrap();
        assert_eq!(old, 5);
        assert_eq!(g.weight(VertexId(0), VertexId(1)), Some(2));
        g.validate().unwrap();
    }

    #[test]
    fn delete_edge_returns_weight() {
        let mut g = WeightedGraph::with_vertices(2);
        g.insert_edge(VertexId(0), VertexId(1), 7).unwrap();
        assert_eq!(g.delete_edge(VertexId(0), VertexId(1)).unwrap(), 7);
        assert_eq!(g.num_edges(), 0);
        assert!(g.delete_edge(VertexId(0), VertexId(1)).is_err());
    }

    #[test]
    fn delete_vertex_weighted() {
        let mut g = WeightedGraph::from_weighted_edges(4, &[(0, 1, 1), (1, 2, 2), (1, 3, 3)]);
        let removed = g.delete_vertex(VertexId(1)).unwrap();
        assert_eq!(
            removed,
            vec![(VertexId(0), 1), (VertexId(2), 2), (VertexId(3), 3)]
        );
        assert_eq!(g.num_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn from_weighted_edges_overwrites_duplicates() {
        let g = WeightedGraph::from_weighted_edges(2, &[(0, 1, 4), (1, 0, 9)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(VertexId(0), VertexId(1)), Some(9));
    }

    #[test]
    fn edges_iterator_with_weights() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 4), (1, 2, 6)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(VertexId(0), VertexId(1), 4)));
        assert!(edges.contains(&(VertexId(1), VertexId(2), 6)));
    }
}
