//! Edge-list I/O in the SNAP text format the paper's datasets ship in.
//!
//! Format: one `u v` pair per line, whitespace separated; lines starting
//! with `#` or `%` are comments (SNAP uses `#`, Konect uses `%`). Vertex ids
//! are arbitrary `u32`s; the reader sizes the graph by the maximum id seen.

#[cfg(test)]
use crate::VertexId;
use crate::{GraphError, Result, UndirectedGraph};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses an undirected graph from SNAP-style edge-list text.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<UndirectedGraph> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut any = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u32> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex ids".into(),
            })?;
            tok.parse::<u32>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad vertex id {tok:?}: {e}"),
            })
        };
        let u = parse(it.next(), lineno)?;
        let v = parse(it.next(), lineno)?;
        // Extra columns (weights/timestamps in Konect dumps) are ignored.
        max_id = max_id.max(u).max(v);
        any = true;
        edges.push((u, v));
    }
    let n = if any { max_id as usize + 1 } else { 0 };
    Ok(UndirectedGraph::from_edges(n, &edges))
}

/// Parses an undirected graph from an edge-list string.
pub fn parse_edge_list(text: &str) -> Result<UndirectedGraph> {
    read_edge_list(std::io::Cursor::new(text))
}

/// Loads an undirected graph from an edge-list file.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<UndirectedGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Writes a graph as edge-list text (one `u v` per line, `u < v`).
pub fn write_edge_list<W: Write>(g: &UndirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# undirected simple graph: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Saves a graph to an edge-list file.
pub fn save_edge_list<P: AsRef<Path>>(g: &UndirectedGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let g = parse_edge_list("# comment\n0 1\n1 2\n\n% konect comment\n2 3\n").unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn parse_ignores_extra_columns() {
        let g = parse_edge_list("0 1 42 199\n1 2 7\n").unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_dedups_and_symmetrizes() {
        let g = parse_edge_list("0 1\n1 0\n1 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_edge_list("0 x\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_edge_list("0\n").unwrap_err();
        assert!(err.to_string().contains("expected two"));
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("# nothing\n").unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn round_trip() {
        let g = crate::generators::classic::grid_graph(3, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn file_round_trip() {
        let g = crate::generators::classic::cycle_graph(5);
        let dir = std::env::temp_dir().join("dspc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle5.txt");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 5);
        std::fs::remove_file(path).ok();
    }
}
