//! # dspc-apps — applications of dynamic shortest path counting
//!
//! The paper motivates SPC queries with two applications (§1, Appendix A):
//!
//! * **Betweenness analysis** ([`betweenness`]): the fraction of shortest
//!   `s`–`t` paths through a vertex or vertex group is the building block
//!   of (group) betweenness centrality (Puzis et al. 2007; Brandes 2001);
//!   each term `δ_st(C)/δ_st` is two SPC queries away once an index exists.
//! * **Link recommendation** ([`recommendation`]): among equal-distance
//!   candidates, more shortest paths mean more independent connections —
//!   Figure 1's "recommend `c` over `b`" example.
//!
//! Both are implemented twice: once on top of the maintained
//! [`dspc::DynamicSpc`] index (the paper's point — these stay cheap while
//! the graph churns) and once as BFS-based exact baselines used for
//! validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod betweenness;
pub mod recommendation;

pub use betweenness::{brandes_betweenness, group_betweenness, vertex_betweenness};
pub use recommendation::{recommend_links, RecommendationEntry};
