//! Link recommendation via shortest path counting.
//!
//! Figure 1's motivating example: `b` and `c` are both at distance 2 from
//! `a`, but `c` is connected through two independent common friends —
//! "user `c` will be ranked first when recommending friends for `a`". The
//! same scoring applies to collaboration networks (Appendix A): more
//! shortest paths between two authors suggest a more likely future
//! collaboration.
//!
//! Ranking rule: among non-neighbors, prefer smaller distance; within a
//! distance tier, prefer more shortest paths; final tie-break by vertex id
//! for determinism.

use dspc::{Count, DynamicSpc};
use dspc_graph::VertexId;

/// One ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecommendationEntry {
    /// The recommended vertex.
    pub candidate: VertexId,
    /// Distance from the query vertex.
    pub distance: u32,
    /// Number of shortest paths — the score within a distance tier.
    pub paths: Count,
}

/// Recommends up to `k` new links for `u`: connected non-neighbors ranked
/// by (distance asc, path count desc, id asc).
///
/// `max_distance` bounds the candidate pool (2 recovers the classic
/// "friends of friends" setting; larger values allow weak-tie discovery).
pub fn recommend_links(
    dspc: &DynamicSpc,
    u: VertexId,
    k: usize,
    max_distance: u32,
) -> Vec<RecommendationEntry> {
    let g = dspc.graph();
    let mut entries: Vec<RecommendationEntry> = g
        .vertices()
        .filter(|&w| w != u && !g.has_edge(u, w))
        .filter_map(|w| {
            dspc.query(u, w).and_then(|(d, c)| {
                (d <= max_distance).then_some(RecommendationEntry {
                    candidate: w,
                    distance: d,
                    paths: c,
                })
            })
        })
        .collect();
    entries.sort_by(|a, b| {
        a.distance
            .cmp(&b.distance)
            .then(b.paths.cmp(&a.paths))
            .then(a.candidate.cmp(&b.candidate))
    });
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspc::OrderingStrategy;
    use dspc_graph::generators::paper::{figure1_h, figure2_g};

    #[test]
    fn figure1_recommends_c_over_b() {
        // a=0, v2=1, v4=2, b=3, c=4.
        let dspc = DynamicSpc::build(figure1_h(), OrderingStrategy::Degree);
        let recs = recommend_links(&dspc, VertexId(0), 2, 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].candidate, VertexId(4)); // c first: 2 paths
        assert_eq!(recs[0].paths, 2);
        assert_eq!(recs[1].candidate, VertexId(3)); // b second: 1 path
        assert_eq!(recs[1].paths, 1);
    }

    #[test]
    fn neighbors_and_self_excluded() {
        let dspc = DynamicSpc::build(figure1_h(), OrderingStrategy::Degree);
        let recs = recommend_links(&dspc, VertexId(0), 10, 10);
        assert!(recs.iter().all(|r| r.candidate != VertexId(0)));
        assert!(recs
            .iter()
            .all(|r| !dspc.graph().has_edge(VertexId(0), r.candidate)));
    }

    #[test]
    fn max_distance_bounds_pool() {
        let dspc = DynamicSpc::build(figure2_g(), OrderingStrategy::Identity);
        let near = recommend_links(&dspc, VertexId(11), 20, 2);
        let far = recommend_links(&dspc, VertexId(11), 20, 10);
        assert!(near.len() < far.len());
        assert!(near.iter().all(|r| r.distance <= 2));
    }

    #[test]
    fn recommendations_follow_dynamics() {
        let mut dspc = DynamicSpc::build(figure1_h(), OrderingStrategy::Degree);
        // b gains a second common friend with a (via v4=2): tie with c,
        // id breaks toward b=3.
        dspc.insert_edge(VertexId(2), VertexId(3)).unwrap();
        let recs = recommend_links(&dspc, VertexId(0), 2, 2);
        assert_eq!(recs[0].paths, 2);
        assert_eq!(recs[1].paths, 2);
        assert_eq!(recs[0].candidate, VertexId(3));
        // Accepting the recommendation drops b from the pool.
        dspc.insert_edge(VertexId(0), VertexId(3)).unwrap();
        let recs = recommend_links(&dspc, VertexId(0), 5, 2);
        assert!(recs.iter().all(|r| r.candidate != VertexId(3)));
    }

    #[test]
    fn empty_for_isolated_vertex() {
        let mut dspc = DynamicSpc::build(figure1_h(), OrderingStrategy::Degree);
        let v = dspc.add_vertex();
        assert!(recommend_links(&dspc, v, 5, 3).is_empty());
    }
}
