//! Betweenness analysis on top of the SPC-Index.
//!
//! Group betweenness (§1 of the paper, following \[23\]):
//!
//! ```text
//! B̈(C) = Σ_{s,t ∈ V∖C, s≠t}  δ_st(C) / δ_st
//! ```
//!
//! where `δ_st` is the number of shortest `s`–`t` paths and `δ_st(C)` those
//! passing through at least one member of `C`. With an SPC-Index:
//!
//! * single vertex `c`: `δ_st(c) = spc(s,c)·spc(c,t)` when
//!   `sd(s,c) + sd(c,t) = sd(s,t)`, else 0 — two index queries per term;
//! * a group `C`: `δ_st(C) = δ_st − δ_st(avoid C)`, where the avoiding
//!   count comes from a BFS restricted to `V∖C` that only counts paths
//!   retaining the original length.
//!
//! [`brandes_betweenness`] provides the classic exact baseline for
//! validation.

use dspc::DynamicSpc;
use dspc_graph::traversal::bfs::BfsCounter;
use dspc_graph::{UndirectedGraph, VertexId};

/// Betweenness centrality of a single vertex `c` using only index queries —
/// the paper's "essential building block" usage.
///
/// Pairs are unordered (`s < t`), endpoints excluded, disconnected pairs
/// contribute 0.
pub fn vertex_betweenness(dspc: &DynamicSpc, c: VertexId) -> f64 {
    let vertices: Vec<VertexId> = dspc.graph().vertices().filter(|&v| v != c).collect();
    let mut total = 0.0;
    for (i, &s) in vertices.iter().enumerate() {
        let Some((d_sc, c_sc)) = dspc.query(s, c) else {
            continue;
        };
        for &t in &vertices[i + 1..] {
            let Some((d_st, c_st)) = dspc.query(s, t) else {
                continue;
            };
            let Some((d_ct, c_ct)) = dspc.query(c, t) else {
                continue;
            };
            if d_sc + d_ct == d_st {
                total += (c_sc as f64 * c_ct as f64) / c_st as f64;
            }
        }
    }
    total
}

/// Group betweenness `B̈(C)` of a vertex set, combining index queries for
/// `δ_st` with complement-restricted BFS for `δ_st(avoid C)`.
pub fn group_betweenness(dspc: &DynamicSpc, group: &[VertexId]) -> f64 {
    let g = dspc.graph();
    let mut in_group = vec![false; g.capacity()];
    for &c in group {
        in_group[c.index()] = true;
    }
    let vertices: Vec<VertexId> = g.vertices().filter(|v| !in_group[v.index()]).collect();
    let mut bfs = BfsCounter::new(g.capacity());
    let mut total = 0.0;
    for (i, &s) in vertices.iter().enumerate() {
        // One restricted sweep per source covers all targets.
        let (avoid_dist, avoid_count) = {
            let allow = |w: u32| !in_group[w as usize];
            let (d, c) = bfs.sssp_restricted(g, s, allow);
            (d.to_vec(), c.to_vec())
        };
        for &t in &vertices[i + 1..] {
            let Some((d_st, c_st)) = dspc.query(s, t) else {
                continue;
            };
            // Paths avoiding C: only those that kept the original length.
            let avoiding = if avoid_dist[t.index()] == d_st {
                avoid_count[t.index()]
            } else {
                0
            };
            let through = c_st.saturating_sub(avoiding);
            total += through as f64 / c_st as f64;
        }
    }
    total
}

/// Classic Brandes betweenness centrality (exact, unordered pairs) — the
/// validation baseline. Returns a score per vertex id.
pub fn brandes_betweenness(g: &UndirectedGraph) -> Vec<f64> {
    let cap = g.capacity();
    let mut bc = vec![0.0f64; cap];
    let mut dist = vec![i64::MAX; cap];
    let mut sigma = vec![0.0f64; cap];
    let mut delta = vec![0.0f64; cap];
    let mut order: Vec<u32> = Vec::with_capacity(cap);
    let mut queue = std::collections::VecDeque::new();
    for s in g.vertices() {
        order.clear();
        for v in g.vertices() {
            dist[v.index()] = i64::MAX;
            sigma[v.index()] = 0.0;
            delta[v.index()] = 0.0;
        }
        dist[s.index()] = 0;
        sigma[s.index()] = 1.0;
        queue.push_back(s.0);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(VertexId(v)) {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        for &w in order.iter().rev() {
            for &v in g.neighbors(VertexId(w)) {
                if dist[v as usize] + 1 == dist[w as usize] {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            if w != s.0 {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    // Each unordered pair was counted twice (once per endpoint as source).
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspc::OrderingStrategy;
    use dspc_graph::generators::classic::{path_graph, star_graph};
    use dspc_graph::generators::paper::figure2_g;
    use dspc_graph::generators::random::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn star_center_dominates() {
        let g = star_graph(6);
        let dspc = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
        // Center lies on all C(5,2) = 10 leaf-pair shortest paths.
        assert!(close(vertex_betweenness(&dspc, VertexId(0)), 10.0));
        assert!(close(vertex_betweenness(&dspc, VertexId(3)), 0.0));
    }

    #[test]
    fn path_middle_betweenness() {
        let g = path_graph(5);
        let dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
        // Vertex 2 separates {0,1} from {3,4}: 4 pairs.
        assert!(close(vertex_betweenness(&dspc, VertexId(2)), 4.0));
    }

    #[test]
    fn index_betweenness_matches_brandes() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = erdos_renyi_gnm(40, 100, &mut rng);
        let brandes = brandes_betweenness(&g);
        let dspc = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
        for v in g.vertices() {
            assert!(
                close(vertex_betweenness(&dspc, v), brandes[v.index()]),
                "vertex {v:?}: {} vs {}",
                vertex_betweenness(&dspc, v),
                brandes[v.index()]
            );
        }
    }

    #[test]
    fn singleton_group_matches_vertex() {
        let g = figure2_g();
        let dspc = DynamicSpc::build(g, OrderingStrategy::Identity);
        for v in 0..12u32 {
            assert!(
                close(
                    group_betweenness(&dspc, &[VertexId(v)]),
                    vertex_betweenness(&dspc, VertexId(v))
                ),
                "vertex v{v}"
            );
        }
    }

    #[test]
    fn group_superset_dominates() {
        let g = figure2_g();
        let dspc = DynamicSpc::build(g, OrderingStrategy::Identity);
        let single = group_betweenness(&dspc, &[VertexId(1)]);
        let pair = group_betweenness(&dspc, &[VertexId(1), VertexId(2)]);
        assert!(pair >= single - 1e-12);
    }

    #[test]
    fn betweenness_tracks_updates() {
        let g = path_graph(4); // 0-1-2-3
        let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
        assert!(close(vertex_betweenness(&dspc, VertexId(1)), 2.0));
        // Bypass 1: edge 0-2 removes it from all shortest paths.
        dspc.insert_edge(VertexId(0), VertexId(2)).unwrap();
        assert!(close(vertex_betweenness(&dspc, VertexId(1)), 0.0));
    }
}
