//! AgendaScope ablation on the churn workload: replays the same churn
//! stream through two tiered [`ManagedSpc`] twins that differ only in
//! [`AgendaScope`], and checks the global agenda never does more
//! classification or repair work than the legacy per-group agenda.
//!
//! The counter deltas this test prints are the numbers recorded in
//! `docs/PAPER_MAP.md` (run with `--nocapture` to regenerate them).

use dspc::policy::{MaintenancePolicy, ManagedSpc};
use dspc::{
    AgendaScope, DynamicSpc, MaintenanceCounters, MaintenanceOptions, MaintenanceThreads,
    OrderingStrategy,
};
use dspc_graph::generators::random::barabasi_albert;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn replay(scope: AgendaScope) -> (MaintenanceCounters, usize) {
    let mut rng = StdRng::seed_from_u64(0xC4DE);
    let g = barabasi_albert(300, 3, &mut rng);
    let epochs = dspc_bench::workload::churn_stream(&g, 30, 6, &mut rng);
    let d = DynamicSpc::build(g, OrderingStrategy::Degree);
    let policy = MaintenancePolicy {
        batched_swap_budget: 4096,
        ..MaintenancePolicy::tiered(0.02, 0.08, 0.95)
    };
    let mut managed = ManagedSpc::new(d, policy);
    let options = MaintenanceOptions {
        threads: MaintenanceThreads::Fixed(2),
        scope,
        ..MaintenanceOptions::default()
    };
    let mut totals = MaintenanceCounters::default();
    for batch in &epochs {
        let stats = managed
            .apply_batch_with(batch, &options)
            .expect("valid churn epoch");
        totals.absorb(&stats.counters);
    }
    let entries = managed.inner().index().num_entries();
    (totals, entries)
}

#[test]
fn global_agenda_dominates_per_group_on_churn() {
    let (global, entries_global) = replay(AgendaScope::Global);
    let (per_group, entries_per_group) = replay(AgendaScope::PerGroup);

    eprintln!(
        "global:    classify={} hubs={} agenda_hubs={} waves={} total={} entries={}",
        global.classify_sweeps,
        global.hubs_processed,
        global.agenda_hubs,
        global.waves,
        global.total_sweeps(),
        entries_global,
    );
    eprintln!(
        "per_group: classify={} hubs={} agenda_hubs={} waves={} total={} entries={}",
        per_group.classify_sweeps,
        per_group.hubs_processed,
        per_group.agenda_hubs,
        per_group.waves,
        per_group.total_sweeps(),
        entries_per_group,
    );

    // Both scopes repair to a correct index, but deletion repair may keep
    // different (correct, slightly non-minimal) leftover labels, so the
    // entry counts only have to agree within a hair.
    assert!(entries_global.abs_diff(entries_per_group) * 1000 <= entries_global);
    // The global agenda deduplicates hubs across deletion groups, so it
    // can only do less (or equal) classification and repair work.
    assert!(global.classify_sweeps <= per_group.classify_sweeps);
    assert!(global.hubs_processed <= per_group.hubs_processed);
    assert!(global.total_sweeps() <= per_group.total_sweeps());
}
