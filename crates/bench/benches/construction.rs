//! Criterion bench: HP-SPC index construction (Table 4's "L Time" column).
//!
//! Measures full builds on small-scale instances of three representative
//! datasets (sparse / mid / dense). This is the baseline cost every dynamic
//! update is compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspc::{build_index, OrderingStrategy};
use dspc_bench::datasets::find;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for key in ["EUA-S", "GOO-S", "IND-S"] {
        let d = find(key).expect("registry key");
        let g = d.generate(0.12);
        group.bench_with_input(
            BenchmarkId::new("hp_spc", format!("{key}/n={}", g.num_vertices())),
            &g,
            |b, g| b.iter(|| build_index(g, OrderingStrategy::Degree)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
