//! Ablation bench: vertex ordering strategies (§2.2's design choice).
//!
//! The paper adopts degree-based ordering because high-degree hubs prune
//! later BFSs early. This ablation builds the same graph under Degree /
//! Identity / Random orders; Degree should be fastest and produce the
//! smallest index (entry counts are printed once per strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspc::{build_index, OrderingStrategy};
use dspc_bench::datasets::find;

fn bench_orderings(c: &mut Criterion) {
    let d = find("GOO-S").expect("registry key");
    let g = d.generate(0.1);
    let mut group = c.benchmark_group("ablation_order");
    group.sample_size(10);
    for (name, strategy) in [
        ("degree", OrderingStrategy::Degree),
        ("identity", OrderingStrategy::Identity),
        ("random", OrderingStrategy::Random(99)),
    ] {
        let entries = build_index(&g, strategy).num_entries();
        eprintln!("[ablation_order] {name}: {entries} label entries");
        group.bench_with_input(BenchmarkId::new("build", name), &strategy, |b, &s| {
            b.iter(|| build_index(&g, s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
