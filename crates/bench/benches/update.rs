//! Criterion bench: dynamic maintenance vs reconstruction (the paper's
//! headline claim, Table 4): one IncSPC insertion, one DecSPC deletion, and
//! one full HP-SPC rebuild on the same graph.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dspc::dec::DecSpc;
use dspc::inc::IncSpc;
use dspc::{build_index, rebuild_index, OrderingStrategy};
use dspc_bench::datasets::find;
use dspc_bench::workload::{sample_deletions, sample_insertions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group.sample_size(10);
    for key in ["EUA-S", "GOO-S"] {
        let d = find(key).expect("registry key");
        let g0 = d.generate(0.12);
        let index0 = build_index(&g0, OrderingStrategy::Degree);
        let mut rng = StdRng::seed_from_u64(7);
        let insertions = sample_insertions(&g0, 64, &mut rng);
        let deletions = sample_deletions(&g0, 64, &mut rng);

        group.bench_function(BenchmarkId::new("inc_spc", key), |b| {
            let mut i = 0usize;
            let mut engine = IncSpc::new(g0.capacity());
            b.iter_batched(
                || (g0.clone(), index0.clone()),
                |(mut g, mut index)| {
                    let (a, bb) = insertions[i % insertions.len()];
                    i += 1;
                    g.insert_edge(a, bb).unwrap();
                    engine.insert_edge(&g, &mut index, a, bb);
                    index
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("dec_spc", key), |b| {
            let mut i = 0usize;
            let mut engine = DecSpc::new(g0.capacity());
            b.iter_batched(
                || (g0.clone(), index0.clone()),
                |(mut g, mut index)| {
                    let (a, bb) = deletions[i % deletions.len()];
                    i += 1;
                    engine.delete_edge(&mut g, &mut index, a, bb).unwrap();
                    index
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("rebuild", key), |b| {
            let mut i = 0usize;
            b.iter_batched(
                || {
                    let mut g = g0.clone();
                    let (a, bb) = insertions[i % insertions.len()];
                    i += 1;
                    g.insert_edge(a, bb).unwrap();
                    g
                },
                |g| rebuild_index(&g, index0.ranks().clone()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
