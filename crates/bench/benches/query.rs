//! Criterion bench: query evaluation — SpcQUERY (label merge) vs BiBFS
//! (Figure 7(c)). The paper reports the index beating the online baseline
//! by up to four orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspc::{build_index, spc_query, OrderingStrategy};
use dspc_bench::datasets::find;
use dspc_bench::workload::sample_query_pairs;
use dspc_graph::traversal::bibfs::BiBfsCounter;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    for key in ["EUA-S", "BKS-S"] {
        let d = find(key).expect("registry key");
        let g = d.generate(0.15);
        let index = build_index(&g, OrderingStrategy::Degree);
        let mut rng = StdRng::seed_from_u64(42);
        let pairs = sample_query_pairs(&g, 256, &mut rng);

        group.bench_with_input(BenchmarkId::new("spc_query", key), &pairs, |b, pairs| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(s, t) in pairs {
                    acc = acc.wrapping_add(spc_query(&index, s, t).count);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("bibfs", key), &pairs, |b, pairs| {
            let mut bibfs = BiBfsCounter::new(g.capacity());
            b.iter(|| {
                let mut acc = 0u64;
                for &(s, t) in pairs {
                    if let Some((_, cnt)) = bibfs.count(&g, s, t) {
                        acc = acc.wrapping_add(cnt);
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
