//! Ablation bench: DecSPC's SR-restricted hub set vs the naive
//! all-affected-vertices baseline (§2.3's argument against reusing
//! SD-Index affected-set definitions), with full reconstruction for scale.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dspc::dec::{DecMode, DecSpc};
use dspc::{build_index, rebuild_index, OrderingStrategy};
use dspc_bench::datasets::find;
use dspc_bench::workload::sample_deletions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dec_modes(c: &mut Criterion) {
    let d = find("NTD-S").expect("registry key");
    let g0 = d.generate(0.12);
    let index0 = build_index(&g0, OrderingStrategy::Degree);
    let mut rng = StdRng::seed_from_u64(17);
    let deletions = sample_deletions(&g0, 64, &mut rng);

    let mut group = c.benchmark_group("ablation_dec");
    group.sample_size(10);
    for (name, mode) in [
        ("sr_only", DecMode::SrOnly),
        ("naive_affected", DecMode::NaiveAffected),
    ] {
        group.bench_function(BenchmarkId::new("delete", name), |b| {
            let mut i = 0usize;
            let mut engine = DecSpc::new(g0.capacity());
            b.iter_batched(
                || (g0.clone(), index0.clone()),
                |(mut g, mut index)| {
                    let (a, bb) = deletions[i % deletions.len()];
                    i += 1;
                    engine
                        .delete_edge_with_mode(&mut g, &mut index, a, bb, mode)
                        .unwrap();
                    index
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.bench_function(BenchmarkId::new("delete", "rebuild"), |b| {
        let mut i = 0usize;
        b.iter_batched(
            || {
                let mut g = g0.clone();
                let (a, bb) = deletions[i % deletions.len()];
                i += 1;
                g.delete_edge(a, bb).unwrap();
                g
            },
            |g| rebuild_index(&g, index0.ranks().clone()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_dec_modes);
criterion_main!(benches);
