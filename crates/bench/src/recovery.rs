//! Deterministic crash-recovery replay: a scripted journaled run that is
//! killed mid-stream and recovered, with the recovered server checked
//! bit-for-bit against a never-crashed twin driving the same batches.
//!
//! Like [`crate::serving`], this replay exists for the CI perf lane: every
//! counter it reports — batches replayed, journal bytes, updates applied —
//! is a pure function of the seed, so the lane can gate the journal's
//! write amplification (`journal_bytes_per_update`) and the recovery
//! path's coverage (`recover_replayed_batches`) without wall-clock
//! flakiness. The replay doubles as an end-to-end recovery-equivalence
//! check: any divergence between the recovered server and its
//! never-crashed twin (answers, epoch clock, maintenance counters) panics
//! the lane.
//!
//! Script shape: `epochs` scripted rotations with a checkpoint dropped in
//! the middle, one final batch submitted but *not* rotated, then a
//! simulated kill (the server is dropped; acknowledged appends are already
//! fsynced). Recovery must boot from the checkpoint, replay only the
//! post-checkpoint epochs, restore the un-rotated batch as pending, and
//! continue rotating in lockstep with the twin.

use crate::workload::hybrid_stream;
use dspc::dynamic::GraphUpdate;
use dspc::{DynamicSpc, MaintenanceThreads, OrderingStrategy};
use dspc_graph::generators::random::barabasi_albert;
use dspc_graph::VertexId;
use dspc_serve::{EpochServer, ServeConfig, ServingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Scripted recovery-replay knobs. Everything downstream of `seed` is
/// deterministic.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReplayConfig {
    /// Vertices in the scale-free base graph.
    pub vertices: u32,
    /// Barabási–Albert attachment degree.
    pub attach: usize,
    /// Rotations to drive before the simulated kill.
    pub epochs: usize,
    /// Insertions per epoch batch.
    pub ins_per_epoch: usize,
    /// Deletions per epoch batch.
    pub del_per_epoch: usize,
    /// Checkpoint after this many rotations (must be < `epochs`).
    pub checkpoint_after: usize,
    /// Shards each published snapshot fans out over.
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
}

impl RecoveryReplayConfig {
    /// The CI smoke scale: a checkpoint mid-stream, several epochs to
    /// replay on either side of it, and a pending batch to restore.
    pub fn smoke() -> Self {
        RecoveryReplayConfig {
            vertices: 260,
            attach: 3,
            epochs: 6,
            ins_per_epoch: 5,
            del_per_epoch: 3,
            checkpoint_after: 3,
            shards: 2,
            seed: 0x2EC0F,
        }
    }
}

/// Deterministic counters out of one crash/recover cycle.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReplayReport {
    /// Rotations on the recovered server after replay (== the crashed
    /// server's rotation count).
    pub rotations: u64,
    /// Updates applied across the recovered server's lifetime.
    pub updates_applied: u64,
    /// Journaled batches recovery re-applied or restored.
    pub replayed_batches: u64,
    /// Committed epoch groups re-rotated during replay.
    pub replayed_rotations: u64,
    /// Updates restored to the pending buffer.
    pub restored_pending_updates: u64,
    /// Total bytes the crashed run appended to its journals.
    pub journal_bytes: u64,
}

impl RecoveryReplayReport {
    /// Journal write amplification: bytes appended per update accepted.
    pub fn journal_bytes_per_update(&self) -> u64 {
        self.journal_bytes / self.updates_applied.max(1)
    }
}

fn engine(config: &RecoveryReplayConfig) -> DynamicSpc {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let g = barabasi_albert(config.vertices as usize, config.attach, &mut rng);
    let mut engine = DynamicSpc::build(g, OrderingStrategy::Degree);
    engine.set_maintenance_threads(MaintenanceThreads::Fixed(2));
    engine
}

/// The scripted batches, generated once against an evolving shadow graph
/// so the crashed run and its never-crashed twin drive identical streams.
fn scripted_batches(config: &RecoveryReplayConfig) -> Vec<Vec<GraphUpdate>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut shadow = barabasi_albert(config.vertices as usize, config.attach, &mut rng);
    // One extra batch beyond `epochs`: submitted but never rotated, so
    // recovery must restore it as pending.
    (0..=config.epochs)
        .map(|_| {
            let batch = hybrid_stream(
                &shadow,
                config.ins_per_epoch,
                config.del_per_epoch,
                &mut rng,
            );
            for update in &batch {
                match *update {
                    GraphUpdate::InsertEdge(a, b) => shadow.insert_edge(a, b).unwrap(),
                    GraphUpdate::DeleteEdge(a, b) => shadow.delete_edge(a, b).unwrap(),
                    _ => unreachable!("hybrid streams only touch edges"),
                }
            }
            batch
        })
        .collect()
}

/// Strips the scheduling-dependent counters (`steal_events`,
/// `interference_probes` are a function of worker timing, not of the
/// repaired index) so twin runs can be compared for determinism.
fn scheduling_free(stats: Option<dspc::UpdateStats>) -> Option<dspc::UpdateStats> {
    stats.map(|mut s| {
        s.counters.steal_events = 0;
        s.counters.interference_probes = 0;
        s
    })
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dspc_bench_recovery_{seed:x}_{}",
        std::process::id()
    ))
}

/// Runs the scripted crash/recover cycle and returns its deterministic
/// counters. Panics on any recovery-equivalence violation.
pub fn replay(config: RecoveryReplayConfig) -> RecoveryReplayReport {
    assert!(config.checkpoint_after < config.epochs);
    let batches = scripted_batches(&config);
    let serve = ServeConfig {
        shards: config.shards,
    };
    let dir = scratch_dir(config.seed);
    let _ = std::fs::remove_dir_all(&dir);

    // The run that dies: journaled, checkpointed mid-stream, killed with
    // one acknowledged batch still pending.
    let mut crashed =
        EpochServer::with_journal(engine(&config), serve, &dir).expect("fresh journal dir");
    // The twin that doesn't: same engine, same batches, no journal.
    let mut twin = EpochServer::new(engine(&config), serve);
    for (epoch, batch) in batches[..config.epochs].iter().enumerate() {
        crashed.submit(batch.clone()).expect("journaled submit");
        twin.submit(batch.clone()).expect("plain submit");
        let a = crashed.rotate().expect("scripted batch is valid");
        let b = twin.rotate().expect("scripted batch is valid");
        assert_eq!(
            scheduling_free(a.applied),
            scheduling_free(b.applied),
            "twin divergence before the crash"
        );
        if epoch + 1 == config.checkpoint_after {
            crashed.checkpoint().expect("mid-stream checkpoint");
        }
    }
    crashed
        .submit(batches[config.epochs].clone())
        .expect("journaled submit");
    twin.submit(batches[config.epochs].clone())
        .expect("plain submit");
    drop(crashed); // the kill: in-memory state gone, fsynced appends stay

    let (mut recovered, report) =
        EpochServer::<DynamicSpc>::recover(&dir, serve).expect("recovery");
    assert_eq!(
        report.resumed_epoch,
        twin.epoch(),
        "recovery must resume the epoch clock"
    );
    assert_eq!(
        recovered.pending_updates(),
        twin.pending_updates(),
        "the acknowledged pending batch must be restored"
    );

    // Equivalence: answers and maintenance counters match the twin, and
    // the engines keep rotating in lockstep after recovery.
    let final_a = recovered.rotate().expect("restored batch is valid");
    let final_b = twin.rotate().expect("pending batch is valid");
    assert_eq!(
        scheduling_free(final_a.applied),
        scheduling_free(final_b.applied),
        "post-recovery maintenance counters diverged"
    );
    assert_eq!(recovered.epoch(), twin.epoch());
    assert_eq!(
        recovered.engine().updates_since_build(),
        twin.engine().updates_since_build()
    );
    for s in 0..config.vertices {
        for t in 0..config.vertices {
            let (s, t) = (VertexId(s), VertexId(t));
            assert_eq!(
                recovered.engine().query_live(s, t),
                twin.engine().query_live(s, t),
                "recovered answer diverged at {s:?} -> {t:?}"
            );
        }
    }

    let stats = *recovered.stats();
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryReplayReport {
        rotations: stats.rotations,
        updates_applied: stats.updates_applied,
        replayed_batches: stats.replayed_batches,
        replayed_rotations: report.replayed_rotations,
        restored_pending_updates: report.restored_pending_updates as u64,
        journal_bytes: stats.journal_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_deterministic() {
        let a = replay(RecoveryReplayConfig::smoke());
        let b = replay(RecoveryReplayConfig::smoke());
        assert_eq!(a.rotations, b.rotations);
        assert_eq!(a.updates_applied, b.updates_applied);
        assert_eq!(a.replayed_batches, b.replayed_batches);
        assert_eq!(a.journal_bytes, b.journal_bytes);
    }

    #[test]
    fn replay_covers_checkpoint_and_pending_restore() {
        let cfg = RecoveryReplayConfig::smoke();
        let report = replay(cfg);
        assert_eq!(report.rotations, cfg.epochs as u64 + 1);
        // Only post-checkpoint epochs replay, plus the restored batch.
        assert_eq!(
            report.replayed_rotations,
            (cfg.epochs - cfg.checkpoint_after) as u64
        );
        assert_eq!(
            report.replayed_batches,
            (cfg.epochs - cfg.checkpoint_after) as u64 + 1
        );
        assert!(report.restored_pending_updates > 0);
        assert!(report.journal_bytes_per_update() > 0);
    }
}
