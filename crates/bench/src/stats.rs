//! Measurement helpers: timers, percentiles, and fixed-width table
//! rendering for the experiment reports.

use std::time::Duration;

/// Summary of a sample of durations (Figure 7's median / p25 / p75 view).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DurationSummary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (p50).
    pub median: Duration,
    /// 25th percentile.
    pub p25: Duration,
    /// 75th percentile.
    pub p75: Duration,
    /// Minimum.
    pub min: Duration,
    /// Maximum.
    pub max: Duration,
}

/// Computes a [`DurationSummary`]; `samples` need not be sorted.
pub fn summarize(samples: &[Duration]) -> DurationSummary {
    assert!(!samples.is_empty(), "empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let total: Duration = sorted.iter().sum();
    DurationSummary {
        n: sorted.len(),
        mean: total / sorted.len() as u32,
        median: percentile(&sorted, 0.50),
        p25: percentile(&sorted, 0.25),
        p75: percentile(&sorted, 0.75),
        min: sorted[0],
        max: *sorted.last().unwrap(),
    }
}

/// Nearest-rank percentile of a sorted sample, `q ∈ [0, 1]`.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Human-readable duration: µs under 1 ms, ms under 1 s, seconds above.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

/// Human-readable byte size.
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KB {
        format!("{bytes}B")
    } else if b < KB * KB {
        format!("{:.1}KB", b / KB)
    } else if b < KB * KB * KB {
        format!("{:.1}MB", b / KB / KB)
    } else {
        format!("{:.2}GB", b / KB / KB / KB)
    }
}

/// Minimal fixed-width table printer for experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = summarize(&samples);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, Duration::from_micros(1));
        assert_eq!(s.max, Duration::from_micros(100));
        // Nearest-rank: index round(99 · 0.5) = 50 → value 51.
        assert_eq!(s.median, Duration::from_micros(51));
        assert_eq!(s.p25, Duration::from_micros(26));
        assert_eq!(s.p75, Duration::from_micros(75));
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[Duration::from_millis(5)]);
        assert_eq!(s.median, Duration::from_millis(5));
        assert_eq!(s.p25, s.p75);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0µs");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Graph", "n", "m"]);
        t.row(vec!["EUA-S".into(), "4000".into(), "8000".into()]);
        t.row(vec!["X".into(), "1".into(), "2".into()]);
        let out = t.render();
        assert!(out.contains("Graph"));
        assert_eq!(out.lines().count(), 4);
    }
}
