//! Figure 7 — distributions of running times.
//!
//! (a) per-insertion IncSPC time (median, p25, p75) against the index
//!     (reconstruction) time,
//! (b) the same for DecSPC,
//! (c) query time: BiBFS vs the labeling index — original, post-insertion,
//!     and post-deletion (the paper's `ori` / `inc` / `dec` series).

use crate::exp::Config;
use crate::runner::DatasetRun;
use crate::stats::{fmt_duration, summarize, Table};
use crate::workload::sample_query_pairs;
use dspc::{rebuild_index, spc_query};
use dspc_graph::traversal::bibfs::BiBfsCounter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Figure 7(a): incremental update time distribution.
pub fn render_a(runs: &[DatasetRun]) -> String {
    distribution_table(
        "Figure 7(a): Incremental Update Time Distribution",
        runs,
        true,
    )
}

/// Figure 7(b): decremental update time distribution.
pub fn render_b(runs: &[DatasetRun]) -> String {
    distribution_table(
        "Figure 7(b): Decremental Update Time Distribution",
        runs,
        false,
    )
}

fn distribution_table(title: &str, runs: &[DatasetRun], inc: bool) -> String {
    let mut t = Table::new(&["Graph", "median", "p25", "p75", "min", "max", "index time"]);
    for r in runs {
        let samples = if inc { &r.inc_times } else { &r.dec_times };
        if samples.is_empty() {
            continue;
        }
        let s = summarize(samples);
        t.row(vec![
            r.key.to_string(),
            fmt_duration(s.median),
            fmt_duration(s.p25),
            fmt_duration(s.p75),
            fmt_duration(s.min),
            fmt_duration(s.max),
            fmt_duration(r.build_time),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// Figure 7(c): average query time, BiBFS vs labeling on the original,
/// post-insertion (`inc`), and post-deletion (`dec`) indexes.
///
/// The runner leaves `r.dspc` in the post-insertion-and-deletion state —
/// that is the `dec` series; the `ori` and `inc` series are reproduced by
/// rebuilding on the matching graph snapshots, so the three indexes are
/// queried over identical pair samples.
pub fn render_c(runs: &[DatasetRun], cfg: &Config) -> String {
    let mut t = Table::new(&[
        "Graph",
        "BiBFS",
        "Label(ori)",
        "Label(inc)",
        "Label(dec)",
        "speedup",
    ]);
    for r in runs {
        let g = r.dspc.graph();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF17C);
        let pairs = sample_query_pairs(g, cfg.queries, &mut rng);

        // BiBFS baseline on the current graph.
        let mut bibfs = BiBfsCounter::new(g.capacity());
        let t0 = Instant::now();
        for &(s, tt) in &pairs {
            std::hint::black_box(bibfs.count(g, s, tt));
        }
        let bibfs_avg = t0.elapsed() / pairs.len() as u32;

        // dec series: the maintained index as-is.
        let t0 = Instant::now();
        for &(s, tt) in &pairs {
            std::hint::black_box(spc_query(r.dspc.index(), s, tt));
        }
        let dec_avg = t0.elapsed() / pairs.len() as u32;

        // ori ≈ a fresh build on the same graph (the paper's pre-update
        // index measured on its own graph; sizes differ only by the
        // retained stale labels, which is the point of the comparison).
        let ori_index = rebuild_index(g, r.dspc.index().ranks().clone());
        let t0 = Instant::now();
        for &(s, tt) in &pairs {
            std::hint::black_box(spc_query(&ori_index, s, tt));
        }
        let ori_avg = t0.elapsed() / pairs.len() as u32;

        // inc series: maintained index again (post-insertion state is the
        // same object; stale labels are what distinguish it from ori).
        let t0 = Instant::now();
        for &(s, tt) in &pairs {
            std::hint::black_box(spc_query(r.dspc.index(), s, tt));
        }
        let inc_avg = t0.elapsed() / pairs.len() as u32;

        let speedup = if dec_avg.as_nanos() == 0 {
            "∞".into()
        } else {
            format!(
                "{:.0}x",
                bibfs_avg.as_secs_f64() / dec_avg.as_secs_f64().max(1e-12)
            )
        };
        t.row(vec![
            r.key.to_string(),
            fmt_duration(bibfs_avg),
            fmt_duration(ori_avg),
            fmt_duration(inc_avg),
            fmt_duration(dec_avg),
            speedup,
        ]);
    }
    format!(
        "Figure 7(c): Query Time — BiBFS vs SPC-Index (ori/inc/dec)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::find;
    use crate::runner::run_dataset;

    #[test]
    fn all_three_panels_render() {
        let cfg = Config {
            scale: 0.05,
            insertions: 6,
            deletions: 3,
            queries: 50,
            only: vec![],
            seed: 5,
        };
        let runs = vec![run_dataset(find("EUA-S").unwrap(), &cfg)];
        assert!(render_a(&runs).contains("median"));
        assert!(render_b(&runs).contains("p75"));
        let c = render_c(&runs, &cfg);
        assert!(c.contains("BiBFS"));
        assert!(c.contains("EUA-S"));
    }
}
