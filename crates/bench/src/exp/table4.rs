//! Table 4 — index size (MB), index time, and average Inc/Dec update time,
//! plus the headline speedup factors the abstract claims (update vs
//! reconstruction).

use crate::runner::DatasetRun;
use crate::stats::{fmt_bytes, fmt_duration, Table};
use std::time::Duration;

fn avg(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        Duration::ZERO
    } else {
        samples.iter().sum::<Duration>() / samples.len() as u32
    }
}

/// Renders Table 4 from shared runs.
pub fn render(runs: &[DatasetRun]) -> String {
    let mut t = Table::new(&[
        "Graph", "L Size", "L Time", "IncSPC", "DecSPC", "Time/Inc", "Time/Dec",
    ]);
    for r in runs {
        let inc = avg(&r.inc_times);
        let dec = avg(&r.dec_times);
        let speedup = |upd: Duration| {
            if upd.is_zero() {
                "∞".to_string()
            } else {
                format!("{:.0}x", r.build_time.as_secs_f64() / upd.as_secs_f64())
            }
        };
        t.row(vec![
            r.key.to_string(),
            fmt_bytes(r.index_stats.packed_bytes),
            fmt_duration(r.build_time),
            fmt_duration(inc),
            fmt_duration(dec),
            speedup(inc),
            speedup(dec),
        ]);
    }
    format!(
        "Table 4: Index Size, Index Time and Average Inc/Dec Update Time\n\
         (Time/Inc, Time/Dec = reconstruction-over-update speedup)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::find;
    use crate::exp::Config;
    use crate::runner::run_dataset;

    #[test]
    fn table_shows_speedups() {
        let cfg = Config {
            scale: 0.1,
            insertions: 10,
            deletions: 4,
            queries: 10,
            only: vec![],
            seed: 3,
        };
        let runs = vec![run_dataset(find("NTD-S").unwrap(), &cfg)];
        let out = render(&runs);
        assert!(out.contains("NTD-S"));
        assert!(out.contains('x'));
    }
}
