//! Figures 8 and 9 — average number of renewed / inserted / removed labels
//! per update.
//!
//! Figure 8 (incremental): RenewC, RenewD, Insert — the paper's finding is
//! that RenewD is always the minority ("a new edge may generate more
//! shortest paths with unchanged distances") and that Insert × 8 bytes
//! bounds the per-update index growth.
//!
//! Figure 9 (decremental): adds the Remove series; renewals dominate and
//! the net size change (Insert − Remove) stays in the kilobyte range.

use crate::runner::DatasetRun;
use crate::stats::Table;
use dspc::UpdateStats;

fn averages(stats: &[UpdateStats]) -> (f64, f64, f64, f64) {
    if stats.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let n = stats.len() as f64;
    (
        stats.iter().map(|s| s.renew_count).sum::<usize>() as f64 / n,
        stats.iter().map(|s| s.renew_dist).sum::<usize>() as f64 / n,
        stats.iter().map(|s| s.inserted).sum::<usize>() as f64 / n,
        stats.iter().map(|s| s.removed).sum::<usize>() as f64 / n,
    )
}

/// Figure 8: label-operation averages for incremental updates.
pub fn render_fig8(runs: &[DatasetRun]) -> String {
    let mut t = Table::new(&["Graph", "RenewC", "RenewD", "Insert", "ΔSize/upd"]);
    for r in runs {
        let (rc, rd, ins, _) = averages(&r.inc_stats);
        t.row(vec![
            r.key.to_string(),
            format!("{rc:.1}"),
            format!("{rd:.1}"),
            format!("{ins:.1}"),
            crate::stats::fmt_bytes((ins * 8.0) as usize),
        ]);
    }
    format!(
        "Figure 8: Avg Renewed and Newly Inserted Labels per Incremental Update\n{}",
        t.render()
    )
}

/// Figure 9: label-operation averages for decremental updates.
pub fn render_fig9(runs: &[DatasetRun]) -> String {
    let mut t = Table::new(&["Graph", "RenewC", "RenewD", "Insert", "Remove", "ΔSize/upd"]);
    for r in runs {
        let (rc, rd, ins, rem) = averages(&r.dec_stats);
        let delta = (ins - rem) * 8.0;
        let delta_s = if delta >= 0.0 {
            format!("+{}", crate::stats::fmt_bytes(delta as usize))
        } else {
            format!("-{}", crate::stats::fmt_bytes((-delta) as usize))
        };
        t.row(vec![
            r.key.to_string(),
            format!("{rc:.1}"),
            format!("{rd:.1}"),
            format!("{ins:.1}"),
            format!("{rem:.1}"),
            delta_s,
        ]);
    }
    format!(
        "Figure 9: Avg Renewed, Inserted, and Removed Labels per Decremental Update\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::find;
    use crate::exp::Config;
    use crate::runner::run_dataset;

    #[test]
    fn figures_render_with_counts() {
        let cfg = Config {
            scale: 0.05,
            insertions: 8,
            deletions: 4,
            queries: 10,
            only: vec![],
            seed: 2,
        };
        let runs = vec![run_dataset(find("GOO-S").unwrap(), &cfg)];
        let f8 = render_fig8(&runs);
        assert!(f8.contains("RenewC") && f8.contains("GOO-S"));
        let f9 = render_fig9(&runs);
        assert!(f9.contains("Remove"));
    }
}
