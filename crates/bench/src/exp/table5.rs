//! Table 5 — average sizes of `SR_a`, `SR_b`, `R_a`, `R_b` over the
//! deletion workload.
//!
//! Following §4.6's convention: since edges are undirected, sides are
//! swapped per deletion so `SR_a` is always the larger hub set. The
//! paper's finding — `|SR| ≪ |R|` — is what licenses running update BFSs
//! only from `SR`.

use crate::runner::DatasetRun;
use crate::stats::Table;

/// Renders Table 5 from shared runs.
pub fn render(runs: &[DatasetRun]) -> String {
    let mut t = Table::new(&["Graph", "SR_a", "SR_b", "R_a", "R_b", "|SR|/|SR∪R|"]);
    for r in runs {
        if r.srr.is_empty() {
            continue;
        }
        let mut sa = 0usize;
        let mut sb = 0usize;
        let mut ra = 0usize;
        let mut rb = 0usize;
        for srr in &r.srr {
            // Swap rule: SR_a holds the side with more affected hubs.
            let (xa, xb, ya, yb) = if srr.sr_b.len() > srr.sr_a.len() {
                (&srr.sr_b, &srr.sr_a, &srr.r_b, &srr.r_a)
            } else {
                (&srr.sr_a, &srr.sr_b, &srr.r_a, &srr.r_b)
            };
            sa += xa.len();
            sb += xb.len();
            ra += ya.len();
            rb += yb.len();
        }
        let k = r.srr.len() as f64;
        let sr_total = (sa + sb) as f64;
        let all = sr_total + (ra + rb) as f64;
        t.row(vec![
            r.key.to_string(),
            format!("{:.1}", sa as f64 / k),
            format!("{:.1}", sb as f64 / k),
            format!("{:.1}", ra as f64 / k),
            format!("{:.1}", rb as f64 / k),
            if all == 0.0 {
                "-".into()
            } else {
                format!("{:.2}", sr_total / all)
            },
        ]);
    }
    format!(
        "Table 5: Average Size of SR_a, SR_b, R_a, R_b\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::find;
    use crate::exp::Config;
    use crate::runner::run_dataset;

    #[test]
    fn sr_a_is_the_larger_side() {
        let cfg = Config {
            scale: 0.08,
            insertions: 2,
            deletions: 6,
            queries: 10,
            only: vec![],
            seed: 11,
        };
        let runs = vec![run_dataset(find("NTD-S").unwrap(), &cfg)];
        let out = render(&runs);
        assert!(out.contains("NTD-S"));
        assert!(out.contains("SR_a"));
    }
}
