//! Experiment implementations — one module per table/figure of §4.
//!
//! Every experiment takes a [`Config`] and returns its report as a string
//! (the `experiments` binary prints it; integration tests assert on it).

pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig89;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::datasets::{Dataset, DATASETS};

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Vertex-count multiplier applied to every dataset.
    pub scale: f64,
    /// Number of edge insertions sampled per graph (paper: 1,000).
    pub insertions: usize,
    /// Number of edge deletions sampled per graph (paper: 50–100).
    pub deletions: usize,
    /// Number of query pairs sampled per graph (paper: 10,000).
    pub queries: usize,
    /// Restrict to these dataset keys (empty = all).
    pub only: Vec<String>,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// The default full-scale configuration.
    pub fn full() -> Self {
        Config {
            scale: 1.0,
            insertions: 200,
            deletions: 25,
            queries: 2000,
            only: Vec::new(),
            seed: 0xD5BC_2024,
        }
    }

    /// A fast smoke configuration (CI / quick runs).
    pub fn quick() -> Self {
        Config {
            scale: 0.25,
            insertions: 40,
            deletions: 8,
            queries: 400,
            only: Vec::new(),
            seed: 0xD5BC_2024,
        }
    }

    /// Datasets selected by this config.
    pub fn datasets(&self) -> Vec<&'static Dataset> {
        if self.only.is_empty() {
            DATASETS.iter().collect()
        } else {
            DATASETS
                .iter()
                .filter(|d| self.only.iter().any(|k| k.eq_ignore_ascii_case(d.key)))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_dataset_filter() {
        let mut cfg = Config::quick();
        assert_eq!(cfg.datasets().len(), 10);
        cfg.only = vec!["eua-s".into(), "IND-S".into()];
        let picked = cfg.datasets();
        assert_eq!(picked.len(), 2);
    }
}
