//! Figure 11 — running times of IncSPC and DecSPC under varying edge
//! degrees (`deg(u) · deg(v)`), the skewed-update experiment (§4.5).
//!
//! The paper's finding: *no* significant correlation between an edge's
//! degree product and the update time — IncSPC's cost tracks BFS visits
//! and DecSPC's the affected-set sizes, neither of which follows degree.

use crate::datasets::streaming_trio;
use crate::exp::Config;
use crate::stats::{fmt_duration, Table};
use crate::workload::{sample_skewed_deletions, sample_skewed_insertions};
use dspc::{DynamicSpc, OrderingStrategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const BUCKETS: usize = 4;

/// Renders Figure 11's per-degree-bucket update times for the three large
/// datasets.
pub fn run(cfg: &Config) -> String {
    let mut out = String::from(
        "Figure 11: Running Times of IncSPC and DecSPC (Varying Degrees of Edges)\n\
         (buckets are degree-product quartiles; expectation: flat rows)\n",
    );
    for d in streaming_trio() {
        if !cfg.only.is_empty() && !cfg.only.iter().any(|k| k.eq_ignore_ascii_case(d.key)) {
            continue;
        }
        let g = d.generate(cfg.scale);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ d.seed ^ 0xF1_11);
        let ins_pool =
            sample_skewed_insertions(&g, cfg.insertions.max(BUCKETS * 4), BUCKETS, &mut rng);
        let del_pool =
            sample_skewed_deletions(&g, cfg.deletions.max(BUCKETS * 2), BUCKETS, &mut rng);
        let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);

        // Bucketed measurements. Insertions first (on the original graph),
        // then deletions of original edges.
        let mut inc_bucket: Vec<Vec<Duration>> = vec![Vec::new(); BUCKETS];
        let mut inc_range: Vec<(u64, u64)> = vec![(u64::MAX, 0); BUCKETS];
        for (e, bucket) in &ins_pool {
            let t0 = Instant::now();
            dspc.insert_edge(e.edge.0, e.edge.1).expect("non-edge");
            inc_bucket[*bucket].push(t0.elapsed());
            let r = &mut inc_range[*bucket];
            r.0 = r.0.min(e.degree_product);
            r.1 = r.1.max(e.degree_product);
        }
        let mut dec_bucket: Vec<Vec<Duration>> = vec![Vec::new(); BUCKETS];
        let mut dec_range: Vec<(u64, u64)> = vec![(u64::MAX, 0); BUCKETS];
        for (e, bucket) in &del_pool {
            let t0 = Instant::now();
            dspc.delete_edge(e.edge.0, e.edge.1).expect("edge");
            dec_bucket[*bucket].push(t0.elapsed());
            let r = &mut dec_range[*bucket];
            r.0 = r.0.min(e.degree_product);
            r.1 = r.1.max(e.degree_product);
        }

        let avg = |v: &[Duration]| -> String {
            if v.is_empty() {
                "-".into()
            } else {
                fmt_duration(v.iter().sum::<Duration>() / v.len() as u32)
            }
        };
        let mut t = Table::new(&[
            "bucket",
            "ins deg(u)*deg(v)",
            "IncSPC avg",
            "del deg(u)*deg(v)",
            "DecSPC avg",
        ]);
        for b in 0..BUCKETS {
            let fr = |r: (u64, u64)| {
                if r.0 == u64::MAX {
                    "-".to_string()
                } else {
                    format!("{}..{}", r.0, r.1)
                }
            };
            t.row(vec![
                format!("Q{}", b + 1),
                fr(inc_range[b]),
                avg(&inc_bucket[b]),
                fr(dec_range[b]),
                avg(&dec_bucket[b]),
            ]);
        }
        out.push_str(&format!("\n{}\n{}", d.key, t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_render() {
        let cfg = Config {
            scale: 0.05,
            insertions: 16,
            deletions: 8,
            queries: 10,
            only: vec!["WAR-S".into()],
            seed: 4,
        };
        let out = run(&cfg);
        assert!(out.contains("WAR-S"));
        assert!(out.contains("Q1") && out.contains("Q4"));
    }
}
