//! Table 3 — the statistics of the graphs.
//!
//! Paper columns: Graph, Notation, n, m. We add degree/component
//! diagnostics and the paper-scale original each stand-in models.

use super::Config;
use crate::stats::Table;

/// Renders Table 3 for the configured datasets.
pub fn run(cfg: &Config) -> String {
    let mut t = Table::new(&[
        "Graph",
        "n",
        "m",
        "avg deg",
        "max deg",
        "components",
        "stands for",
    ]);
    for d in cfg.datasets() {
        let s = d.stats(cfg.scale);
        t.row(vec![
            d.key.to_string(),
            s.n.to_string(),
            s.m.to_string(),
            format!("{:.2}", s.avg_degree),
            s.max_degree.to_string(),
            s.num_components.to_string(),
            d.stands_for.to_string(),
        ]);
    }
    format!(
        "Table 3: The Statistics of The Graphs (scale={})\n{}",
        cfg.scale,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_rows() {
        let cfg = Config {
            scale: 0.05,
            ..Config::quick()
        };
        let out = run(&cfg);
        assert!(out.contains("EUA-S"));
        assert!(out.contains("IND-S"));
        assert_eq!(out.lines().count(), 13); // title + header + rule + 10 rows
    }
}
