//! Figure 10 — streaming updates: accumulated running time and index size
//! change over a hybrid stream (the paper: 100 insertions + 10 deletions
//! on BKS, WAR, IND).

use crate::datasets::streaming_trio;
use crate::exp::Config;
use crate::stats::{fmt_bytes, fmt_duration, Table};
use crate::workload::hybrid_stream;
use dspc::{DynamicSpc, OrderingStrategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Number of insertions in the stream (paper: 100).
const STREAM_INS: usize = 100;
/// Number of deletions in the stream (paper: 10).
const STREAM_DEL: usize = 10;
/// Report every this many steps.
const REPORT_EVERY: usize = 10;

/// Renders Figure 10's accumulated-time / size-change series for the three
/// large datasets.
pub fn run(cfg: &Config) -> String {
    let mut out = String::from(
        "Figure 10: Accumulated Running Times and Index Size Changes of Streaming Update\n",
    );
    let ins = STREAM_INS.min(cfg.insertions.max(10));
    let del = STREAM_DEL.min(cfg.deletions.max(2));
    for d in streaming_trio() {
        if !cfg.only.is_empty() && !cfg.only.iter().any(|k| k.eq_ignore_ascii_case(d.key)) {
            continue;
        }
        let g = d.generate(cfg.scale);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ d.seed ^ 0xF1_10);
        let stream = hybrid_stream(&g, ins, del, &mut rng);
        let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
        let base_bytes = dspc.index_stats().packed_bytes as i64;

        let mut t = Table::new(&["step", "kind", "accumulated time", "index Δ"]);
        let mut acc = Duration::ZERO;
        for (i, &u) in stream.iter().enumerate() {
            let t0 = Instant::now();
            dspc.apply(u).expect("stream update applies");
            acc += t0.elapsed();
            let is_last = i + 1 == stream.len();
            if (i + 1) % REPORT_EVERY == 0 || is_last {
                let delta = dspc.index_stats().packed_bytes as i64 - base_bytes;
                let sign = if delta >= 0 { "+" } else { "-" };
                t.row(vec![
                    (i + 1).to_string(),
                    match u {
                        dspc::dynamic::GraphUpdate::InsertEdge(..) => "ins".into(),
                        dspc::dynamic::GraphUpdate::DeleteEdge(..) => "del".into(),
                        _ => "other".into(),
                    },
                    fmt_duration(acc),
                    format!("{sign}{}", fmt_bytes(delta.unsigned_abs() as usize)),
                ]);
            }
        }
        let avg = acc / stream.len() as u32;
        out.push_str(&format!(
            "\n{} — {} insertions + {} deletions (avg {}/update)\n{}",
            d.key,
            ins,
            del,
            fmt_duration(avg),
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_runs_on_trio_subset() {
        let cfg = Config {
            scale: 0.05,
            insertions: 12,
            deletions: 3,
            queries: 10,
            only: vec!["BKS-S".into()],
            seed: 1,
        };
        let out = run(&cfg);
        assert!(out.contains("BKS-S"));
        assert!(out.contains("accumulated time"));
        assert!(!out.contains("WAR-S"));
    }
}
