//! Deterministic serving-layer replay: a scripted mixed read/write epoch
//! loop over [`dspc_serve::EpochServer`].
//!
//! The replay is single-threaded on purpose. The correctness of the
//! serving layer under *real* thread interleavings is proven by the
//! workspace-level `tests/serving_epochs.rs` harness; this driver instead
//! scripts the reader refresh cadence so every counter — rotations,
//! queries served, stale-epoch reads, per-shard merge steps — is a pure
//! function of the seed and can gate CI like the maintenance counters do.
//!
//! Each epoch: the writer drains a seeded [`hybrid_stream`] slice through
//! one coalesced rotation, then every reader answers a seeded query batch
//! from whatever snapshot it is pinned at. Reader `i` refreshes only every
//! `i + 1` rotations, so the fleet deterministically spans fresh and
//! kept-stale epochs (the paper's between-epoch stale-label serving, made
//! observable). Reader 0 is always fresh and is cross-checked against the
//! live engine on every answer.
//!
//! [`hybrid_stream`]: crate::workload::hybrid_stream

use crate::workload::hybrid_stream;
use dspc::{DynamicSpc, MaintenanceThreads, OrderingStrategy};
use dspc_graph::generators::random::barabasi_albert;
use dspc_graph::VertexId;
use dspc_serve::{EpochServer, Reader, ServeConfig, ServingEngine, ServingSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scripted replay knobs. Everything downstream of `seed` is
/// deterministic.
#[derive(Clone, Copy, Debug)]
pub struct ServingReplayConfig {
    /// Vertices in the scale-free base graph.
    pub vertices: u32,
    /// Barabási–Albert attachment degree.
    pub attach: usize,
    /// Rotations to drive.
    pub epochs: usize,
    /// Insertions per epoch batch.
    pub ins_per_epoch: usize,
    /// Deletions per epoch batch.
    pub del_per_epoch: usize,
    /// Reader handles in the fleet (reader `i` refreshes every `i + 1`
    /// rotations).
    pub readers: usize,
    /// Queries each reader answers per epoch.
    pub queries_per_reader: usize,
    /// Shards each published snapshot fans out over.
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
}

impl ServingReplayConfig {
    /// The CI smoke scale: small enough for the perf lane, large enough
    /// that every shard owns work and stale reads actually occur.
    pub fn smoke() -> Self {
        ServingReplayConfig {
            vertices: 300,
            attach: 3,
            epochs: 8,
            ins_per_epoch: 6,
            del_per_epoch: 4,
            readers: 4,
            queries_per_reader: 64,
            shards: 4,
            seed: 0x5E12E,
        }
    }
}

/// Deterministic counters out of one replay.
#[derive(Clone, Debug)]
pub struct ServingReplayReport {
    /// Epochs published past epoch 0.
    pub rotations: u64,
    /// Updates drained into epoch batches.
    pub updates_applied: u64,
    /// Queries answered across the reader fleet.
    pub queries_served: u64,
    /// Queries answered while a newer epoch was already visible.
    pub stale_epoch_reads: u64,
    /// Kernel work per snapshot shard, summed across the fleet (index =
    /// shard id; attribution follows the source vertex's shard).
    pub shard_merge_steps: Vec<u64>,
}

impl ServingReplayReport {
    /// Total kernel merge steps across all shards.
    pub fn merge_steps(&self) -> u64 {
        self.shard_merge_steps.iter().sum()
    }
}

/// Runs the scripted replay and returns its deterministic counters.
///
/// Panics if any fresh reader's answer diverges from the live engine —
/// the replay doubles as an end-to-end agreement check between the
/// serving snapshots and the label sets they froze from.
pub fn replay(config: ServingReplayConfig) -> ServingReplayReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let g = barabasi_albert(config.vertices as usize, config.attach, &mut rng);
    let mut engine = DynamicSpc::build(g, OrderingStrategy::Degree);
    engine.set_maintenance_threads(MaintenanceThreads::Fixed(2));
    let mut server = EpochServer::new(
        engine,
        ServeConfig {
            shards: config.shards,
        },
    );
    let mut readers: Vec<Reader<_>> = (0..config.readers).map(|_| server.reader()).collect();

    for epoch in 0..config.epochs {
        // Write side: sample this epoch's stream against the live graph
        // (pools are fresh non-edges / existing edges, so the coalesced
        // batch is valid by construction), rotate once.
        let stream = hybrid_stream(
            server.engine().graph(),
            config.ins_per_epoch,
            config.del_per_epoch,
            &mut rng,
        );
        server
            .submit(stream)
            .expect("unjournaled submit cannot fail");
        server.rotate().expect("scripted epoch batch is valid");

        // Read side: scripted refresh cadence, then a seeded query batch
        // per reader from whatever epoch it is pinned at.
        for (i, reader) in readers.iter_mut().enumerate() {
            if (epoch + 1) % (i + 1) == 0 {
                reader.refresh();
            }
            for _ in 0..config.queries_per_reader {
                let s = VertexId(rng.gen_range(0..config.vertices));
                let t = VertexId(rng.gen_range(0..config.vertices));
                let (stamp, answer) = reader.query(s, t);
                if i == 0 {
                    // Reader 0 refreshes every rotation: its answers must
                    // match the live engine bit-for-bit.
                    assert_eq!(stamp, server.epoch(), "reader 0 is always fresh");
                    assert_eq!(
                        answer,
                        server.engine().query_live(s, t),
                        "snapshot/live divergence at {s:?}->{t:?}"
                    );
                }
            }
        }
    }

    let mut shard_merge_steps = vec![0u64; readers[0].snapshot().index().shard_count()];
    let mut queries_served = 0;
    let mut stale_epoch_reads = 0;
    for reader in &readers {
        queries_served += reader.queries_served();
        stale_epoch_reads += reader.stale_epoch_reads();
        for (shard, c) in reader.shard_counters().iter().enumerate() {
            shard_merge_steps[shard] += c.merge_steps;
        }
    }
    ServingReplayReport {
        rotations: server.stats().rotations,
        updates_applied: server.stats().updates_applied,
        queries_served,
        stale_epoch_reads,
        shard_merge_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_deterministic() {
        let a = replay(ServingReplayConfig::smoke());
        let b = replay(ServingReplayConfig::smoke());
        assert_eq!(a.rotations, b.rotations);
        assert_eq!(a.updates_applied, b.updates_applied);
        assert_eq!(a.queries_served, b.queries_served);
        assert_eq!(a.stale_epoch_reads, b.stale_epoch_reads);
        assert_eq!(a.shard_merge_steps, b.shard_merge_steps);
    }

    #[test]
    fn replay_exercises_staleness_and_all_shards() {
        let report = replay(ServingReplayConfig::smoke());
        let cfg = ServingReplayConfig::smoke();
        assert_eq!(report.rotations, cfg.epochs as u64);
        assert_eq!(
            report.queries_served,
            (cfg.epochs * cfg.readers * cfg.queries_per_reader) as u64
        );
        assert!(
            report.stale_epoch_reads > 0,
            "cadence must create staleness"
        );
        assert_eq!(report.shard_merge_steps.len(), cfg.shards);
        assert!(
            report.shard_merge_steps.iter().all(|&s| s > 0),
            "every shard should see kernel work"
        );
    }
}
