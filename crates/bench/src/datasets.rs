//! The dataset registry — synthetic stand-ins for the paper's Table 3.
//!
//! The paper evaluates on ten SNAP/Konect/LAW graphs (0.27M–7.4M vertices);
//! those downloads are unavailable offline and full HP-SPC reconstruction —
//! the baseline the dynamic algorithms must beat — already takes the paper
//! 27 *hours* on its largest graph. Each stand-in keeps the original's
//! *shape* (scale-free web/social skew, relative density rank, which graphs
//! are the dense outliers) at a scale where reconstruction stays runnable,
//! so the speedup factors remain measurable end to end.
//!
//! Every dataset is generated from a fixed seed; `--scale` multiplies the
//! vertex count for quicker smoke runs or heavier sweeps.

use dspc_graph::generators::random::{barabasi_albert, erdos_renyi_gnm, powerlaw_configuration};
use dspc_graph::{GraphStats, UndirectedGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator recipe for one dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Recipe {
    /// Barabási–Albert with the given attachment count.
    Ba {
        /// Edges per new vertex.
        m_attach: usize,
    },
    /// Power-law configuration model.
    PowerLaw {
        /// Exponent.
        gamma: f64,
        /// Minimum degree.
        min_deg: usize,
        /// Maximum degree.
        max_deg: usize,
    },
    /// Erdős–Rényi with an edge multiplier (`m = mult · n`).
    ErDense {
        /// Edges per vertex.
        mult: usize,
    },
}

/// One registered dataset.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    /// Short key used on the command line (paper's notation + `-S`).
    pub key: &'static str,
    /// The paper graph this stands in for.
    pub stands_for: &'static str,
    /// Base vertex count at scale 1.0.
    pub base_n: usize,
    /// Generator recipe.
    pub recipe: Recipe,
    /// Generation seed.
    pub seed: u64,
}

impl Dataset {
    /// Instantiates the graph at `scale` (vertex count multiplier).
    pub fn generate(&self, scale: f64) -> UndirectedGraph {
        let n = ((self.base_n as f64 * scale) as usize).max(64);
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.recipe {
            Recipe::Ba { m_attach } => barabasi_albert(n, m_attach, &mut rng),
            Recipe::PowerLaw {
                gamma,
                min_deg,
                max_deg,
            } => powerlaw_configuration(n, gamma, min_deg, max_deg.min(n / 2), &mut rng),
            Recipe::ErDense { mult } => {
                let m = (mult * n).min(n * (n - 1) / 2);
                erdos_renyi_gnm(n, m, &mut rng)
            }
        }
    }

    /// Statistics of the instantiated graph (Table 3's row).
    pub fn stats(&self, scale: f64) -> GraphStats {
        GraphStats::of(&self.generate(scale))
    }
}

/// The full registry: one stand-in per paper graph, ordered as in Table 3.
pub const DATASETS: &[Dataset] = &[
    Dataset {
        key: "EUA-S",
        stands_for: "email-EuAll (265K/419K, sparse e-mail network)",
        base_n: 3000,
        recipe: Recipe::Ba { m_attach: 2 },
        seed: 0xEA01,
    },
    Dataset {
        key: "NTD-S",
        stands_for: "NotreDame (326K/1.1M, web graph)",
        base_n: 3500,
        recipe: Recipe::Ba { m_attach: 3 },
        seed: 0xEA02,
    },
    Dataset {
        key: "STA-S",
        stands_for: "Stanford (282K/2.0M, web graph)",
        base_n: 3000,
        recipe: Recipe::PowerLaw {
            gamma: 2.2,
            min_deg: 2,
            max_deg: 80,
        },
        seed: 0xEA03,
    },
    Dataset {
        key: "WCO-S",
        stands_for: "WikiConflict (118K/2.0M, dense interaction graph)",
        base_n: 1500,
        recipe: Recipe::ErDense { mult: 17 },
        seed: 0xEA04,
    },
    Dataset {
        key: "GOO-S",
        stands_for: "Google (876K/4.3M, web graph)",
        base_n: 5000,
        recipe: Recipe::Ba { m_attach: 4 },
        seed: 0xEA05,
    },
    Dataset {
        key: "BKS-S",
        stands_for: "BerkStan (685K/6.6M, web graph)",
        base_n: 4500,
        recipe: Recipe::Ba { m_attach: 9 },
        seed: 0xEA06,
    },
    Dataset {
        key: "SKI-S",
        stands_for: "Skitter (1.7M/11.1M, internet topology)",
        base_n: 6000,
        recipe: Recipe::PowerLaw {
            gamma: 2.1,
            min_deg: 2,
            max_deg: 120,
        },
        seed: 0xEA07,
    },
    Dataset {
        key: "DBP-S",
        stands_for: "DBpedia (4.0M/12.6M, knowledge graph)",
        base_n: 8000,
        recipe: Recipe::Ba { m_attach: 3 },
        seed: 0xEA08,
    },
    Dataset {
        key: "WAR-S",
        stands_for: "Wikilink War (2.1M/26.0M, hyperlink graph)",
        base_n: 6000,
        recipe: Recipe::Ba { m_attach: 12 },
        seed: 0xEA09,
    },
    Dataset {
        key: "IND-S",
        stands_for: "Indochina-2004 (7.4M/151M, web crawl — the largest)",
        base_n: 9000,
        recipe: Recipe::Ba { m_attach: 16 },
        seed: 0xEA0A,
    },
];

/// Looks a dataset up by key (case insensitive).
pub fn find(key: &str) -> Option<&'static Dataset> {
    DATASETS.iter().find(|d| d.key.eq_ignore_ascii_case(key))
}

/// The three "largest" datasets used by the streaming/skewed experiments
/// (the paper uses BKS, WAR, IND).
pub fn streaming_trio() -> Vec<&'static Dataset> {
    ["BKS-S", "WAR-S", "IND-S"]
        .iter()
        .map(|k| find(k).expect("registry key"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_unique_keys() {
        assert_eq!(DATASETS.len(), 10);
        let mut keys: Vec<_> = DATASETS.iter().map(|d| d.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let d = find("EUA-S").unwrap();
        let a = d.generate(0.1);
        let b = d.generate(0.1);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn scale_controls_size() {
        let d = find("DBP-S").unwrap();
        let small = d.generate(0.05);
        let large = d.generate(0.1);
        assert!(large.num_vertices() > small.num_vertices());
    }

    #[test]
    fn density_ordering_mirrors_paper() {
        // IND (stand-in) must be the densest BA graph, EUA the sparsest.
        let eua = find("EUA-S").unwrap().stats(0.1);
        let ind = find("IND-S").unwrap().stats(0.1);
        assert!(ind.avg_degree > 3.0 * eua.avg_degree);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(find("eua-s").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn streaming_trio_keys() {
        let trio = streaming_trio();
        assert_eq!(trio.len(), 3);
        assert_eq!(trio[0].key, "BKS-S");
    }

    #[test]
    fn all_datasets_generate_connected_enough_graphs() {
        for d in DATASETS {
            let s = d.stats(0.05);
            assert!(s.n >= 64, "{}: n={}", d.key, s.n);
            assert!(s.m > 0, "{}", d.key);
            // Largest component should dominate (paper graphs are mostly
            // one giant component).
            assert!(
                s.largest_component as f64 >= 0.5 * s.n as f64,
                "{}: largest={} n={}",
                d.key,
                s.largest_component,
                s.n
            );
        }
    }
}
