//! # dspc-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4) on the
//! synthetic dataset registry (see DESIGN.md §3 for the substitution
//! rationale):
//!
//! | Experiment | Module | Command |
//! |---|---|---|
//! | Table 3 (dataset stats) | [`exp::table3`] | `experiments table3` |
//! | Table 4 (size/time/updates) | [`exp::table4`] | `experiments table4` |
//! | Figure 7(a,b,c) (distributions) | [`exp::fig7`] | `experiments fig7` |
//! | Figure 8 (inc label ops) | [`exp::fig89`] | `experiments fig8` |
//! | Figure 9 (dec label ops) | [`exp::fig89`] | `experiments fig9` |
//! | Figure 10 (streaming) | [`exp::fig10`] | `experiments fig10` |
//! | Figure 11 (skewed degrees) | [`exp::fig11`] | `experiments fig11` |
//! | Table 5 (SR/R sizes) | [`exp::table5`] | `experiments table5` |
//!
//! `experiments all` runs the shared protocol once and prints everything;
//! `--quick` shrinks scale and sample counts for smoke runs. Criterion
//! micro-benchmarks (`cargo bench -p dspc-bench`) cover construction,
//! query, update, and the two ablations.

pub mod datasets;
pub mod exp;
pub mod recovery;
pub mod runner;
pub mod serving;
pub mod stats;
pub mod workload;
