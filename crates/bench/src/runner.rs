//! The shared measurement runner: executes §4.1's protocol once per
//! dataset and hands the raw measurements to every experiment formatter
//! (Table 4, Figures 7–9, Table 5 all read the same run).

use crate::exp::Config;
use crate::workload::{sample_deletions, sample_insertions};
use dspc::dec::SrrOutcome;
use dspc::{DynamicSpc, IndexStats, OrderingStrategy, UpdateStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// All measurements taken on one dataset.
#[derive(Debug)]
pub struct DatasetRun {
    /// Dataset key.
    pub key: &'static str,
    /// Vertices in the instantiated graph.
    pub n: usize,
    /// Edges in the instantiated graph.
    pub m: usize,
    /// HP-SPC construction wall time (Table 4's "L Time").
    pub build_time: Duration,
    /// Index statistics right after construction.
    pub index_stats: IndexStats,
    /// Per-insertion IncSPC wall times.
    pub inc_times: Vec<Duration>,
    /// Per-insertion label-operation counters.
    pub inc_stats: Vec<UpdateStats>,
    /// Per-deletion DecSPC wall times.
    pub dec_times: Vec<Duration>,
    /// Per-deletion label-operation counters.
    pub dec_stats: Vec<UpdateStats>,
    /// Per-deletion affected sets (Table 5).
    pub srr: Vec<SrrOutcome>,
    /// The facade after all updates (used by the query experiment).
    pub dspc: DynamicSpc,
}

/// Executes the protocol on one dataset: build, `cfg.insertions` random
/// insertions, then `cfg.deletions` random deletions (on the post-insertion
/// graph, like the paper's hybrid setting).
pub fn run_dataset(d: &crate::datasets::Dataset, cfg: &Config) -> DatasetRun {
    let g = d.generate(cfg.scale);
    let (n, m) = (g.num_vertices(), g.num_edges());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ d.seed);

    let t0 = Instant::now();
    let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
    let build_time = t0.elapsed();
    let index_stats = dspc.index_stats();

    let insertions = sample_insertions(dspc.graph(), cfg.insertions, &mut rng);
    let mut inc_times = Vec::with_capacity(insertions.len());
    let mut inc_stats = Vec::with_capacity(insertions.len());
    for (a, b) in insertions {
        let t = Instant::now();
        let stats = dspc.insert_edge(a, b).expect("sampled non-edge");
        inc_times.push(t.elapsed());
        inc_stats.push(stats);
    }

    let deletions = sample_deletions(dspc.graph(), cfg.deletions, &mut rng);
    let mut dec_times = Vec::with_capacity(deletions.len());
    let mut dec_stats = Vec::with_capacity(deletions.len());
    let mut srr = Vec::with_capacity(deletions.len());
    for (a, b) in deletions {
        let t = Instant::now();
        let (stats, sets) = dspc.delete_edge_with_sets(a, b).expect("sampled edge");
        dec_times.push(t.elapsed());
        dec_stats.push(stats);
        srr.push(sets);
    }

    DatasetRun {
        key: d.key,
        n,
        m,
        build_time,
        index_stats,
        inc_times,
        inc_stats,
        dec_times,
        dec_stats,
        srr,
        dspc,
    }
}

/// Runs every configured dataset.
pub fn run_all(cfg: &Config) -> Vec<DatasetRun> {
    cfg.datasets()
        .into_iter()
        .map(|d| {
            eprintln!("[runner] measuring {} …", d.key);
            run_dataset(d, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::find;

    #[test]
    fn protocol_executes_end_to_end() {
        let cfg = Config {
            scale: 0.05,
            insertions: 5,
            deletions: 3,
            queries: 10,
            only: vec![],
            seed: 7,
        };
        let run = run_dataset(find("EUA-S").unwrap(), &cfg);
        assert_eq!(run.inc_times.len(), 5);
        assert_eq!(run.dec_times.len(), 3);
        assert_eq!(run.srr.len(), 3);
        assert!(run.index_stats.entries > run.n);
        // The maintained index still answers correctly after the protocol.
        dspc::verify::verify_sampled_pairs(
            run.dspc.graph(),
            run.dspc.index(),
            200,
            &mut rand::rngs::StdRng::seed_from_u64(1),
        )
        .unwrap();
    }
}
